"""CLAIM-10 — §2.4: complex analytics (regression, FFT, PCA, k-means) belong on
the array side of the polystore.

Runs each analytic through the AnalyticsRunner (array island / dense matrices)
and the row-at-a-time equivalent over the one-size-fits-all store, reporting
per-algorithm timings.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analytics import AnalyticsRunner, kmeans, linear_regression, pca
from repro.analytics.algorithms import dominant_frequency


@pytest.fixture(scope="module")
def runner(bench_deployment) -> AnalyticsRunner:
    return AnalyticsRunner(bench_deployment.bigdawg)


FEATURE_SQL = (
    "SELECT a.severity, p.age, a.stay_days FROM admissions a "
    "JOIN patients p ON a.patient_id = p.patient_id"
)


def test_regression_via_polystore(benchmark, runner):
    fit = benchmark(runner.regression, FEATURE_SQL, ["a.severity", "p.age"], "a.stay_days")
    assert 0.0 <= fit.r_squared <= 1.0


def test_fft_via_array_island(benchmark, runner):
    frequency = benchmark(runner.waveform_dominant_frequency, "waveform_history", 0, 125.0)
    assert frequency > 0


def test_fft_via_row_store(benchmark, bench_onesize):
    frequency = benchmark(bench_onesize.dominant_frequency, 0)
    assert frequency > 0


def test_pca_via_polystore(benchmark, runner):
    result = benchmark(
        runner.patient_pca, FEATURE_SQL, ["a.severity", "p.age", "a.stay_days"], 2
    )
    assert result.components.shape[0] == 2


def test_kmeans_via_polystore(benchmark, runner):
    result = benchmark(
        runner.patient_clusters, FEATURE_SQL, ["p.age", "a.stay_days"], 3
    )
    assert len(set(result.labels)) == 3


def test_claim10_summary(runner, bench_deployment, bench_onesize):
    matrix = runner.waveform_matrix("waveform_history")
    features = runner.feature_matrix(FEATURE_SQL, ["a.severity", "p.age", "a.stay_days"])

    def timed(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    rows = [
        ("linear regression", timed(lambda: linear_regression(features[:, :2], features[:, 2]))),
        ("PCA (3 features)", timed(lambda: pca(features, 2))),
        ("k-means (k=3)", timed(lambda: kmeans(features[:, :2], 3))),
        ("FFT via array island", timed(lambda: dominant_frequency(matrix[0], 125.0))),
        ("FFT via row store", timed(lambda: bench_onesize.dominant_frequency(0))),
    ]
    print("\nCLAIM-10: complex analytics on the polystore")
    from bench_recording import record_bench

    for label, seconds in rows:
        print(f"  {label:24s}: {seconds:.4f} s")
        record_bench("claim10", label, seconds=seconds)
    array_fft = dict(rows)["FFT via array island"]
    row_fft = dict(rows)["FFT via row store"]
    # Shape: the same FFT is much cheaper against the array engine's dense
    # buffers than when every sample is pulled through SQL rows first.
    assert array_fft < row_fft
