"""CLAIM-11 — the serving layer: concurrent throughput and result caching.

The paper positions BigDAWG as middleware in front of many simultaneous
clients; the ROADMAP's north star is heavy multi-tenant traffic.  This
benchmark measures the :class:`~repro.runtime.scheduler.PolystoreRuntime`
on a mixed workload spanning all four islands (relational, array, text,
d4m) of a synthetic MIMIC deployment:

1. **Worker sweep** — the same workload at 1, 2, 4 and 8 workers.  Every
   engine here is in-process, so ``engine_latency`` emulates the network
   hop a real deployment pays per engine dispatch; the runtime's job is to
   overlap those hops across clients while per-engine admission keeps any
   single engine inside its slot budget.  Throughput at 8 workers must be
   at least 3x the single-worker run.
2. **Result cache** — repeated queries must get dramatically cheaper than
   their first (cold) execution, and a CAST must invalidate the cache: the
   next run misses, recomputes, and re-primes.

Set ``RUNTIME_BENCH_SMOKE=1`` for the CI-sized run (small dataset, fewer
rounds, same assertions).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.mimic import MimicGenerator, build_polystore
from repro.runtime import PolystoreRuntime

SMOKE = os.environ.get("RUNTIME_BENCH_SMOKE", "") not in ("", "0")

#: Emulated per-dispatch network hop to an out-of-process engine (a typical
#: same-datacenter RTT plus engine-side connection handling).  The in-process
#: compute the engines do under the GIL does not overlap across workers, so
#: the dispatch hop is what the worker pool can actually parallelize — the
#: same quantity a real middleware deployment overlaps.
ENGINE_LATENCY = 0.010
WORKER_COUNTS = (1, 2, 4, 8)
ROUNDS = 4 if SMOKE else 12

#: One query per island: the mixed 4-island read workload.
WORKLOAD = [
    "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')",
    "ARRAY(aggregate(waveform_history, avg(value)))",
    'TEXT(SEARCH notes FOR "pain")',
    "D4M(ASSOC prescriptions DEGREE ROWS)",
    "RELATIONAL(SELECT p.race, avg(a.stay_days) AS avg_stay FROM patients p "
    "JOIN admissions a ON p.patient_id = a.patient_id GROUP BY p.race)",
    "ARRAY(aggregate(waveform_history, max(value), min(value)))",
]


@pytest.fixture(scope="module")
def deployment():
    generator = MimicGenerator(
        patient_count=40 if SMOKE else 120,
        waveform_patients=2,
        waveform_samples=500 if SMOKE else 2000,
        sample_rate_hz=125.0,
        anomaly_fraction=1.0,
        seed=7,
    )
    return build_polystore(generator=generator)


def _run_workload(deployment, workers: int, use_cache: bool) -> tuple[float, float]:
    """Run ROUNDS copies of the mixed workload; returns (seconds, qps)."""
    queries = WORKLOAD * ROUNDS
    runtime = PolystoreRuntime(
        deployment.bigdawg,
        workers=workers,
        slots_per_engine=4,
        engine_latency=ENGINE_LATENCY,
    )
    try:
        started = time.perf_counter()
        results = runtime.execute_many(queries, use_cache=use_cache)
        elapsed = time.perf_counter() - started
    finally:
        runtime.shutdown()
    assert len(results) == len(queries) and all(r is not None for r in results)
    return elapsed, len(queries) / elapsed


def test_claim11_throughput_scales_with_workers(deployment):
    """>=3x throughput at 8 workers vs 1 on the mixed 4-island workload."""
    qps_by_workers: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        elapsed, qps = _run_workload(deployment, workers, use_cache=False)
        qps_by_workers[workers] = qps
        print(f"workers={workers}: {elapsed:.3f}s, {qps:7.1f} q/s")
    speedup = qps_by_workers[8] / qps_by_workers[1]
    print(f"speedup 8 workers vs 1: {speedup:.2f}x")
    from bench_recording import record_bench

    record_bench(
        "claim11", "worker_sweep",
        qps_by_workers={str(k): v for k, v in qps_by_workers.items()},
        speedup_8_vs_1=speedup,
        smoke=SMOKE,
    )
    assert speedup >= 3.0, f"expected >=3x at 8 workers, got {speedup:.2f}x"


def test_claim11_cache_cuts_repeated_query_latency(deployment):
    """Cache hits skip planning, admission and engine dispatch entirely."""
    runtime = PolystoreRuntime(
        deployment.bigdawg, workers=4, engine_latency=ENGINE_LATENCY
    )
    try:
        query = WORKLOAD[0]
        started = time.perf_counter()
        cold = runtime.execute(query)
        cold_seconds = time.perf_counter() - started
        warm_runs = 20
        started = time.perf_counter()
        for _ in range(warm_runs):
            warm = runtime.execute(query)
        warm_seconds = (time.perf_counter() - started) / warm_runs
        assert warm.to_dicts() == cold.to_dicts()
        assert runtime.cache.hits >= warm_runs
        print(f"cold={cold_seconds * 1e3:.2f}ms warm={warm_seconds * 1e3:.3f}ms "
              f"({cold_seconds / warm_seconds:.0f}x)")
        from bench_recording import record_bench

        record_bench(
            "claim11", "result_cache",
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            speedup=cold_seconds / warm_seconds,
            smoke=SMOKE,
        )
        assert warm_seconds < cold_seconds / 2

        # A CAST invalidates: the next execution is a miss and recomputes.
        hits_before = runtime.cache.hits
        deployment.bigdawg.cast("waveform_history", "postgres", target_name="wf_rel",
                                dimensions=None)
        after_cast = runtime.execute(query)
        assert after_cast.to_dicts() == cold.to_dicts()
        assert runtime.cache.hits == hits_before  # miss, not a stale hit
        assert runtime.cache.invalidations >= 1
        print("cache after CAST:", runtime.cache.describe())
    finally:
        runtime.shutdown()


def test_claim11_admission_bounds_engine_concurrency(deployment):
    """Even at 8 workers, no engine ever exceeds its slot budget."""
    runtime = PolystoreRuntime(
        deployment.bigdawg, workers=8, slots_per_engine=2,
        engine_latency=ENGINE_LATENCY,
    )
    try:
        runtime.execute_many(WORKLOAD * ROUNDS, use_cache=False)
        for name, gate in runtime.admission.describe().items():
            assert gate["in_use"] == 0, f"engine {name} leaked a slot"
            assert gate["slots"] == 2
        snap = runtime.metrics.snapshot(queue_depth=runtime.admission.queue_depth())
        assert snap["failed"] == 0
        print("metrics:", snap)
    finally:
        runtime.shutdown()
