"""CLAIM-12 — vectorized batch execution vs row-at-a-time SQL.

BigDAWG's premise is that each island runs its workload "as fast as the
hardware allows".  PR 3 rebuilt the relational engine's SELECT path around
columnar batches and one-time expression compilation; this benchmark
quantifies what that buys over the classic volcano executor on the engine's
hot shapes:

1. **Filter + aggregate** — the bench_claim1/claim8 hot path: a predicate
   over 100k rows feeding global aggregates.  The vectorized path must be at
   least 4x faster.
2. **Group-by** — keyed aggregation over the same table, single-column and
   four-column (the key-encoded numpy group-by), each ≥5x.
3. **Hash joins** — fact-to-dimension equi-joins: the small-dimension shape
   with a residual filter, plus 100k×10k inner and left-outer joins on the
   key-encoded batched hash join, each ≥5x.

Every comparison also asserts the two modes return *byte-identical* results
(same values, same order, same binary encoding), so the speedup never comes
at the price of drifted semantics.

Set ``RUNTIME_BENCH_SMOKE=1`` for the CI-sized run (10k rows, relaxed
speedup floors, same identity assertions).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.common.serialization import BinaryCodec
from repro.engines.relational import RelationalEngine

SMOKE = os.environ.get("RUNTIME_BENCH_SMOKE", "") not in ("", "0")

ROW_COUNT = 10_000 if SMOKE else 100_000
DIM_COUNT = 50
BIG_DIM_COUNT = 1_000 if SMOKE else 10_000
#: fact.fk spreads over a range wider than dim_big's keys, so the outer-join
#: scenario has both matched and (null-padded) unmatched probe rows.
FK_RANGE = BIG_DIM_COUNT + BIG_DIM_COUNT // 5
# Best-of-3 in both sizes: a single smoke measurement is too noisy on a
# loaded CI runner to hold even a loose speedup floor.
REPEATS = 3

#: Required vectorized-over-row speedups per workload.  The CI floor is
#: deliberately loose — shared runners are noisy — while the full run holds
#: the paper-style claims: the ISSUE-4 acceptance bar is ≥5x on the join
#: and group-by scenarios at 100k rows.
FLOORS = {
    "filter_aggregate": 1.5 if SMOKE else 4.0,
    "group_by": 1.5 if SMOKE else 5.0,
    "group_by_multi": 1.5 if SMOKE else 5.0,
    "join": 1.2 if SMOKE else 5.0,
    "join_inner_large": 1.2 if SMOKE else 5.0,
    "join_left_outer": 1.2 if SMOKE else 5.0,
}

WORKLOADS = {
    "filter_aggregate": (
        "SELECT count(*) AS n, sum(value) AS s, avg(value) AS a, max(value) AS hi "
        "FROM fact WHERE value > 25.0 AND flag = 3"
    ),
    "group_by": (
        "SELECT grp, count(*) AS n, avg(value) AS a FROM fact GROUP BY grp ORDER BY grp"
    ),
    "group_by_multi": (
        "SELECT grp, flag, bucket, region, count(*) AS n, avg(value) AS a, "
        "max(value) AS hi FROM fact GROUP BY grp, flag, bucket, region"
    ),
    "join": (
        "SELECT d.label, count(*) AS n, sum(f.value) AS s FROM fact f "
        "JOIN dims d ON f.grp = d.grp WHERE f.value > 10.0 GROUP BY d.label ORDER BY d.label"
    ),
    "join_inner_large": (
        "SELECT count(*) AS n, sum(f.value) AS s, min(d.weight) AS lo FROM fact f "
        "JOIN dim_big d ON f.fk = d.fk"
    ),
    "join_left_outer": (
        "SELECT count(*) AS n, count(d.weight) AS matched, sum(f.value) AS s "
        "FROM fact f LEFT JOIN dim_big d ON f.fk = d.fk"
    ),
}


def build_engine(mode: str) -> RelationalEngine:
    rng = random.Random(1234)
    engine = RelationalEngine("bench", execution_mode=mode)
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, value FLOAT, "
        "flag INTEGER, bucket INTEGER, region TEXT, fk INTEGER)"
    )
    engine.insert_rows(
        "fact",
        [
            (
                i,
                i % DIM_COUNT,
                rng.random() * 100.0,
                i % 7,
                i % 4,
                f"region_{i % 8}",
                rng.randrange(FK_RANGE),
            )
            for i in range(ROW_COUNT)
        ],
    )
    engine.execute("CREATE TABLE dims (grp INTEGER PRIMARY KEY, label TEXT)")
    engine.insert_rows("dims", [(g, f"segment_{g % 8}") for g in range(DIM_COUNT)])
    engine.execute("CREATE TABLE dim_big (fk INTEGER PRIMARY KEY, weight FLOAT)")
    engine.insert_rows(
        "dim_big", [(k, rng.random() * 10.0) for k in range(BIG_DIM_COUNT)]
    )
    return engine


@pytest.fixture(scope="module")
def engines():
    return {"vectorized": build_engine("vectorized"), "row": build_engine("row")}


def time_query(engine: RelationalEngine, query: str) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = engine.execute(query)
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_vectorized_speedup(engines, workload):
    query = WORKLOADS[workload]
    vec_seconds, vec_result = time_query(engines["vectorized"], query)
    row_seconds, row_result = time_query(engines["row"], query)

    codec = BinaryCodec()
    assert codec.encode(vec_result) == codec.encode(row_result), (
        f"{workload}: vectorized and row results must be byte-identical"
    )

    speedup = row_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    print(
        f"\n[claim12:{workload}] rows={ROW_COUNT} vectorized={vec_seconds * 1000:.1f}ms "
        f"row={row_seconds * 1000:.1f}ms speedup={speedup:.1f}x (floor {FLOORS[workload]}x)"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", workload,
        rows=ROW_COUNT,
        vectorized_seconds=vec_seconds,
        row_seconds=row_seconds,
        speedup=speedup,
        floor=FLOORS[workload],
        smoke=SMOKE,
    )
    assert speedup >= FLOORS[workload], (
        f"{workload}: vectorized must be >= {FLOORS[workload]}x faster, got {speedup:.2f}x"
    )


def test_modes_identical_on_edge_shapes(engines):
    """Queries whose shapes stress fallbacks must agree between modes too."""
    queries = [
        "SELECT count(*) AS n FROM fact WHERE value > 1000.0",  # empty result
        "SELECT f.id FROM fact f LEFT JOIN dims d ON f.grp = d.grp "
        "WHERE f.id < 50 ORDER BY f.id",  # batched outer hash join
        "SELECT f.id, d.fk FROM fact f RIGHT JOIN dim_big d ON f.fk = d.fk "
        "WHERE d.fk < 20 ORDER BY d.fk, f.id",  # trailing null-padded build rows
        "SELECT DISTINCT flag FROM fact ORDER BY flag",
        "SELECT id FROM fact WHERE id = 4242",  # index scan
    ]
    for query in queries:
        vec = engines["vectorized"].execute(query)
        row = engines["row"].execute(query)
        assert [r.values for r in vec.rows] == [r.values for r in row.rows], query


def test_explain_reports_both_paths(engines):
    plan = engines["vectorized"].explain(WORKLOADS["filter_aggregate"])
    assert plan.startswith("ExecutionMode(vectorized)")
    assert "[vectorized]" in plan


def test_explain_left_outer_join_is_vectorized(engines):
    """ISSUE-4 acceptance: no row-executor fallback on equi outer joins."""
    plan = engines["vectorized"].explain(WORKLOADS["join_left_outer"])
    join_line = next(line for line in plan.splitlines() if "Join" in line)
    assert "[vectorized]" in join_line and "[row" not in join_line


# --------------------------------------------------------------------- ISSUE 5
# Wide-table join (projection pushdown) and high-cardinality group-by
# (streaming two-pass) scenarios, reporting gathered-column counts and peak
# resident rows.

WIDE_PAYLOAD_COLUMNS = 32
WIDE_JOIN_QUERY = (
    "SELECT d.label, count(*) AS n, sum(w.p0) AS s FROM wtab w "
    "JOIN wdim d ON w.fk = d.fk GROUP BY d.label ORDER BY d.label"
)
HIGHCARD_GROUPS = ROW_COUNT // 20
HIGHCARD_QUERY = (
    "SELECT hk, count(*) AS n, sum(value) AS s, avg(value) AS a, "
    "max(value) AS hi FROM htab GROUP BY hk"
)

#: Wide-join floor: optimized vectorized vs the PR-4 vectorized baseline
#: (optimizer off, every column gathered).  The ISSUE-5 acceptance bar is
#: 1.5x at full size; smoke stays loose for noisy CI runners.
WIDE_JOIN_FLOOR = 1.1 if SMOKE else 1.5


def build_wide_engine(optimize: bool) -> RelationalEngine:
    rng = random.Random(99)
    engine = RelationalEngine("bench_wide", execution_mode="vectorized")
    engine.optimizer_enabled = optimize
    payload = ", ".join(f"p{i} FLOAT" for i in range(WIDE_PAYLOAD_COLUMNS))
    engine.execute(
        f"CREATE TABLE wtab (id INTEGER PRIMARY KEY, fk INTEGER, {payload})"
    )
    engine.insert_rows(
        "wtab",
        [
            (i, rng.randrange(DIM_COUNT), *[float(i % (j + 7)) for j in range(WIDE_PAYLOAD_COLUMNS)])
            for i in range(ROW_COUNT)
        ],
    )
    engine.execute("CREATE TABLE wdim (fk INTEGER PRIMARY KEY, label TEXT)")
    engine.insert_rows("wdim", [(k, f"seg_{k % 6}") for k in range(DIM_COUNT)])
    return engine


def gathered_join_columns(engine: RelationalEngine, query: str) -> int:
    """Total columns the plan's hash joins pull from their inputs."""
    from repro.engines.relational.optimizer import plan_column_names
    from repro.engines.relational.planner import JoinNode

    total = 0

    def visit(node) -> None:
        nonlocal total
        if isinstance(node, JoinNode):
            for side in (node.left, node.right):
                names = plan_column_names(side, engine)
                total += len(names) if names is not None else 0
        for child in node.children():
            visit(child)

    visit(engine.plan(query))
    return total


def test_wide_join_prunes_columns_and_speeds_up():
    """ISSUE-5 acceptance: the wide join gathers only referenced columns and
    beats the PR-4 vectorized baseline by the floor."""
    optimized = build_wide_engine(optimize=True)
    baseline = build_wide_engine(optimize=False)
    pruned_cols = gathered_join_columns(optimized, WIDE_JOIN_QUERY)
    full_cols = gathered_join_columns(baseline, WIDE_JOIN_QUERY)
    opt_seconds, opt_result = time_query(optimized, WIDE_JOIN_QUERY)
    base_seconds, base_result = time_query(baseline, WIDE_JOIN_QUERY)

    codec = BinaryCodec()
    assert codec.encode(opt_result) == codec.encode(base_result), (
        "pruning must not change results"
    )
    speedup = base_seconds / opt_seconds if opt_seconds > 0 else float("inf")
    print(
        f"\n[claim12:join_wide] rows={ROW_COUNT} payload_cols={WIDE_PAYLOAD_COLUMNS} "
        f"gathered: {full_cols} -> {pruned_cols} columns | optimized={opt_seconds * 1000:.1f}ms "
        f"baseline={base_seconds * 1000:.1f}ms speedup={speedup:.2f}x (floor {WIDE_JOIN_FLOOR}x)"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", "join_wide",
        rows=ROW_COUNT,
        gathered_columns_baseline=full_cols,
        gathered_columns_optimized=pruned_cols,
        optimized_seconds=opt_seconds,
        baseline_seconds=base_seconds,
        speedup=speedup,
        smoke=SMOKE,
    )
    assert pruned_cols < full_cols, "join must gather fewer columns when optimized"
    assert pruned_cols <= 4, f"expected only key+payload columns, got {pruned_cols}"
    assert optimized.columns_pruned > 0
    assert speedup >= WIDE_JOIN_FLOOR, (
        f"wide join: pruning must be >= {WIDE_JOIN_FLOOR}x over the gather-all "
        f"baseline, got {speedup:.2f}x"
    )


def build_highcard_engine(mode: str, streaming: bool = True) -> RelationalEngine:
    rng = random.Random(7)
    engine = RelationalEngine("bench_hc", execution_mode=mode)
    engine.streaming_groupby = streaming
    engine.execute(
        "CREATE TABLE htab (id INTEGER PRIMARY KEY, hk INTEGER, value FLOAT)"
    )
    engine.insert_rows(
        "htab",
        [(i, rng.randrange(HIGHCARD_GROUPS), rng.random() * 50.0) for i in range(ROW_COUNT)],
    )
    return engine


def test_streaming_groupby_bounds_peak_resident_rows():
    """ISSUE-5 acceptance + CI memory guard: the high-cardinality group-by
    streams with peak resident rows O(batch + groups) — if the block path
    silently reactivates, the peak jumps to the full input size and this
    fails."""
    from repro.engines.relational.vectorized import DEFAULT_BATCH_ROWS

    streaming = build_highcard_engine("vectorized", streaming=True)
    block = build_highcard_engine("vectorized", streaming=False)
    row = build_highcard_engine("row")

    stream_seconds, stream_result = time_query(streaming, HIGHCARD_QUERY)
    block_seconds, block_result = time_query(block, HIGHCARD_QUERY)
    row_seconds, row_result = time_query(row, HIGHCARD_QUERY)

    codec = BinaryCodec()
    encoded = codec.encode(stream_result)
    assert encoded == codec.encode(block_result)
    assert encoded == codec.encode(row_result)

    assert streaming.groupby_paths.get("stream", 0) >= 1
    assert streaming.groupby_paths.get("block", 0) == 0, (
        "the block group-by path silently reactivated"
    )
    peak = streaming.peak_groupby_resident_rows
    bound = DEFAULT_BATCH_ROWS + HIGHCARD_GROUPS
    speedup = row_seconds / stream_seconds if stream_seconds > 0 else float("inf")
    print(
        f"\n[claim12:group_by_highcard] rows={ROW_COUNT} groups={HIGHCARD_GROUPS} "
        f"peak_resident_rows: stream={peak} block={block.peak_groupby_resident_rows} "
        f"(bound {bound}) | stream={stream_seconds * 1000:.1f}ms "
        f"block={block_seconds * 1000:.1f}ms row={row_seconds * 1000:.1f}ms "
        f"speedup_vs_row={speedup:.1f}x"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", "group_by_highcard",
        rows=ROW_COUNT,
        groups=HIGHCARD_GROUPS,
        stream_seconds=stream_seconds,
        block_seconds=block_seconds,
        row_seconds=row_seconds,
        peak_resident_rows=peak,
        speedup_vs_row=speedup,
        smoke=SMOKE,
    )
    assert peak <= bound, (
        f"streaming group-by peak resident rows {peak} exceeds O(batch+groups) "
        f"bound {bound}"
    )
    assert peak < ROW_COUNT
    assert block.peak_groupby_resident_rows == ROW_COUNT
    floor = 1.5 if SMOKE else 4.0
    assert speedup >= floor, (
        f"high-cardinality streaming group-by must be >= {floor}x over row "
        f"mode, got {speedup:.2f}x"
    )


# --------------------------------------------------------------------- ISSUE 6
# Morsel-driven parallelism: a core-count sweep over the parallel join and
# group-by pipelines, plus a larger-than-budget build that must complete via
# partition spill.  Byte-identity across worker counts and spill paths is
# asserted unconditionally; the >=2x speedup floor at 4 workers only applies
# on machines that actually have >=4 cores and in the full-size run —
# a 1-core CI container cannot observe thread-level speedup.

WORKER_SWEEP = (1, 2, 4)
PARALLEL_SPEEDUP_FLOOR = 2.0
PARALLEL_WORKLOADS = {
    "parallel_join": WORKLOADS["join_inner_large"],
    "parallel_group_by": HIGHCARD_QUERY,
}


def build_parallel_engine(workload: str, workers: int,
                          budget: int | None = None) -> RelationalEngine:
    if workload == "parallel_group_by":
        engine = build_highcard_engine("vectorized")
    else:
        engine = build_engine("vectorized")
    engine.parallelism = workers
    engine.join_memory_budget = budget
    return engine


@pytest.mark.parametrize("workload", sorted(PARALLEL_WORKLOADS))
def test_parallel_worker_sweep(workload):
    """ISSUE-6 acceptance: worker count changes latency, never a byte."""
    query = PARALLEL_WORKLOADS[workload]
    codec = BinaryCodec()
    timings: dict[int, float] = {}
    encoded: bytes | None = None
    for workers in WORKER_SWEEP:
        engine = build_parallel_engine(workload, workers)
        seconds, result = time_query(engine, query)
        timings[workers] = seconds
        payload = codec.encode(result)
        if encoded is None:
            encoded = payload
        else:
            assert payload == encoded, (
                f"{workload}: results must be byte-identical at {workers} workers"
            )
    sweep = " ".join(f"w{w}={timings[w] * 1000:.1f}ms" for w in WORKER_SWEEP)
    speedup = timings[1] / timings[4] if timings[4] > 0 else float("inf")
    print(
        f"\n[claim12:{workload}] rows={ROW_COUNT} cores={os.cpu_count()} "
        f"{sweep} speedup_4w={speedup:.2f}x"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", workload,
        rows=ROW_COUNT,
        cores=os.cpu_count(),
        seconds_by_workers={str(w): timings[w] for w in WORKER_SWEEP},
        speedup_4_workers=speedup,
        smoke=SMOKE,
    )
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"{workload}: 4 workers must be >= {PARALLEL_SPEEDUP_FLOOR}x over "
            f"serial on a >=4-core machine, got {speedup:.2f}x"
        )


def test_join_spill_budget_completes_and_matches():
    """ISSUE-6 acceptance + CI spill guard: a join whose build side exceeds
    the memory budget completes via radix-partition spill with results
    byte-identical to the unbudgeted in-memory join."""
    query = WORKLOADS["join_inner_large"]
    codec = BinaryCodec()
    unbudgeted = build_parallel_engine("parallel_join", 1, budget=None)
    _, expected = time_query(unbudgeted, query)
    assert unbudgeted.partitions_spilled == 0

    # dim_big (the build side) holds BIG_DIM_COUNT rows; a budget of a few
    # hundred bytes is orders of magnitude below it at any size.
    budgeted = build_parallel_engine("parallel_join", 1, budget=512)
    seconds, result = time_query(budgeted, query)
    assert codec.encode(result) == codec.encode(expected), (
        "spilled join drifted from the in-memory join"
    )
    assert budgeted.partitions_spilled > 0, (
        "the spill path never engaged under a 512-byte build budget"
    )
    assert "[spill]" in budgeted.explain(query)
    print(
        f"\n[claim12:join_spill] rows={ROW_COUNT} build_rows={BIG_DIM_COUNT} "
        f"budget=512B spilled_partitions={budgeted.partitions_spilled} "
        f"peak_build_bytes={budgeted.peak_build_bytes} "
        f"spill={seconds * 1000:.1f}ms"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", "join_spill",
        rows=ROW_COUNT,
        build_rows=BIG_DIM_COUNT,
        budget_bytes=512,
        spilled_partitions=budgeted.partitions_spilled,
        peak_build_bytes=budgeted.peak_build_bytes,
        spill_seconds=seconds,
        smoke=SMOKE,
    )


# --------------------------------------------------------------------- ISSUE 7
# Tracing overhead guard: the observability layer must stay cheap enough to
# leave on.  The same mixed workload runs with the global tracer disabled and
# enabled; enabled must stay within TRACING_OVERHEAD_CEILING of disabled.

TRACING_OVERHEAD_CEILING = 1.3


def test_tracing_overhead_bounded(engines):
    """ISSUE-7 acceptance + CI guard: tracing every operator, morsel and
    span stays within the overhead ceiling of the untraced run."""
    from repro.observability.tracing import Tracer, get_tracer, set_tracer

    engine = engines["vectorized"]
    queries = [
        WORKLOADS["filter_aggregate"],
        WORKLOADS["group_by"],
        WORKLOADS["join"],
    ]

    def run_all() -> float:
        best = float("inf")
        for _ in range(REPEATS):
            started = time.perf_counter()
            for query in queries:
                engine.execute(query)
            best = min(best, time.perf_counter() - started)
        return best

    previous = get_tracer()
    baseline_seconds = run_all()
    tracer = Tracer(enabled=True)
    set_tracer(tracer)
    try:
        traced_seconds = run_all()
    finally:
        set_tracer(previous)
    assert len(tracer) > 0, "the traced run collected no spans"
    overhead = traced_seconds / baseline_seconds if baseline_seconds > 0 else 1.0
    print(
        f"\n[claim12:tracing_overhead] rows={ROW_COUNT} "
        f"disabled={baseline_seconds * 1000:.1f}ms traced={traced_seconds * 1000:.1f}ms "
        f"overhead={overhead:.2f}x (ceiling {TRACING_OVERHEAD_CEILING}x)"
    )
    from bench_recording import record_bench

    record_bench(
        "claim12", "tracing_overhead",
        rows=ROW_COUNT,
        disabled_seconds=baseline_seconds,
        traced_seconds=traced_seconds,
        overhead=overhead,
        spans=len(tracer),
        smoke=SMOKE,
    )
    assert overhead <= TRACING_OVERHEAD_CEILING, (
        f"tracing overhead {overhead:.2f}x exceeds the "
        f"{TRACING_OVERHEAD_CEILING}x ceiling"
    )
