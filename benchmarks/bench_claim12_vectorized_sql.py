"""CLAIM-12 — vectorized batch execution vs row-at-a-time SQL.

BigDAWG's premise is that each island runs its workload "as fast as the
hardware allows".  PR 3 rebuilt the relational engine's SELECT path around
columnar batches and one-time expression compilation; this benchmark
quantifies what that buys over the classic volcano executor on the engine's
hot shapes:

1. **Filter + aggregate** — the bench_claim1/claim8 hot path: a predicate
   over 100k rows feeding global aggregates.  The vectorized path must be at
   least 4x faster.
2. **Group-by** — keyed aggregation over the same table.
3. **Hash join** — fact-to-dimension equi-join with a residual filter.

Every comparison also asserts the two modes return *byte-identical* results
(same values, same order, same binary encoding), so the speedup never comes
at the price of drifted semantics.

Set ``RUNTIME_BENCH_SMOKE=1`` for the CI-sized run (10k rows, relaxed
speedup floors, same identity assertions).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.common.serialization import BinaryCodec
from repro.engines.relational import RelationalEngine

SMOKE = os.environ.get("RUNTIME_BENCH_SMOKE", "") not in ("", "0")

ROW_COUNT = 10_000 if SMOKE else 100_000
DIM_COUNT = 50
# Best-of-3 in both sizes: a single smoke measurement is too noisy on a
# loaded CI runner to hold even a loose speedup floor.
REPEATS = 3

#: Required vectorized-over-row speedups per workload.  The CI floor is
#: deliberately loose — shared runners are noisy — while the full run holds
#: the paper-style claim on the filter+aggregate hot path.
FLOORS = {
    "filter_aggregate": 1.5 if SMOKE else 4.0,
    "group_by": 1.5 if SMOKE else 3.0,
    "join": 1.2 if SMOKE else 1.5,
}

WORKLOADS = {
    "filter_aggregate": (
        "SELECT count(*) AS n, sum(value) AS s, avg(value) AS a, max(value) AS hi "
        "FROM fact WHERE value > 25.0 AND flag = 3"
    ),
    "group_by": (
        "SELECT grp, count(*) AS n, avg(value) AS a FROM fact GROUP BY grp ORDER BY grp"
    ),
    "join": (
        "SELECT d.label, count(*) AS n, sum(f.value) AS s FROM fact f "
        "JOIN dims d ON f.grp = d.grp WHERE f.value > 10.0 GROUP BY d.label ORDER BY d.label"
    ),
}


def build_engine(mode: str) -> RelationalEngine:
    rng = random.Random(1234)
    engine = RelationalEngine("bench", execution_mode=mode)
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, value FLOAT, flag INTEGER)"
    )
    engine.insert_rows(
        "fact",
        [
            (i, i % DIM_COUNT, rng.random() * 100.0, i % 7)
            for i in range(ROW_COUNT)
        ],
    )
    engine.execute("CREATE TABLE dims (grp INTEGER PRIMARY KEY, label TEXT)")
    engine.insert_rows("dims", [(g, f"segment_{g % 8}") for g in range(DIM_COUNT)])
    return engine


@pytest.fixture(scope="module")
def engines():
    return {"vectorized": build_engine("vectorized"), "row": build_engine("row")}


def time_query(engine: RelationalEngine, query: str) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = engine.execute(query)
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_vectorized_speedup(engines, workload):
    query = WORKLOADS[workload]
    vec_seconds, vec_result = time_query(engines["vectorized"], query)
    row_seconds, row_result = time_query(engines["row"], query)

    codec = BinaryCodec()
    assert codec.encode(vec_result) == codec.encode(row_result), (
        f"{workload}: vectorized and row results must be byte-identical"
    )

    speedup = row_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    print(
        f"\n[claim12:{workload}] rows={ROW_COUNT} vectorized={vec_seconds * 1000:.1f}ms "
        f"row={row_seconds * 1000:.1f}ms speedup={speedup:.1f}x (floor {FLOORS[workload]}x)"
    )
    assert speedup >= FLOORS[workload], (
        f"{workload}: vectorized must be >= {FLOORS[workload]}x faster, got {speedup:.2f}x"
    )


def test_modes_identical_on_edge_shapes(engines):
    """Queries whose shapes stress fallbacks must agree between modes too."""
    queries = [
        "SELECT count(*) AS n FROM fact WHERE value > 1000.0",  # empty result
        "SELECT f.id FROM fact f LEFT JOIN dims d ON f.grp = d.grp "
        "WHERE f.id < 50 ORDER BY f.id",  # row-fallback join
        "SELECT DISTINCT flag FROM fact ORDER BY flag",
        "SELECT id FROM fact WHERE id = 4242",  # index scan
    ]
    for query in queries:
        vec = engines["vectorized"].execute(query)
        row = engines["row"].execute(query)
        assert [r.values for r in vec.rows] == [r.values for r in row.rows], query


def test_explain_reports_both_paths(engines):
    plan = engines["vectorized"].explain(WORKLOADS["filter_aggregate"])
    assert plan.startswith("ExecutionMode(vectorized)")
    assert "[vectorized]" in plan
