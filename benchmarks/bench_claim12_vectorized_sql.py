"""CLAIM-12 — vectorized batch execution vs row-at-a-time SQL.

BigDAWG's premise is that each island runs its workload "as fast as the
hardware allows".  PR 3 rebuilt the relational engine's SELECT path around
columnar batches and one-time expression compilation; this benchmark
quantifies what that buys over the classic volcano executor on the engine's
hot shapes:

1. **Filter + aggregate** — the bench_claim1/claim8 hot path: a predicate
   over 100k rows feeding global aggregates.  The vectorized path must be at
   least 4x faster.
2. **Group-by** — keyed aggregation over the same table, single-column and
   four-column (the key-encoded numpy group-by), each ≥5x.
3. **Hash joins** — fact-to-dimension equi-joins: the small-dimension shape
   with a residual filter, plus 100k×10k inner and left-outer joins on the
   key-encoded batched hash join, each ≥5x.

Every comparison also asserts the two modes return *byte-identical* results
(same values, same order, same binary encoding), so the speedup never comes
at the price of drifted semantics.

Set ``RUNTIME_BENCH_SMOKE=1`` for the CI-sized run (10k rows, relaxed
speedup floors, same identity assertions).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.common.serialization import BinaryCodec
from repro.engines.relational import RelationalEngine

SMOKE = os.environ.get("RUNTIME_BENCH_SMOKE", "") not in ("", "0")

ROW_COUNT = 10_000 if SMOKE else 100_000
DIM_COUNT = 50
BIG_DIM_COUNT = 1_000 if SMOKE else 10_000
#: fact.fk spreads over a range wider than dim_big's keys, so the outer-join
#: scenario has both matched and (null-padded) unmatched probe rows.
FK_RANGE = BIG_DIM_COUNT + BIG_DIM_COUNT // 5
# Best-of-3 in both sizes: a single smoke measurement is too noisy on a
# loaded CI runner to hold even a loose speedup floor.
REPEATS = 3

#: Required vectorized-over-row speedups per workload.  The CI floor is
#: deliberately loose — shared runners are noisy — while the full run holds
#: the paper-style claims: the ISSUE-4 acceptance bar is ≥5x on the join
#: and group-by scenarios at 100k rows.
FLOORS = {
    "filter_aggregate": 1.5 if SMOKE else 4.0,
    "group_by": 1.5 if SMOKE else 5.0,
    "group_by_multi": 1.5 if SMOKE else 5.0,
    "join": 1.2 if SMOKE else 5.0,
    "join_inner_large": 1.2 if SMOKE else 5.0,
    "join_left_outer": 1.2 if SMOKE else 5.0,
}

WORKLOADS = {
    "filter_aggregate": (
        "SELECT count(*) AS n, sum(value) AS s, avg(value) AS a, max(value) AS hi "
        "FROM fact WHERE value > 25.0 AND flag = 3"
    ),
    "group_by": (
        "SELECT grp, count(*) AS n, avg(value) AS a FROM fact GROUP BY grp ORDER BY grp"
    ),
    "group_by_multi": (
        "SELECT grp, flag, bucket, region, count(*) AS n, avg(value) AS a, "
        "max(value) AS hi FROM fact GROUP BY grp, flag, bucket, region"
    ),
    "join": (
        "SELECT d.label, count(*) AS n, sum(f.value) AS s FROM fact f "
        "JOIN dims d ON f.grp = d.grp WHERE f.value > 10.0 GROUP BY d.label ORDER BY d.label"
    ),
    "join_inner_large": (
        "SELECT count(*) AS n, sum(f.value) AS s, min(d.weight) AS lo FROM fact f "
        "JOIN dim_big d ON f.fk = d.fk"
    ),
    "join_left_outer": (
        "SELECT count(*) AS n, count(d.weight) AS matched, sum(f.value) AS s "
        "FROM fact f LEFT JOIN dim_big d ON f.fk = d.fk"
    ),
}


def build_engine(mode: str) -> RelationalEngine:
    rng = random.Random(1234)
    engine = RelationalEngine("bench", execution_mode=mode)
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, value FLOAT, "
        "flag INTEGER, bucket INTEGER, region TEXT, fk INTEGER)"
    )
    engine.insert_rows(
        "fact",
        [
            (
                i,
                i % DIM_COUNT,
                rng.random() * 100.0,
                i % 7,
                i % 4,
                f"region_{i % 8}",
                rng.randrange(FK_RANGE),
            )
            for i in range(ROW_COUNT)
        ],
    )
    engine.execute("CREATE TABLE dims (grp INTEGER PRIMARY KEY, label TEXT)")
    engine.insert_rows("dims", [(g, f"segment_{g % 8}") for g in range(DIM_COUNT)])
    engine.execute("CREATE TABLE dim_big (fk INTEGER PRIMARY KEY, weight FLOAT)")
    engine.insert_rows(
        "dim_big", [(k, rng.random() * 10.0) for k in range(BIG_DIM_COUNT)]
    )
    return engine


@pytest.fixture(scope="module")
def engines():
    return {"vectorized": build_engine("vectorized"), "row": build_engine("row")}


def time_query(engine: RelationalEngine, query: str) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = engine.execute(query)
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_vectorized_speedup(engines, workload):
    query = WORKLOADS[workload]
    vec_seconds, vec_result = time_query(engines["vectorized"], query)
    row_seconds, row_result = time_query(engines["row"], query)

    codec = BinaryCodec()
    assert codec.encode(vec_result) == codec.encode(row_result), (
        f"{workload}: vectorized and row results must be byte-identical"
    )

    speedup = row_seconds / vec_seconds if vec_seconds > 0 else float("inf")
    print(
        f"\n[claim12:{workload}] rows={ROW_COUNT} vectorized={vec_seconds * 1000:.1f}ms "
        f"row={row_seconds * 1000:.1f}ms speedup={speedup:.1f}x (floor {FLOORS[workload]}x)"
    )
    assert speedup >= FLOORS[workload], (
        f"{workload}: vectorized must be >= {FLOORS[workload]}x faster, got {speedup:.2f}x"
    )


def test_modes_identical_on_edge_shapes(engines):
    """Queries whose shapes stress fallbacks must agree between modes too."""
    queries = [
        "SELECT count(*) AS n FROM fact WHERE value > 1000.0",  # empty result
        "SELECT f.id FROM fact f LEFT JOIN dims d ON f.grp = d.grp "
        "WHERE f.id < 50 ORDER BY f.id",  # batched outer hash join
        "SELECT f.id, d.fk FROM fact f RIGHT JOIN dim_big d ON f.fk = d.fk "
        "WHERE d.fk < 20 ORDER BY d.fk, f.id",  # trailing null-padded build rows
        "SELECT DISTINCT flag FROM fact ORDER BY flag",
        "SELECT id FROM fact WHERE id = 4242",  # index scan
    ]
    for query in queries:
        vec = engines["vectorized"].execute(query)
        row = engines["row"].execute(query)
        assert [r.values for r in vec.rows] == [r.values for r in row.rows], query


def test_explain_reports_both_paths(engines):
    plan = engines["vectorized"].explain(WORKLOADS["filter_aggregate"])
    assert plan.startswith("ExecutionMode(vectorized)")
    assert "[vectorized]" in plan


def test_explain_left_outer_join_is_vectorized(engines):
    """ISSUE-4 acceptance: no row-executor fallback on equi outer joins."""
    plan = engines["vectorized"].explain(WORKLOADS["join_left_outer"])
    join_line = next(line for line in plan.splitlines() if "Join" in line)
    assert "[vectorized]" in join_line and "[row" not in join_line
