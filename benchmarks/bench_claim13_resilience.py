"""CLAIM-13 — robustness: the resilience layer keeps the polystore serving
through partial failures, at negligible cost when nothing is failing.

A federated system's defining failure mode is *partial*: one engine drops
connections or goes down while the rest keep answering.  Three experiments
over the synthetic MIMIC deployment:

1. **Healthy-path overhead** — the breaker-check + retry wrapper around every
   dispatch must cost microseconds, not milliseconds, when no faults fire.
2. **Chaos throughput** — a mixed workload with a seeded per-call fault rate
   completes every query via retries, with closed breakers at the end and
   zero lost or partially-imported objects.
3. **Fail-fast outage** — with an engine down and its breaker open, queries
   are rejected (or served flagged stale results) in microseconds instead of
   each paying the full retry-and-timeout path; after the cooldown the
   half-open probe closes the breaker and fresh results resume.
4. **Replica failover** — with a fresh replica registered, an outage on the
   primary re-routes reads instead of degrading: the first failure triggers
   a traced ``failover`` re-dispatch, and every later query routes straight
   to the healthy replica with live (non-stale) answers throughout.
5. **Write failover** — a write to the downed primary *elects* the fresh
   replica as the new primary (a journaled ``failover.write`` promotion)
   and lands there; a restarted runtime's crash recovery then repairs the
   demoted copy back to byte-parity with an anti-entropy CAST.

Set ``RUNTIME_BENCH_SMOKE=1`` for the CI-sized run (fewer rounds, same
assertions).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.common.errors import CircuitOpenError, EngineUnavailableError
from repro.engines.relational import RelationalEngine
from repro.mimic import MimicGenerator, build_polystore
from repro.runtime import (
    EngineResilience,
    FaultInjector,
    PolystoreRuntime,
    RetryPolicy,
)

SMOKE = os.environ.get("RUNTIME_BENCH_SMOKE", "") not in ("", "0")

ROUNDS = 6 if SMOKE else 30
OVERHEAD_CALLS = 2_000 if SMOKE else 20_000


@pytest.fixture(scope="module")
def deployment():
    generator = MimicGenerator(
        patient_count=40 if SMOKE else 120,
        waveform_patients=2,
        waveform_samples=500 if SMOKE else 2000,
        sample_rate_hz=125.0,
        anomaly_fraction=1.0,
        seed=7,
    )
    return build_polystore(generator=generator)


def _engine_for(bigdawg, object_name: str):
    return bigdawg.catalog.engine(bigdawg.catalog.locate(object_name).engine_name)


def _assert_no_partials(bigdawg) -> None:
    for location in bigdawg.catalog.objects():
        assert bigdawg.catalog.engine(location.engine_name).has_object(location.name)
    for engine in bigdawg.catalog.engines():
        assert not [n for n in engine.list_objects() if "__cast_shadow__" in n]


def test_resilience_overhead_when_healthy():
    """Breaker check + retry wrapping must be microseconds per dispatch."""
    resilience = EngineResilience()
    payload = iter(range(OVERHEAD_CALLS * 2 + 2)).__next__

    started = time.perf_counter()
    for _ in range(OVERHEAD_CALLS):
        payload()
    bare = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(OVERHEAD_CALLS):
        resilience.run(["postgres"], payload)
    wrapped = time.perf_counter() - started

    per_call_us = (wrapped - bare) / OVERHEAD_CALLS * 1e6
    print(
        f"\nCLAIM-13 healthy-path overhead: {per_call_us:.1f}us per dispatch "
        f"({OVERHEAD_CALLS} calls, bare {bare * 1e3:.1f}ms, "
        f"wrapped {wrapped * 1e3:.1f}ms)"
    )
    # Generous CI bound; typical is single-digit microseconds.
    assert per_call_us < 1000.0


def test_chaos_workload_completes_through_retries(deployment):
    """A seeded fault rate on the relational engine: every query still
    answers, via retries, and the breakers end the run closed."""
    bigdawg = deployment.bigdawg
    engine = _engine_for(bigdawg, "prescriptions")
    runtime = PolystoreRuntime(
        bigdawg, workers=4,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=8, base_backoff_s=0.001, jitter=0.0),
            failure_threshold=10_000,
        ),
    )
    injector = FaultInjector(seed=21).fail_rate("execute", 0.2)
    injector.install(engine)
    queries = [
        "RELATIONAL(SELECT count(*) AS n FROM prescriptions)",
        "RELATIONAL(SELECT count(*) AS n FROM patients)",
    ] * ROUNDS
    try:
        started = time.perf_counter()
        results = runtime.execute_many(queries, use_cache=False)
        elapsed = time.perf_counter() - started
    finally:
        injector.uninstall()
        runtime.shutdown()
    assert len(results) == len(queries)
    assert all(r.rows[0]["n"] > 0 for r in results)
    snapshot = runtime.metrics.snapshot()
    assert injector.total_injected() > 0
    assert snapshot["retry_attempts"] >= injector.injected.get("execute", 0) > 0
    assert snapshot["failed"] == 0
    assert all(state == "closed" for state in snapshot["breaker_states"].values())
    _assert_no_partials(bigdawg)
    print(
        f"\nCLAIM-13 chaos workload: {len(queries)} queries in {elapsed:.2f}s "
        f"with {injector.total_injected()} injected faults, "
        f"{snapshot['retry_attempts']} retries, {snapshot['failed']} failures"
    )


def test_outage_fails_fast_and_recovers(deployment):
    """An open breaker answers in microseconds (stale or rejected) instead of
    re-dispatching into a dead engine; the cooldown probe recovers it."""
    bigdawg = deployment.bigdawg
    engine = _engine_for(bigdawg, "patients")
    runtime = PolystoreRuntime(
        bigdawg, workers=2, serve_stale_on_open=True,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=2,
            cooldown_s=0.2,
        ),
    )
    query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
    injector = FaultInjector()
    try:
        fresh = runtime.execute(query)
        assert fresh.stale is False
        # Invalidate the cached entry (metadata bump), then down the engine.
        bigdawg.catalog.register_object(
            "patients", engine.name, engine.kind, replace=True
        )
        injector.outage()
        injector.install(engine)
        trip_failures = 0
        for _ in range(2):  # trip the breaker open
            try:
                runtime.execute(query)
            except EngineUnavailableError:
                trip_failures += 1
        assert trip_failures == 2
        assert runtime.resilience.states() == {engine.name: "open"}

        served = 0
        started = time.perf_counter()
        for _ in range(ROUNDS):
            try:
                result = runtime.execute(query)
                assert result.stale is True
                served += 1
            except CircuitOpenError:  # stale copy evicted: still fail-fast
                pass
        open_elapsed_ms = (time.perf_counter() - started) / ROUNDS * 1e3
        assert served == ROUNDS

        injector.restore()
        time.sleep(0.25)  # past the cooldown: the next call is the probe
        recovered = runtime.execute(query, use_cache=False)
        assert recovered.stale is False
        assert runtime.resilience.states() == {engine.name: "closed"}
        snapshot = runtime.metrics.snapshot()
        print(
            f"\nCLAIM-13 outage: {served}/{ROUNDS} open-breaker queries served "
            f"stale in {open_elapsed_ms:.2f}ms avg, "
            f"stale_served={snapshot['stale_served']}, "
            f"breaker opened {snapshot['breaker_open_total']}x / "
            f"closed {snapshot['breaker_close_total']}x"
        )
        assert open_elapsed_ms < (100.0 if SMOKE else 20.0)
    finally:
        injector.uninstall()
        runtime.shutdown()


def test_failover_serves_live_results_from_replica(deployment):
    """An outage on a replicated primary degrades to the replica, not to
    stale reads: the first failure re-dispatches under a ``failover`` span
    and every query — that one included — returns a live answer.

    Keep this experiment after the single-engine ones: it adds a standby
    engine to the shared deployment (which the write-failover experiment
    below then reuses).
    """
    bigdawg = deployment.bigdawg
    primary = _engine_for(bigdawg, "patients")
    standby = RelationalEngine("postgres_standby")
    bigdawg.add_engine(standby, islands=["relational"])
    bigdawg.migrator.cast("patients", "postgres_standby")
    runtime = PolystoreRuntime(
        bigdawg, workers=2,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=60.0,
        ),
    )
    query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
    injector = FaultInjector()
    try:
        healthy = runtime.execute(query, use_cache=False)
        injector.outage()
        injector.install(primary)
        # First post-outage query: the primary's failure trips its breaker
        # and the dispatcher re-plans against the replica mid-query.
        result, tracer = runtime.trace(query)
        assert result.rows[0]["n"] == healthy.rows[0]["n"]
        assert result.stale is False
        (span,) = tracer.spans("failover")
        assert span.attrs["to_engines"] == "postgres_standby"
        # Later queries route straight to the healthy replica, fail-fast.
        served_before = standby.queries_executed
        started = time.perf_counter()
        for _ in range(ROUNDS):
            routed = runtime.execute(query, use_cache=False)
            assert routed.rows[0]["n"] == healthy.rows[0]["n"]
            assert routed.stale is False
        routed_ms = (time.perf_counter() - started) / ROUNDS * 1e3
        assert standby.queries_executed - served_before >= ROUNDS
        snapshot = runtime.metrics.snapshot()
        assert snapshot["failover_total"] >= 1
        assert snapshot["failover_by_engine"].get(primary.name, 0) >= 1
        print(
            f"\nCLAIM-13 failover: outage on {primary.name!r} re-routed to "
            f"{standby.name!r} ({snapshot['failover_total']} traced "
            f"failovers), {ROUNDS} follow-up queries served live from the "
            f"replica in {routed_ms:.2f}ms avg"
        )
        assert routed_ms < (100.0 if SMOKE else 20.0)
    finally:
        injector.uninstall()
        runtime.shutdown()

def test_write_failover_elects_replica_and_recovery_repairs(deployment):
    """A write to a downed primary survives by *election*: the fresh
    standby replica is promoted to primary (journaled, under a
    ``failover.write`` span) and the write lands there; restarting the
    runtime over the same journal repairs the demoted copy back to
    byte-parity.

    Keep this experiment last in the module: it moves the ``patients``
    primary onto the standby and writes a row into the shared deployment.
    """
    bigdawg = deployment.bigdawg
    primary = _engine_for(bigdawg, "patients")
    standby = bigdawg.catalog.engine("postgres_standby")
    baseline = len(primary.export_relation("patients").rows)
    runtime = PolystoreRuntime(
        bigdawg, workers=2,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=60.0,
        ),
    )
    injector = FaultInjector().outage()
    injector.install(primary)
    try:
        started = time.perf_counter()
        _, tracer = runtime.trace(
            "INSERT INTO patients VALUES (999001, 54, 'F', 'white')"
        )
        elected_ms = (time.perf_counter() - started) * 1e3
        (span,) = tracer.spans("failover.write")
        assert span.attrs["from_engines"] == primary.name
        assert span.attrs["to_engines"] == standby.name
        # The election moved the primary and the write landed there, once.
        assert bigdawg.catalog.locate("patients").engine_name == standby.name
        assert len(standby.export_relation("patients").rows) == baseline + 1
        snapshot = runtime.metrics.snapshot()
        assert snapshot["writes_failed_over"] == 1
        assert snapshot["journal_open_intents"] == 0
    finally:
        injector.uninstall()  # the old primary comes back, one write behind
        runtime.shutdown()
    assert len(primary.export_relation("patients").rows) == baseline

    # "Restart": a fresh runtime over the same engines and the same
    # journal replays the committed election and repairs the stale copy.
    revived = PolystoreRuntime(
        bigdawg, workers=2,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=60.0,
        ),
        journal=runtime.journal,
    )
    try:
        assert revived.last_recovery is not None
        assert revived.last_recovery.repaired == 1
        assert len(primary.export_relation("patients").rows) == baseline + 1
        _assert_no_partials(bigdawg)
        print(
            f"\nCLAIM-13 write failover: outage on {primary.name!r} promoted "
            f"{standby.name!r} to primary in {elected_ms:.2f}ms (write "
            f"acknowledged), restart repaired the demoted copy "
            f"({revived.last_recovery.repaired} anti-entropy cast)"
        )
    finally:
        revived.shutdown()
