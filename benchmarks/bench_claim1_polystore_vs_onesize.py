"""CLAIM-1 — §4: the polystore outperforms a "one size fits all" system.

The paper expects one-to-two orders of magnitude on the workload classes that
do not fit the single engine.  Each pair of benchmarks below runs the same
logical task on the specialized engine (through BigDAWG) and on the single
relational store; the summary test prints the speedups so the shape (who wins,
roughly by how much) can be compared against the claim.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analytics import dominant_frequency


WINDOW = 64


# ------------------------------------------------------ SQL analytics (baseline's home turf)
def test_sql_analytics_polystore(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute,
        "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')",
    )
    assert result.rows[0]["n"] > 0


def test_sql_analytics_onesize(benchmark, bench_onesize):
    result = benchmark(bench_onesize.patients_given_drug, "heparin")
    assert result > 0


# ------------------------------------------------- complex analytics over waveforms
def test_windowed_analytics_polystore(benchmark, bench_deployment):
    query = (
        f"ARRAY(aggregate(window(waveform_history, value, {WINDOW}, avg, sample), max(avg_value)))"
    )
    result = benchmark(bench_deployment.bigdawg.execute, query)
    assert result.rows[0]["max(avg_value)"] > 0


def test_windowed_analytics_onesize(benchmark, bench_onesize):
    result = benchmark(bench_onesize.windowed_max_average, WINDOW)
    assert result > 0


def test_fft_polystore(benchmark, bench_deployment):
    array = bench_deployment.array.array("waveform_history")

    def run() -> float:
        signal = np.asarray(array.buffer("value")[0], dtype=float)
        return dominant_frequency(signal, 125.0)

    assert benchmark(run) > 0


def test_fft_onesize(benchmark, bench_onesize):
    assert benchmark(bench_onesize.dominant_frequency, 0) > 0


# ------------------------------------------------------------------- text search
def test_text_search_polystore(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute, 'TEXT(SEARCH notes FOR "very sick" MIN 3)'
    )
    assert len(result) >= 0


def test_text_search_onesize(benchmark, bench_onesize):
    benchmark(bench_onesize.patients_with_min_phrase, "very sick", 3)


# ----------------------------------------------------------------------- summary
def test_claim1_speedup_summary(bench_deployment, bench_onesize):
    """Print the per-class speedups (polystore vs one-size-fits-all)."""

    def timed(fn, repeat: int = 3) -> float:
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    array = bench_deployment.array.array("waveform_history")
    rows = [
        (
            "sql_analytics (count by drug)",
            timed(lambda: bench_onesize.patients_given_drug("heparin")),
            timed(lambda: bench_deployment.bigdawg.execute(
                "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')")),
        ),
        (
            "windowed waveform analytics",
            timed(lambda: bench_onesize.windowed_max_average(WINDOW), 1),
            timed(lambda: bench_deployment.bigdawg.execute(
                f"ARRAY(aggregate(window(waveform_history, value, {WINDOW}, avg, sample), max(avg_value)))"), 1),
        ),
        (
            "FFT of one signal",
            timed(lambda: bench_onesize.dominant_frequency(0), 1),
            timed(lambda: dominant_frequency(np.asarray(array.buffer("value")[0], dtype=float), 125.0)),
        ),
        (
            "text search (>=3 'very sick' notes)",
            timed(lambda: bench_onesize.patients_with_min_phrase("very sick", 3)),
            timed(lambda: bench_deployment.bigdawg.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)')),
        ),
    ]
    from bench_recording import record_bench

    print("\nCLAIM-1: specialized engines vs single relational store")
    print(f"{'workload class':38s} {'one-size (s)':>14s} {'polystore (s)':>14s} {'speedup':>9s}")
    specialized_wins = 0
    for label, baseline_seconds, polystore_seconds in rows:
        speedup = baseline_seconds / polystore_seconds if polystore_seconds > 0 else float("inf")
        print(f"{label:38s} {baseline_seconds:14.4f} {polystore_seconds:14.4f} {speedup:8.1f}x")
        record_bench(
            "claim1", label,
            onesize_seconds=baseline_seconds,
            polystore_seconds=polystore_seconds,
            speedup=speedup,
        )
        if label.startswith("sql"):
            continue  # SQL analytics is the baseline's home turf; no win expected
        if speedup > 1:
            specialized_wins += 1
    # The shape of the claim: every non-SQL workload class is faster on its
    # specialized engine, with at least one class an order of magnitude faster.
    assert specialized_wins == 3
    speedups = [b / p for _l, b, p in rows[1:]]
    assert max(speedups) > 10
