"""CLAIM-2 — §2.1: binary CASTs vs file-based (CSV) import/export.

The paper argues cross-database CASTs should be "more efficient than
file-based import/export" by reading binary data directly.  The benchmark
casts the same objects between engines through both paths at two sizes and
prints the throughput ratio; the binary path must not lose (and typically
wins clearly as row counts grow).

The chunk-size sweep measures the same claim *under bounded wire memory*:
the streaming pipeline holds at most one encoded frame at a time, so
``peak_chunk_bytes`` — reported alongside throughput — is the pipeline's
wire-memory footprint (destination-side buffering is the target engine's
own, e.g. the array engine still collects cells to size its dimensions),
and the binary-vs-CSV comparison holds at every chunk size.  The 100k-row
case checks that chunking costs nothing: the chunked binary path must keep
up with the old single-shot path while using a fraction of its peak
wire-frame memory.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.core.cast import CastMigrator
from repro.core.catalog import BigDawgCatalog
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.common.schema import Relation, Schema


def _catalog_with_rows(row_count: int) -> BigDawgCatalog:
    catalog = BigDawgCatalog()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    catalog.register_engine(postgres, ["relational"])
    catalog.register_engine(scidb, ["array"])
    catalog.register_engine(accumulo, ["text"])
    schema = Schema([("sample_index", "integer"), ("signal_id", "integer"), ("value", "float")])
    relation = Relation(schema, [[i, i % 4, (i % 97) * 0.25] for i in range(row_count)])
    postgres.import_relation("waveform_rows", relation)
    catalog.register_object("waveform_rows", "postgres", "table")
    return catalog


@pytest.fixture(scope="module")
def small_catalog():
    return _catalog_with_rows(2_000)


@pytest.fixture(scope="module")
def large_catalog():
    return _catalog_with_rows(20_000)


def test_cast_binary_small(benchmark, small_catalog):
    migrator = CastMigrator(small_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="binary",
        target_name="wf_bin", dimensions=["sample_index"],
    )
    assert record.rows == 2_000


def test_cast_csv_small(benchmark, small_catalog):
    migrator = CastMigrator(small_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="csv", use_tempfile=True,
        target_name="wf_csv", dimensions=["sample_index"],
    )
    assert record.rows == 2_000


def test_cast_binary_large(benchmark, large_catalog):
    migrator = CastMigrator(large_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="binary",
        target_name="wf_bin", dimensions=["sample_index"],
    )
    assert record.rows == 20_000


def test_cast_csv_large(benchmark, large_catalog):
    migrator = CastMigrator(large_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="csv", use_tempfile=True,
        target_name="wf_csv", dimensions=["sample_index"],
    )
    assert record.rows == 20_000


def test_claim2_chunk_size_sweep(large_catalog):
    """Sweep chunk sizes for both methods; report throughput and peak frame size."""
    migrator = CastMigrator(large_catalog)
    chunk_sizes = (1_000, 5_000, 20_000)
    peaks: dict[tuple[str, int], int] = {}
    print("\nCLAIM-2: chunk-size sweep, 20,000 rows postgres -> accumulo")
    print(f"  {'method':<8} {'chunk_size':>10} {'rows/s':>12} {'bytes':>12} {'peak_chunk_bytes':>18}")
    for method in ("binary", "csv"):
        for chunk_size in chunk_sizes:
            record = migrator.cast(
                "waveform_rows", "accumulo", method=method, chunk_size=chunk_size,
                target_name=f"sweep_{method}_{chunk_size}",
            )
            throughput = record.rows / record.seconds
            peaks[(method, chunk_size)] = record.peak_chunk_bytes
            print(
                f"  {method:<8} {chunk_size:>10,} {throughput:>12,.0f} "
                f"{record.bytes_moved:>12,} {record.peak_chunk_bytes:>18,}"
            )
    # Bounded memory: the peak frame scales with the chunk size, not the relation.
    for method in ("binary", "csv"):
        assert peaks[(method, 1_000)] < peaks[(method, 20_000)]
        assert peaks[(method, 1_000)] < peaks[(method, 20_000)] / 10


@pytest.fixture(scope="module")
def xlarge_catalog():
    return _catalog_with_rows(100_000)


def test_claim2_chunked_vs_single_shot_100k(xlarge_catalog):
    """Chunked binary CAST must keep up with the old single-shot binary path."""
    migrator = CastMigrator(xlarge_catalog)

    def best_of(chunk_size: int, target: str, attempts: int = 2):
        # Same noise treatment as test_claim2_summary: best-of-N with the
        # collector off, so one GC pause cannot flip the comparison.
        best = None
        for _ in range(attempts):
            gc.collect()
            gc.disable()
            try:
                record = migrator.cast(
                    "waveform_rows", "scidb", method="binary", chunk_size=chunk_size,
                    target_name=target, dimensions=["sample_index"],
                )
            finally:
                gc.enable()
            if best is None or record.seconds < best.seconds:
                best = record
        return best

    single = best_of(100_000, "wf_single")
    chunked = best_of(8_192, "wf_chunked")
    assert single.chunks == 1 and chunked.chunks == 13
    single_tput = single.rows / single.seconds
    chunked_tput = chunked.rows / chunked.seconds
    print("\nCLAIM-2: 100,000-row binary CAST, single-shot vs chunked")
    print(f"  single-shot : {single_tput:>12,.0f} rows/s, peak frame {single.peak_chunk_bytes:,} bytes")
    print(f"  chunked     : {chunked_tput:>12,.0f} rows/s, peak frame {chunked.peak_chunk_bytes:,} bytes")
    # Same work, bounded memory: throughput holds (10% timing tolerance) while
    # the peak in-memory frame shrinks by the chunking ratio.
    assert chunked_tput >= single_tput * 0.9
    assert chunked.peak_chunk_bytes < single.peak_chunk_bytes / 10


def test_claim2_summary():
    """Print the binary-vs-CSV comparison at the larger size."""
    # A fresh catalog (not the shared module fixture) and best-of-three timing:
    # the destination import dominates the wall clock and is noisy enough —
    # especially with other fixtures' data still resident — to flip a close
    # comparison on a single measurement.
    migrator = CastMigrator(_catalog_with_rows(20_000))

    def timed(method: str, use_tempfile: bool) -> tuple[float, int]:
        best, bytes_moved = float("inf"), 0
        accumulo = migrator.catalog.engine("accumulo")
        for attempt in range(3):
            # Keep the live heap identical for every run: drop the previous
            # destination, then time with the collector off so GC pauses
            # (which scale with whatever else the process has resident) do
            # not land on one method's measurement.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                record = migrator.cast(
                    "waveform_rows", "accumulo", method=method, use_tempfile=use_tempfile,
                    target_name="summary_scratch",
                )
                best = min(best, time.perf_counter() - start)
            finally:
                gc.enable()
            bytes_moved = record.bytes_moved
            accumulo.drop_object("summary_scratch")
            migrator.catalog.unregister_object("summary_scratch")
        return best, bytes_moved

    csv_seconds, csv_bytes = timed("csv", True)
    binary_seconds, binary_bytes = timed("binary", False)
    print("\nCLAIM-2: CAST of 20,000 waveform rows between engines")
    print(f"  file-based (CSV) : {csv_seconds:.4f} s, {csv_bytes:,} bytes")
    print(f"  binary direct    : {binary_seconds:.4f} s, {binary_bytes:,} bytes")
    print(f"  speedup          : {csv_seconds / binary_seconds:.2f}x")
    from bench_recording import record_bench

    record_bench(
        "claim2", "binary_vs_csv_20k_rows",
        csv_seconds=csv_seconds, csv_bytes=csv_bytes,
        binary_seconds=binary_seconds, binary_bytes=binary_bytes,
        speedup=csv_seconds / binary_seconds,
    )
    # Shape of the claim: the binary path is at least as fast as file-based export/import.
    assert binary_seconds <= csv_seconds * 1.1
