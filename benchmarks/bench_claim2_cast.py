"""CLAIM-2 — §2.1: binary CASTs vs file-based (CSV) import/export.

The paper argues cross-database CASTs should be "more efficient than
file-based import/export" by reading binary data directly.  The benchmark
casts the same objects between engines through both paths at two sizes and
prints the throughput ratio; the binary path must not lose (and typically
wins clearly as row counts grow).
"""

from __future__ import annotations

import time

import pytest

from repro.core.cast import CastMigrator
from repro.core.catalog import BigDawgCatalog
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.common.schema import Relation, Schema


def _catalog_with_rows(row_count: int) -> BigDawgCatalog:
    catalog = BigDawgCatalog()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    catalog.register_engine(postgres, ["relational"])
    catalog.register_engine(scidb, ["array"])
    catalog.register_engine(accumulo, ["text"])
    schema = Schema([("sample_index", "integer"), ("signal_id", "integer"), ("value", "float")])
    relation = Relation(schema, [[i, i % 4, (i % 97) * 0.25] for i in range(row_count)])
    postgres.import_relation("waveform_rows", relation)
    catalog.register_object("waveform_rows", "postgres", "table")
    return catalog


@pytest.fixture(scope="module")
def small_catalog():
    return _catalog_with_rows(2_000)


@pytest.fixture(scope="module")
def large_catalog():
    return _catalog_with_rows(20_000)


def test_cast_binary_small(benchmark, small_catalog):
    migrator = CastMigrator(small_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="binary",
        target_name="wf_bin", dimensions=["sample_index"],
    )
    assert record.rows == 2_000


def test_cast_csv_small(benchmark, small_catalog):
    migrator = CastMigrator(small_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="csv", use_tempfile=True,
        target_name="wf_csv", dimensions=["sample_index"],
    )
    assert record.rows == 2_000


def test_cast_binary_large(benchmark, large_catalog):
    migrator = CastMigrator(large_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="binary",
        target_name="wf_bin", dimensions=["sample_index"],
    )
    assert record.rows == 20_000


def test_cast_csv_large(benchmark, large_catalog):
    migrator = CastMigrator(large_catalog)
    record = benchmark(
        migrator.cast, "waveform_rows", "scidb", method="csv", use_tempfile=True,
        target_name="wf_csv", dimensions=["sample_index"],
    )
    assert record.rows == 20_000


def test_claim2_summary(large_catalog):
    """Print the binary-vs-CSV comparison at the larger size."""
    migrator = CastMigrator(large_catalog)

    def timed(method: str, use_tempfile: bool) -> tuple[float, int]:
        start = time.perf_counter()
        record = migrator.cast(
            "waveform_rows", "accumulo", method=method, use_tempfile=use_tempfile,
            target_name=f"summary_{method}",
        )
        return time.perf_counter() - start, record.bytes_moved

    csv_seconds, csv_bytes = timed("csv", True)
    binary_seconds, binary_bytes = timed("binary", False)
    print("\nCLAIM-2: CAST of 20,000 waveform rows between engines")
    print(f"  file-based (CSV) : {csv_seconds:.4f} s, {csv_bytes:,} bytes")
    print(f"  binary direct    : {binary_seconds:.4f} s, {binary_bytes:,} bytes")
    print(f"  speedup          : {csv_seconds / binary_seconds:.2f}x")
    # Shape of the claim: the binary path is at least as fast as file-based export/import.
    assert binary_seconds <= csv_seconds * 1.1
