"""CLAIM-3 — §1.2/§2.3: real-time alerting needs tens-of-milliseconds responses,
which tuple-at-a-time streaming delivers and micro-batching cannot.

The benchmark feeds the same 125 Hz waveform (with an injected arrhythmia)
into (a) the S-Store-style streaming engine with the reference-comparison
stored procedure and (b) a micro-batch processor with a one-second batch
interval, and reports the anomaly-detection latency of each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MicroBatchProcessor
from repro.engines.streaming import StreamingEngine
from repro.mimic import waveform_feed_tuples
from repro.mimic.loader import load_streaming
from repro.monitoring import ReferenceProfile, WaveformMonitor


@pytest.fixture(scope="module")
def feed(bench_dataset):
    return waveform_feed_tuples(bench_dataset, signal_id=0)


@pytest.fixture(scope="module")
def reference(bench_dataset):
    waveform = bench_dataset.waveforms[0]
    return ReferenceProfile.from_samples(
        waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
    )


def _run_streaming(bench_dataset, feed, reference) -> float:
    waveform = bench_dataset.waveforms[0]
    engine = StreamingEngine("bench_sstore")
    load_streaming(engine, bench_dataset)
    monitor = WaveformMonitor(reference, window_seconds=0.4)
    monitor.register(engine, "waveform_feed")
    for timestamp, payload in feed:
        engine.append("waveform_feed", timestamp, payload)
    anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
    alert = monitor.first_alert_after(anomaly_time)
    assert alert is not None
    return alert.timestamp - anomaly_time


def _run_microbatch(bench_dataset, feed, reference, batch_interval: float) -> float:
    waveform = bench_dataset.waveforms[0]
    processor = MicroBatchProcessor(
        batch_interval_seconds=batch_interval, window_seconds=0.4,
        detector=lambda values: float(np.sqrt(np.mean(values ** 2))),
        threshold=reference.rms * 1.5,
    )
    for timestamp, payload in feed:
        processor.ingest(timestamp, payload[2])
    processor.flush()
    anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
    latency = processor.detection_latency(anomaly_time)
    assert latency is not None
    return latency


def test_streaming_engine_ingest_throughput(benchmark, bench_dataset, feed, reference):
    """Time processing the full 125 Hz feed tuple-at-a-time with the monitor attached."""
    benchmark(_run_streaming, bench_dataset, feed, reference)


def test_microbatch_ingest_throughput(benchmark, bench_dataset, feed, reference):
    benchmark(_run_microbatch, bench_dataset, feed, reference, 1.0)


def test_claim3_detection_latency_summary(bench_dataset, feed, reference):
    streaming_latency = _run_streaming(bench_dataset, feed, reference)
    batch_latencies = {
        interval: _run_microbatch(bench_dataset, feed, reference, interval)
        for interval in (0.5, 1.0, 2.0)
    }
    print("\nCLAIM-3: anomaly detection latency (feed timestamps, 125 Hz waveform)")
    print(f"  tuple-at-a-time streaming engine : {streaming_latency * 1000:8.1f} ms")
    for interval, latency in batch_latencies.items():
        print(f"  micro-batch ({interval:.1f} s batches)      : {latency * 1000:8.1f} ms")
    from bench_recording import record_bench

    record_bench(
        "claim3", "detection_latency",
        streaming_latency_s=streaming_latency,
        microbatch_latency_s={str(k): v for k, v in batch_latencies.items()},
    )
    # Shape: the streaming engine alerts within a few hundred ms of the anomaly,
    # micro-batching is bounded below by its batch interval and loses clearly.
    assert streaming_latency < 0.5
    assert batch_latencies[1.0] > streaming_latency
    assert batch_latencies[2.0] >= batch_latencies[0.5]
