"""CLAIM-4 — §2.5: Tupleware's compiled workflows vs Hadoop-style execution.

"this system is nearly two orders of magnitude faster than the standard Hadoop
codeline."  The benchmark runs the same UDF workflow (filter → map → reduce
over a clinical feature vector) through the fused/vectorized executor and the
per-record interpreted executor (with a per-record overhead standing in for
Hadoop's serialization and task costs), and reports the speedup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engines.tupleware import InterpretedExecutor, TuplewareEngine, Workflow


RECORDS = 100_000


@pytest.fixture(scope="module")
def engine() -> TuplewareEngine:
    rng = np.random.default_rng(17)
    engine = TuplewareEngine()
    engine.load("vitals", rng.normal(loc=80, scale=12, size=RECORDS))
    return engine


def workflow() -> Workflow:
    return (
        Workflow("risk_score")
        .filter(lambda x: x > 60.0, lambda a: a > 60.0)
        .map(lambda x: (x - 60.0) * 0.03, lambda a: (a - 60.0) * 0.03)
        .reduce(lambda acc, x: acc + x, 0.0, lambda a: float(a.sum()))
    )


def test_tupleware_compiled(benchmark, engine):
    report = benchmark(engine.execute, workflow(), "vitals", True)
    assert report.fused and report.result > 0


def test_hadoop_style_interpreted(benchmark, engine):
    interpreted = InterpretedExecutor(per_record_overhead=20)

    def run():
        return interpreted.execute(workflow(), engine.dataset("vitals"))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.fused


def test_claim4_speedup_summary(engine):
    compiled_report = engine.execute(workflow(), "vitals", compiled=True)
    start = time.perf_counter()
    engine.execute(workflow(), "vitals", compiled=True)
    compiled_seconds = time.perf_counter() - start

    interpreted = InterpretedExecutor(per_record_overhead=20)
    start = time.perf_counter()
    interpreted_report = interpreted.execute(workflow(), engine.dataset("vitals"))
    interpreted_seconds = time.perf_counter() - start

    speedup = interpreted_seconds / compiled_seconds
    print(f"\nCLAIM-4: {RECORDS:,} records through filter→map→reduce")
    print(f"  compiled/fused (Tupleware)        : {compiled_seconds:.4f} s")
    print(f"  interpreted per-record (Hadoop-ish): {interpreted_seconds:.4f} s")
    print(f"  speedup                            : {speedup:.0f}x")
    from bench_recording import record_bench

    record_bench(
        "claim4", "compiled_vs_interpreted",
        records=RECORDS,
        compiled_seconds=compiled_seconds,
        interpreted_seconds=interpreted_seconds,
        speedup=speedup,
    )
    assert compiled_report.result == pytest.approx(interpreted_report.result, rel=1e-9)
    # Shape of the claim: order-of-magnitude-plus advantage for compiled execution.
    assert speedup > 10
