"""CLAIM-5 — §2.2: SeeDB's sampling + pruning gives interactive responses over
the full aggregate search space.

Compares recommend() with pruning (candidate selection on a sample, full
evaluation of the survivors) against exhaustive evaluation of every candidate
view, and checks that pruning does not change which view is ranked first.
"""

from __future__ import annotations

import time

import pytest

from repro.exploration import SeeDB


PREDICATE = "severity > 0.7"


@pytest.fixture(scope="module")
def seedb(bench_deployment) -> SeeDB:
    joined = bench_deployment.bigdawg.execute(
        "RELATIONAL(SELECT p.race AS race, p.sex AS sex, a.admission_type AS admission_type, "
        "a.outcome AS outcome, a.stay_days AS stay_days, a.severity AS severity "
        "FROM admissions a JOIN patients p ON a.patient_id = p.patient_id)"
    )
    bench_deployment.bigdawg.materialize_temporary("seedb_source", joined)
    return SeeDB(
        bench_deployment.bigdawg,
        "seedb_source",
        dimensions=["race", "sex", "admission_type", "outcome"],
        measures=["stay_days", "severity"],
        sample_fraction=0.15,
        prune_keep=6,
    )


def test_seedb_with_pruning(benchmark, seedb):
    report = benchmark(seedb.recommend, PREDICATE, 3, True)
    assert report.candidates_pruned > 0


def test_seedb_exhaustive(benchmark, seedb):
    report = benchmark.pedantic(seedb.recommend, args=(PREDICATE, 3, False), rounds=1, iterations=1)
    assert report.candidates_pruned == 0


def test_claim5_summary(seedb):
    start = time.perf_counter()
    pruned = seedb.recommend(PREDICATE, k=3, use_pruning=True)
    pruned_seconds = time.perf_counter() - start
    start = time.perf_counter()
    exhaustive = seedb.recommend(PREDICATE, k=3, use_pruning=False)
    exhaustive_seconds = time.perf_counter() - start
    print(f"\nCLAIM-5: SeeDB over {pruned.candidates_considered} candidate views")
    print(f"  pruning (sample {pruned.sample_fraction:.0%}): {pruned_seconds:.3f} s, "
          f"{pruned.full_evaluations} full evaluations")
    print(f"  exhaustive                : {exhaustive_seconds:.3f} s, "
          f"{exhaustive.full_evaluations} full evaluations")
    print(f"  top view (pruned)     : {pruned.views[0].candidate.label}")
    print(f"  top view (exhaustive) : {exhaustive.views[0].candidate.label}")
    from bench_recording import record_bench

    record_bench(
        "claim5", "pruned_vs_exhaustive",
        candidates=pruned.candidates_considered,
        pruned_seconds=pruned_seconds,
        pruned_full_evaluations=pruned.full_evaluations,
        exhaustive_seconds=exhaustive_seconds,
        exhaustive_full_evaluations=exhaustive.full_evaluations,
        speedup=exhaustive_seconds / pruned_seconds if pruned_seconds else None,
    )
    # Shape: pruning evaluates far fewer views on the full data and is faster,
    # while the top recommendation survives.
    assert pruned.full_evaluations < exhaustive.full_evaluations
    assert pruned_seconds <= exhaustive_seconds * 1.1
    top_pruned_labels = {v.candidate.label for v in pruned.views}
    assert exhaustive.views[0].candidate.label in top_pruned_labels
