"""CLAIM-6 — §2.2: Searchlight speculates over in-memory synopses, then validates
candidates on the actual data.

Compares constraint search with synopsis-guided pruning against exhaustive
window enumeration on the waveform history, asserting identical solutions and
reporting how much validation work the synopsis avoided.
"""

from __future__ import annotations

import time

import pytest

from repro.exploration import ConstraintQuery, RangeConstraint, Searchlight


@pytest.fixture(scope="module")
def searchlight(bench_deployment) -> Searchlight:
    return Searchlight(bench_deployment.array.array("waveform_history"))


QUERY = ConstraintQuery(
    "value",
    window_length=64,
    avg=RangeConstraint(low=0.25),
    maximum=RangeConstraint(low=1.8),
)


def test_searchlight_with_synopsis(benchmark, searchlight):
    report = benchmark(searchlight.search, QUERY, True)
    assert report.used_synopsis


def test_searchlight_exhaustive(benchmark, searchlight):
    report = benchmark.pedantic(searchlight.search, args=(QUERY, False), rounds=1, iterations=1)
    assert not report.used_synopsis


def test_claim6_summary(searchlight):
    start = time.perf_counter()
    fast = searchlight.search(QUERY, use_synopsis=True)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    slow = searchlight.search(QUERY, use_synopsis=False)
    slow_seconds = time.perf_counter() - start
    print("\nCLAIM-6: constraint search over the waveform history")
    print(f"  synopsis-guided : {fast_seconds:.3f} s, validated {fast.windows_validated:,} "
          f"of {fast.windows_considered:,} windows, {len(fast.solutions)} solutions")
    print(f"  exhaustive      : {slow_seconds:.3f} s, validated {slow.windows_validated:,} "
          f"windows, {len(slow.solutions)} solutions")
    from bench_recording import record_bench

    record_bench(
        "claim6", "synopsis_vs_exhaustive",
        synopsis_seconds=fast_seconds,
        synopsis_windows_validated=fast.windows_validated,
        exhaustive_seconds=slow_seconds,
        exhaustive_windows_validated=slow.windows_validated,
        solutions=len(fast.solutions),
        speedup=slow_seconds / fast_seconds if fast_seconds else None,
    )
    # Shape: identical answers, strictly less validation work with the synopsis.
    assert {(s.signal, s.start) for s in fast.solutions} == {(s.signal, s.start) for s in slow.solutions}
    assert fast.windows_validated <= slow.windows_validated
