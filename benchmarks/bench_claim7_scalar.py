"""CLAIM-7 — §1.1/§1.2: ScalaR's detail-on-demand browsing with prefetching
keeps pan/zoom gestures interactive.

Drives the same scripted pan/zoom session with and without prefetching and
reports cache hit rates and mean per-gesture latency.
"""

from __future__ import annotations

import pytest

from repro.exploration import ScalarBrowser, TileKey


def _session(browser: ScalarBrowser) -> ScalarBrowser:
    tile = browser.fetch_tile(TileKey(level=3, row=0, col=0))
    for _ in range(8):
        tile = browser.pan(tile.key, +1)
    tile = browser.zoom_in(tile.key)
    for _ in range(4):
        tile = browser.pan(tile.key, +1)
    tile = browser.zoom_out(tile.key)
    for _ in range(4):
        tile = browser.pan(tile.key, -1)
    return browser


def _make_browser(deployment, prefetch: bool) -> ScalarBrowser:
    return ScalarBrowser(
        deployment.array.array("waveform_history"),
        tile_samples=64, base_block=4, max_levels=4, prefetch=prefetch,
    )


def test_browsing_session_with_prefetch(benchmark, bench_deployment):
    browser = benchmark(lambda: _session(_make_browser(bench_deployment, True)))
    assert browser.stats.requests > 0


def test_browsing_session_without_prefetch(benchmark, bench_deployment):
    browser = benchmark(lambda: _session(_make_browser(bench_deployment, False)))
    assert browser.stats.requests > 0


def test_claim7_summary(bench_deployment):
    with_prefetch = _session(_make_browser(bench_deployment, True)).stats
    without_prefetch = _session(_make_browser(bench_deployment, False)).stats
    print("\nCLAIM-7: scripted pan/zoom session over the waveform history")
    print(f"  with prefetch   : hit rate {with_prefetch.hit_rate:.2f}, "
          f"mean gesture {with_prefetch.mean_gesture_seconds * 1000:.3f} ms, "
          f"prefetch hits {with_prefetch.prefetch_hits}")
    print(f"  without prefetch: hit rate {without_prefetch.hit_rate:.2f}, "
          f"mean gesture {without_prefetch.mean_gesture_seconds * 1000:.3f} ms")
    from bench_recording import record_bench

    record_bench(
        "claim7", "prefetch_vs_cold",
        prefetch_hit_rate=with_prefetch.hit_rate,
        prefetch_mean_gesture_s=with_prefetch.mean_gesture_seconds,
        prefetch_hits=with_prefetch.prefetch_hits,
        cold_hit_rate=without_prefetch.hit_rate,
        cold_mean_gesture_s=without_prefetch.mean_gesture_seconds,
    )
    # Shape: prefetching turns most gestures into cache hits.
    assert with_prefetch.hit_rate > without_prefetch.hit_rate
    assert with_prefetch.prefetch_hits > 0
