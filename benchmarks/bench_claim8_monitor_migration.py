"""CLAIM-8 — §2.1: the monitor learns which engine excels at which query class
and migrates objects as the workload shifts.

Waveform rows start in the relational engine.  A workload of windowed
(linear-algebra-style) queries is probed on both engines; the advisor then
recommends — and applies — migration to the array engine, and the benchmark
reports the post-migration speedup of the dominant query.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.common.schema import Relation, Schema
from repro.core.bigdawg import BigDawg
from repro.engines.array import ArrayEngine
from repro.engines.relational import RelationalEngine


SIGNALS, SAMPLES, WINDOW = 4, 3000, 32


def _build() -> BigDawg:
    bigdawg = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    bigdawg.add_engine(postgres, islands=["relational"])
    bigdawg.add_engine(scidb, islands=["array"])
    rng = np.random.default_rng(31)
    schema = Schema([("signal_id", "integer"), ("sample_index", "integer"), ("value", "float")])
    relation = Relation(schema)
    for signal in range(SIGNALS):
        values = np.sin(np.linspace(0, 60, SAMPLES)) + 0.1 * rng.standard_normal(SAMPLES)
        for index, value in enumerate(values):
            relation.append([signal, index, float(value)])
    postgres.import_relation("waveforms", relation)
    bigdawg.catalog.register_object("waveforms", "postgres", "table")
    return bigdawg


def _windowed_on_postgres(engine: RelationalEngine) -> float:
    rows = engine.execute(
        "SELECT signal_id, sample_index, value FROM waveforms ORDER BY signal_id, sample_index"
    )
    best, buffer, current = float("-inf"), [], None
    for row in rows:
        if row["signal_id"] != current:
            current, buffer = row["signal_id"], []
        buffer.append(float(row["value"]))
        if len(buffer) > WINDOW:
            buffer.pop(0)
        best = max(best, sum(buffer) / len(buffer))
    return best


def _windowed_on_scidb(engine: ArrayEngine, name: str) -> float:
    result = engine.execute(
        f"aggregate(window({name}, value, {WINDOW}, avg, sample_index), max(avg_value))"
    )
    return float(result["max(avg_value)"])


@pytest.fixture(scope="module")
def bigdawg() -> BigDawg:
    return _build()


def test_workload_on_initial_placement(benchmark, bigdawg):
    benchmark.pedantic(
        _windowed_on_postgres, args=(bigdawg.engine("postgres"),), rounds=2, iterations=1
    )


def test_claim8_migration_summary(bigdawg):
    postgres = bigdawg.engine("postgres")
    scidb = bigdawg.engine("scidb")

    def probe_scidb() -> float:
        if not scidb.has_object("waveforms_probe"):
            bigdawg.cast("waveforms", "scidb", target_name="waveforms_probe",
                         dimensions=["signal_id", "sample_index"])
        return _windowed_on_scidb(scidb, "waveforms_probe")

    # The monitor re-executes the dominant query on both engines several times.
    for _ in range(3):
        bigdawg.monitor.probe(
            "linear_algebra", "waveforms",
            {"postgres": lambda: _windowed_on_postgres(postgres), "scidb": probe_scidb},
        )
    recommendation = bigdawg.advisor.recommend("waveforms")
    assert recommendation is not None and recommendation.target_engine == "scidb"
    before = time.perf_counter()
    _windowed_on_postgres(postgres)
    before_seconds = time.perf_counter() - before

    applied = bigdawg.advisor.apply(recommendation, dimensions=["signal_id", "sample_index"])
    assert applied
    after = time.perf_counter()
    _windowed_on_scidb(scidb, "waveforms")
    after_seconds = time.perf_counter() - after

    print("\nCLAIM-8: workload-driven migration of the waveform object")
    print(f"  dominant query class          : {recommendation.query_class}")
    print(f"  before migration (postgres)   : {before_seconds:.4f} s per query")
    print(f"  after migration  (scidb)      : {after_seconds:.4f} s per query")
    print(f"  measured speedup              : {before_seconds / after_seconds:.1f}x")
    print(f"  placement now                 : {bigdawg.catalog.locate('waveforms').engine_name}")
    from bench_recording import record_bench

    record_bench(
        "claim8", "workload_driven_migration",
        query_class=recommendation.query_class,
        before_seconds=before_seconds,
        after_seconds=after_seconds,
        speedup=before_seconds / after_seconds,
        placement=bigdawg.catalog.locate("waveforms").engine_name,
    )
    # Shape: the advisor moves the object and the dominant query gets much faster.
    assert bigdawg.catalog.locate("waveforms").engine_name == "scidb"
    assert before_seconds / after_seconds > 5
