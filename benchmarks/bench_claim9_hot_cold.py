"""CLAIM-9 — §2.3/§3: streaming data ages out of S-Store into the array store,
and cross-system queries see the complete picture.

Feeds a waveform through the streaming engine with an aging policy bound to
the array engine, then (a) checks the hot+cold reconstruction is exact and
(b) times the hot-only, cold-only and combined queries.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engines.array import ArrayEngine
from repro.engines.streaming import AgingPolicy, StreamingEngine
from repro.mimic import waveform_feed_tuples
from repro.mimic.loader import load_streaming


@pytest.fixture(scope="module")
def hot_cold(bench_dataset):
    waveform = bench_dataset.waveforms[0]
    streaming = StreamingEngine("sstore_hotcold")
    load_streaming(streaming, bench_dataset, retention_seconds=4.0)
    array_engine = ArrayEngine("scidb_hotcold")
    policy = AgingPolicy(
        streaming.stream("waveform_feed"), array_engine, "waveform_cold",
        max_series=8, max_samples=len(waveform.values),
    )
    streaming.add_aging_policy(policy)
    for timestamp, payload in waveform_feed_tuples(bench_dataset, 0):
        streaming.append("waveform_feed", timestamp, payload)
    return waveform, streaming, array_engine, policy


def test_hot_query(benchmark, hot_cold):
    _waveform, streaming, _array, _policy = hot_cold
    result = benchmark(streaming.export_relation, "waveform_feed")
    assert len(result) > 0


def test_cold_query(benchmark, hot_cold):
    _waveform, _streaming, array_engine, _policy = hot_cold
    result = benchmark(array_engine.execute, "aggregate(waveform_cold, count(value))")
    assert result["count(value)"] > 0


def test_combined_hot_cold_query(benchmark, hot_cold):
    _waveform, _streaming, _array, policy = hot_cold
    combined = benchmark(policy.combined_series, 0)
    assert combined.size > 0


def test_claim9_summary(hot_cold):
    waveform, streaming, array_engine, policy = hot_cold
    hot_count = len(streaming.stream("waveform_feed"))
    cold_count = int(array_engine.execute("aggregate(waveform_cold, count(value))")["count(value)"])
    start = time.perf_counter()
    combined = policy.combined_series(0)
    combine_seconds = time.perf_counter() - start
    print("\nCLAIM-9: hot (S-Store) + cold (array) waveform coverage")
    print(f"  tuples still hot in the stream : {hot_count:,}")
    print(f"  samples aged into the array    : {cold_count:,}")
    print(f"  combined series reconstruction : {combined.size:,} samples in {combine_seconds * 1000:.2f} ms")
    from bench_recording import record_bench

    record_bench(
        "claim9", "hot_cold_coverage",
        hot_tuples=hot_count,
        cold_samples=cold_count,
        combined_samples=int(combined.size),
        combine_seconds=combine_seconds,
    )
    # Shape: nothing is lost or duplicated across the hot/cold boundary, and the
    # combined view reproduces the original signal exactly.
    assert hot_count + cold_count == len(waveform.values)
    np.testing.assert_allclose(combined, waveform.values)
