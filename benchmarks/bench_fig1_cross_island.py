"""FIG-1 — Figure 1 (architecture): cross-island queries over multiple engines.

The figure itself is the architecture diagram; the measurable content is that
one BigDAWG instance answers queries on every island, including queries that
CAST data between engines.  This benchmark times one representative query per
island plus a CAST query, establishing that the middleware overhead is small
relative to the engines' own execution time.
"""

from __future__ import annotations


def test_relational_island_query(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute,
        "RELATIONAL(SELECT count(*) AS n FROM admissions WHERE stay_days > 5)",
    )
    assert result.rows[0]["n"] >= 0


def test_array_island_query(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute,
        "ARRAY(aggregate(waveform_history, avg(value), stddev(value)))",
    )
    assert result.rows[0]["stddev(value)"] > 0


def test_text_island_query(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute,
        'TEXT(SEARCH notes FOR "very sick" MIN 3)',
    )
    assert len(result) >= 0


def test_d4m_island_query(benchmark, bench_deployment):
    result = benchmark(
        bench_deployment.bigdawg.execute,
        "D4M(ASSOC notes DEGREE ROWS)",
    )
    assert len(result) > 0


def test_cross_island_cast_query(benchmark, bench_deployment):
    """SQL over the array-resident waveforms; the CAST is re-planned every call."""
    query = (
        "RELATIONAL(SELECT signal, count(*) AS n FROM CAST(waveform_history, relational) "
        "WHERE value > 1.8 GROUP BY signal)"
    )
    result = benchmark(bench_deployment.bigdawg.execute, query)
    assert len(result) >= 1
