"""FIG-2 — Figure 2: the SeeDB visualization (race vs. hospital stay reversal).

Reproduces the figure's content: SeeDB explores the admissions data for the
elective-admission subpopulation, and the top recommended view shows the race
vs. average-stay relationship reversing the trend of the rest of the data —
the planted quirk in the synthetic generator.  The benchmark times the full
recommend() call and the test asserts the reversal is actually surfaced.
"""

from __future__ import annotations

import pytest

from repro.exploration import SeeDB


@pytest.fixture(scope="module")
def seedb(bench_deployment) -> SeeDB:
    return SeeDB(
        bench_deployment.bigdawg,
        "admissions_with_race",
        dimensions=["race", "sex", "admission_type"],
        measures=["stay_days", "severity"],
        sample_fraction=0.2,
        prune_keep=6,
    )


@pytest.fixture(scope="module", autouse=True)
def materialized_join(bench_deployment):
    """SeeDB explores a patient+admission join; materialize it once as a table."""
    joined = bench_deployment.bigdawg.execute(
        "RELATIONAL(SELECT p.race AS race, p.sex AS sex, a.admission_type AS admission_type, "
        "a.stay_days AS stay_days, a.severity AS severity FROM admissions a "
        "JOIN patients p ON a.patient_id = p.patient_id)"
    )
    bench_deployment.bigdawg.materialize_temporary("admissions_with_race", joined)
    return joined


def test_seedb_recommend_elective_subpopulation(benchmark, seedb):
    report = benchmark(seedb.recommend, "admission_type = 'elective'", 4)
    assert report.views


def test_figure2_series_shows_reversal(seedb, bench_deployment):
    """The race/avg-stay view exists and its elective series reverses the reference."""
    report = seedb.recommend("admission_type = 'elective'", k=12, use_pruning=False)
    race_views = [
        v for v in report.views
        if v.candidate.dimension == "race" and v.candidate.aggregate == "avg"
        and v.candidate.measure == "stay_days"
    ]
    assert race_views, "SeeDB must evaluate the avg(stay_days) by race view"
    view = race_views[0]
    chart = view.as_chart()
    print("\nFIG-2 series (avg stay_days by race):")
    print(f"  groups    : {chart['groups']}")
    print(f"  elective  : {[round(v, 2) if v is not None else None for v in chart['target']]}")
    print(f"  all others: {[round(v, 2) if v is not None else None for v in chart['reference']]}")
    target = view.target_series
    reference = view.reference_series
    # The global data has black > white average stay; electives reverse it.
    assert reference["black"] > reference["white"]
    assert target["black"] < target["white"]
    assert view.utility > 0
