"""Machine-readable benchmark results.

Every ``bench_claim*`` module calls :func:`record_bench` from its summary
test(s), so each run leaves a ``BENCH_<name>.json`` next to the human-readable
stdout table — one JSON object mapping scenario names to their measured
metrics (wall times, speedups, counters).  CI uploads these as artifacts;
locally they land in ``benchmarks/results/`` (override with the
``BENCH_RESULTS_DIR`` environment variable).

Repeated calls for the same benchmark merge into one file, so a module with
several summary tests accumulates all its scenarios; re-running a scenario
overwrites its previous entry.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

_DEFAULT_DIR = Path(__file__).resolve().parent / "results"


def results_dir() -> Path:
    """Where ``BENCH_<name>.json`` files are written (created on demand)."""
    configured = os.environ.get("BENCH_RESULTS_DIR")
    return Path(configured) if configured else _DEFAULT_DIR


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def record_bench(name: str, scenario: str, **metrics: Any) -> Path:
    """Merge one scenario's metrics into ``BENCH_<name>.json``.

    Returns the path written.  Failures to serialize individual values fall
    back to ``str`` so a benchmark never fails because of its reporting.
    """
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    data: dict[str, Any] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    data[scenario] = _jsonable(metrics)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
