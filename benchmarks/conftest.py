"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md (a figure or a
quantitative claim of the paper).  They share one session-scoped synthetic
MIMIC II deployment sized to run in seconds on a laptop; the *shape* of every
comparison (who wins, roughly by how much) is what matters, not absolute
numbers.
"""

from __future__ import annotations

import pytest

from repro.baselines import build_one_size_fits_all
from repro.mimic import MimicGenerator, build_polystore


BENCH_GENERATOR = MimicGenerator(
    patient_count=300,
    waveform_patients=4,
    waveform_samples=4000,
    sample_rate_hz=125.0,
    anomaly_fraction=1.0,
    seed=99,
)


@pytest.fixture(scope="session")
def bench_dataset():
    return BENCH_GENERATOR.generate()


@pytest.fixture(scope="session")
def bench_deployment(bench_dataset):
    """The polystore deployment (relational + array + key-value + streaming)."""
    return build_polystore(dataset=bench_dataset)


@pytest.fixture(scope="session")
def bench_onesize(bench_dataset):
    """The 'one size fits all' baseline: everything in a single relational engine."""
    return build_one_size_fits_all(bench_dataset)
