"""Many concurrent clients served by the polystore runtime.

Builds the synthetic MIMIC deployment, stands up a
:class:`~repro.runtime.scheduler.PolystoreRuntime`, and drives it with a
handful of simulated client sessions issuing mixed traffic across four
islands.  Along the way it shows the serving layer's moving parts:

* the worker pool overlapping queries (and independent WITH bindings);
* per-engine admission control bounding concurrency per engine;
* the versioned result cache — hot queries get cheap, and a CAST
  invalidates exactly the state the cache depends on;
* runtime metrics and the monitor observations the migration advisor
  mines.

Run with::

    python examples/concurrent_clients.py
"""

from __future__ import annotations

import threading

from repro.mimic import MimicGenerator, build_polystore
from repro.runtime import PolystoreRuntime

CLIENTS = 6
ROUNDS = 5

CLIENT_QUERIES = [
    "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')",
    "ARRAY(aggregate(waveform_history, avg(value)))",
    'TEXT(SEARCH notes FOR "pain")',
    "D4M(ASSOC prescriptions DEGREE ROWS)",
    (
        "WITH elderly = RELATIONAL(SELECT patient_id, age FROM patients WHERE age > 70) "
        "RELATIONAL(SELECT count(*) AS n FROM elderly)"
    ),
]


def run_client(runtime: PolystoreRuntime, client_id: int) -> None:
    """One simulated client: a session issuing a few rounds of mixed queries."""
    with runtime.session() as session:
        for round_index in range(ROUNDS):
            query = CLIENT_QUERIES[(client_id + round_index) % len(CLIENT_QUERIES)]
            result = session.execute(query)
            if round_index == 0:
                print(f"  client {client_id}: {query[:58]:<58} -> {len(result)} row(s)")


def main() -> None:
    print("Building the MIMIC polystore (relational + array + text + d4m traffic)...")
    deployment = build_polystore(
        generator=MimicGenerator(
            patient_count=100, waveform_patients=2, waveform_samples=1500, seed=11
        )
    )
    runtime = PolystoreRuntime(
        deployment.bigdawg,
        workers=8,
        slots_per_engine=2,
        engine_latency=0.005,  # emulate the network hop to out-of-process engines
    )

    print(f"\nServing {CLIENTS} concurrent clients x {ROUNDS} rounds...")
    threads = [
        threading.Thread(target=run_client, args=(runtime, client_id))
        for client_id in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snapshot = runtime.metrics.snapshot(queue_depth=runtime.admission.queue_depth())
    print("\nRuntime metrics after the burst:")
    for key in ("completed", "failed", "throughput_qps", "latency_p50_s",
                "latency_p95_s", "cache_hit_rate", "queue_depth"):
        print(f"  {key:>16}: {snapshot[key]}")

    print("\nPer-engine admission gates (slots bound concurrency per engine):")
    for engine, gate in sorted(runtime.admission.describe().items()):
        print(f"  {engine:>10}: admitted={gate['admitted']:4d} "
              f"peak_waiting={gate['peak_waiting']:3d} timed_out={gate['timed_out']}")

    hot = CLIENT_QUERIES[0]
    print("\nResult cache: the hot query is served without touching an engine...")
    runtime.execute(hot)
    hits_before = runtime.cache.hits
    runtime.execute(hot)
    print(f"  hits {hits_before} -> {runtime.cache.hits} "
          f"(hit rate {runtime.cache.hit_rate:.0%})")

    print("...until a CAST moves data and the fingerprint changes:")
    deployment.bigdawg.cast("waveform_history", "postgres", target_name="wf_rel")
    runtime.execute(hot)  # recomputed: the store fingerprint no longer matches
    print(f"  invalidations={runtime.cache.invalidations}, "
          f"entries re-primed={len(runtime.cache)}")

    observations = deployment.bigdawg.monitor.observations
    runtime_classes = sorted({o.query_class for o in observations
                              if o.query_class.startswith("runtime_")})
    print(f"\nMonitor learned from live traffic: {len(observations)} observations, "
          f"classes {runtime_classes}")
    runtime.shutdown()
    print("Done.")


if __name__ == "__main__":
    main()
