"""The MIMIC II hospital demo: all five interfaces of the paper, end to end.

This example mirrors Section 3 of the paper: the dataset is partitioned across
the relational, array, key-value and streaming engines; then each of the five
demo interfaces (browsing, exploratory analysis, complex analytics, text
analysis, real-time monitoring) runs a representative interaction.

Run with::

    python examples/mimic_hospital_demo.py
"""

from __future__ import annotations

from repro.analytics import AnalyticsRunner
from repro.exploration import (
    ConstraintQuery,
    RangeConstraint,
    ScalarBrowser,
    SeeDB,
    Searchlight,
    TileKey,
)
from repro.mimic import MimicGenerator, build_polystore, waveform_feed_tuples
from repro.monitoring import ReferenceProfile, WaveformMonitor


def main() -> None:
    generator = MimicGenerator(
        patient_count=400, waveform_patients=4, waveform_samples=3000,
        sample_rate_hz=62.5, anomaly_fraction=1.0, seed=11,
    )
    deployment = build_polystore(generator=generator)
    print("Dataset:", deployment.dataset.summary())
    print("Placement:", deployment.bigdawg.catalog.describe()["objects"])

    # ------------------------------------------------------------ Text Analysis
    print("\n== Text Analysis: patients with >= 3 notes saying 'very sick' ==")
    rows = deployment.bigdawg.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)')
    print(f"{len(rows)} patients flagged; first few: {[r['row'] for r in rows.rows[:5]]}")

    # ------------------------------------------------- Exploratory Analysis (SeeDB)
    print("\n== Exploratory Analysis: SeeDB over elective admissions ==")
    seedb = SeeDB(
        deployment.bigdawg, "admissions",
        dimensions=["admission_type", "outcome"], measures=["stay_days", "severity"],
    )
    report = seedb.recommend("severity > 0.7", k=3)
    for view in report.views:
        chart = view.as_chart()
        print(f"  {chart['title']}: utility={chart['utility']:.3f} groups={chart['groups']}")

    # -------------------------------------------------------- Browsing (ScalaR)
    print("\n== Browsing: pan/zoom over the waveform history ==")
    browser = ScalarBrowser(deployment.array.array("waveform_history"),
                            tile_samples=32, base_block=4, max_levels=4)
    tile = browser.fetch_tile(TileKey(level=3, row=0, col=0))
    for _ in range(6):
        tile = browser.pan(tile.key, +1)
    tile = browser.zoom_in(tile.key)
    stats = browser.stats
    print(f"  gestures={stats.requests} cache hit rate={stats.hit_rate:.2f} "
          f"mean gesture latency={stats.mean_gesture_seconds * 1000:.2f} ms")

    # ------------------------------------------------------- Complex Analytics
    print("\n== Complex Analytics ==")
    runner = AnalyticsRunner(deployment.bigdawg)
    regression = runner.regression(
        "SELECT a.severity, p.age, a.stay_days FROM admissions a "
        "JOIN patients p ON a.patient_id = p.patient_id",
        ["a.severity", "p.age"], "a.stay_days",
    )
    print(f"  stay_days ~ severity + age: r^2 = {regression.r_squared:.3f}")
    frequency = runner.waveform_dominant_frequency("waveform_history", 0, generator.sample_rate_hz)
    print(f"  dominant heart frequency of signal 0: {frequency:.2f} Hz (~{frequency * 60:.0f} bpm)")
    clusters = runner.patient_clusters(
        "SELECT age, stay_days FROM patients p JOIN admissions a ON p.patient_id = a.patient_id",
        ["age", "stay_days"], k=3,
    )
    print(f"  k-means over (age, stay): inertia={clusters.inertia:.1f} in {clusters.iterations} iterations")

    # Searchlight: find windows with unusually high amplitude.
    searchlight = Searchlight(deployment.array.array("waveform_history"))
    query = ConstraintQuery("value", window_length=64, maximum=RangeConstraint(low=1.8))
    found = searchlight.search(query)
    print(f"  Searchlight: {len(found.solutions)} high-amplitude windows "
          f"(validated {found.windows_validated} of {found.windows_considered} windows)")

    # --------------------------------------------------- Real-Time Monitoring
    print("\n== Real-Time Monitoring: streaming anomaly detection ==")
    waveform = deployment.dataset.waveforms[0]
    reference = ReferenceProfile.from_samples(
        waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
    )
    monitor = WaveformMonitor(reference, window_seconds=0.5)
    monitor.register(deployment.streaming, "waveform_feed")
    for timestamp, payload in waveform_feed_tuples(deployment.dataset, signal_id=0):
        deployment.streaming.append("waveform_feed", timestamp, payload)
    anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
    alert = monitor.first_alert_after(anomaly_time)
    if alert:
        print(f"  anomaly at t={anomaly_time:.2f}s detected at t={alert.timestamp:.2f}s "
              f"({(alert.timestamp - anomaly_time) * 1000:.0f} ms latency, kind={alert.kind})")
    print(f"  stream stats: {deployment.streaming.statistics()}")

    # -------------------------------------- Cross-system hot + cold waveform view
    print("\n== Cross-system query: hot (S-Store) + cold (SciDB) waveform ==")
    hot = deployment.bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM waveform_feed)")
    cold = deployment.bigdawg.execute("ARRAY(aggregate(waveform_history, count(value)))")
    print(f"  tuples still hot in S-Store: {hot.rows[0]['n']}, "
          f"historical cells in SciDB: {cold.rows[0]['count(value)']:.0f}")


if __name__ == "__main__":
    main()
