"""Quickstart: build a small BigDAWG polystore and run cross-island queries.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BigDawg
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine


def main() -> None:
    # 1. Stand up three specialized engines and register them with BigDAWG.
    bigdawg = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bigdawg.add_engine(postgres)
    bigdawg.add_engine(scidb)
    bigdawg.add_engine(accumulo)

    # 2. Put some data in each engine, in its native model.
    postgres.execute(
        "CREATE TABLE patients (patient_id INTEGER PRIMARY KEY, age INTEGER, race TEXT)"
    )
    postgres.execute(
        "INSERT INTO patients VALUES (1, 71, 'white'), (2, 64, 'black'), (3, 55, 'asian')"
    )
    rng = np.random.default_rng(0)
    scidb.load_numpy("heart_rate", 70 + 5 * rng.standard_normal((3, 600)))
    notes = accumulo.create_table("notes", text_indexed=True)
    notes.put("patient_000001", "doctor", "note_1", "patient remains very sick overnight")
    notes.put("patient_000001", "doctor", "note_2", "still very sick, adjusting medication")
    notes.put("patient_000001", "nurse", "note_3", "patient very sick, family updated")
    notes.put("patient_000002", "doctor", "note_1", "recovering well, discharge planned")

    # 3. Query each island in its own language — location transparency.
    print("== Relational island ==")
    print(bigdawg.execute(
        "RELATIONAL(SELECT race, count(*) AS n FROM patients WHERE age > 60 GROUP BY race)"
    ).to_dicts())

    print("== Array island ==")
    print(bigdawg.execute(
        "ARRAY(aggregate(heart_rate, avg(value), min(value), max(value)))"
    ).to_dicts())

    print("== Text island ==")
    print(bigdawg.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)').to_dicts())

    # 4. A cross-island query: SQL over an array, via CAST.
    print("== Cross-island (CAST array into the relational island) ==")
    print(bigdawg.explain(
        "RELATIONAL(SELECT i, count(*) AS high_samples FROM CAST(heart_rate, relational) "
        "WHERE value > 75 GROUP BY i)"
    ))
    result = bigdawg.execute(
        "RELATIONAL(SELECT i, count(*) AS high_samples FROM CAST(heart_rate, relational) "
        "WHERE value > 75 GROUP BY i)"
    )
    print(result.to_dicts())

    # 5. Explicit CASTs ride a chunked streaming pipeline: the object moves in
    #    bounded chunks (never more than one encoded frame in memory), and the
    #    record reports the per-chunk accounting.  `chunk_size` tunes the row
    #    budget per chunk; `method` picks the wire format ("binary", "csv", or
    #    the zero-copy "direct" path).
    print("== Chunked CAST ==")
    record = bigdawg.cast(
        "heart_rate", "postgres", method="binary", target_name="heart_rate_rows",
        chunk_size=500,
    )
    print(
        f"moved {record.rows} rows in {record.chunks} chunks "
        f"(peak frame {record.peak_chunk_bytes:,} bytes, {record.bytes_moved:,} total)"
    )
    # Cross-island queries accept the same knobs for their implicit CASTs:
    #   bigdawg.execute("RELATIONAL(... CAST(x, relational) ...)",
    #                   cast_method="binary", chunk_size=10_000)

    # 6. The D4M island sees everything as associative arrays.
    print("== D4M island ==")
    print(bigdawg.execute("D4M(ASSOC notes DEGREE ROWS)").to_dicts())

    print("== Polystore status ==")
    print(bigdawg.describe()["catalog"])


if __name__ == "__main__":
    main()
