"""Real-time ICU alerting: S-Store-style streaming vs. a micro-batch baseline.

Reproduces the paper's real-time decision-support argument (Sections 1.2 and
2.3): a waveform feed at hundreds of Hz must raise alerts within tens of
milliseconds, which a tuple-at-a-time transactional streaming engine achieves
and a micro-batch system structurally cannot (its latency floor is its batch
interval).  Also shows data aging out of the stream into the array engine.

Run with::

    python examples/streaming_alerts.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import MicroBatchProcessor
from repro.engines.array import ArrayEngine
from repro.engines.streaming import AgingPolicy
from repro.mimic import MimicGenerator, build_polystore, waveform_feed_tuples
from repro.monitoring import ReferenceProfile, WaveformMonitor


def main() -> None:
    generator = MimicGenerator(
        patient_count=50, waveform_patients=2, waveform_samples=4000,
        sample_rate_hz=125.0, anomaly_fraction=1.0, seed=21,
    )
    deployment = build_polystore(generator=generator)
    waveform = deployment.dataset.waveforms[0]
    anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
    feed = waveform_feed_tuples(deployment.dataset, signal_id=0)
    reference = ReferenceProfile.from_samples(
        waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
    )

    # ----------------------------------------------------- S-Store-style path
    monitor = WaveformMonitor(reference, window_seconds=0.4)
    monitor.register(deployment.streaming, "waveform_feed")
    history_engine = ArrayEngine("history")
    aging = AgingPolicy(
        deployment.streaming.stream("waveform_feed"), history_engine, "aged_waveforms",
        max_series=4, max_samples=len(waveform.values),
    )
    deployment.streaming.add_aging_policy(aging)
    for timestamp, payload in feed:
        deployment.streaming.append("waveform_feed", timestamp, payload)
    alert = monitor.first_alert_after(anomaly_time)
    streaming_latency = (alert.timestamp - anomaly_time) if alert else None

    # ----------------------------------------------------- micro-batch baseline
    batch = MicroBatchProcessor(
        batch_interval_seconds=1.0, window_seconds=0.4,
        detector=lambda values: float(np.sqrt(np.mean(values ** 2))),
        threshold=reference.rms * 1.5,
    )
    for timestamp, payload in feed:
        batch.ingest(timestamp, payload[2])
    batch.flush()
    batch_latency = batch.detection_latency(anomaly_time)

    print(f"anomaly injected at t = {anomaly_time:.2f} s ({waveform.sample_rate_hz:.0f} Hz feed)")
    if streaming_latency is not None:
        print(f"  streaming engine detection latency : {streaming_latency * 1000:8.1f} ms")
    if batch_latency is not None:
        print(f"  micro-batch (1 s batches) latency  : {batch_latency * 1000:8.1f} ms")
    if streaming_latency and batch_latency:
        print(f"  micro-batching is {batch_latency / streaming_latency:.0f}x slower to alert")

    print(f"\nalerts raised by the streaming engine: {len(deployment.streaming.alerts)}")
    print(f"tuples aged out of the stream into the array engine: {aging.tuples_aged}")
    print(f"hot tuples still in the stream: {len(deployment.streaming.stream('waveform_feed'))}")
    combined = aging.combined_series(0)
    print(f"hot + cold combined series length: {combined.size} "
          f"(complete picture across S-Store and the array store)")


if __name__ == "__main__":
    main()
