"""Trace one multi-island query end to end and export it for chrome://tracing.

Stands up a tiny BigDAWG deployment (relational + array + text engines),
enables the global :class:`~repro.observability.tracing.Tracer`, and runs a
cross-island query through the :class:`~repro.runtime.scheduler.PolystoreRuntime`:
an array object is CAST into the relational island and aggregated there, so
the trace covers the full lifecycle — queued, admitted, planned, the CAST's
export/encode/decode/import stages, and the relational execution — across
the runtime's worker threads.

The spans are written to ``traced_query.json`` in Chrome trace-event format;
open chrome://tracing (or https://ui.perfetto.dev) and load the file to see
one lane per thread.  The same spans are also printed as a text tree, and
the engine's EXPLAIN ANALYZE output shows estimated vs actual per-operator
cardinality for a plain relational query.

Run with::

    python examples/traced_query.py
"""

from __future__ import annotations

import numpy as np

from repro.core.bigdawg import BigDawg
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.observability import Tracer, render_tree, set_tracer, write_chrome_trace
from repro.runtime import PolystoreRuntime

TRACE_PATH = "traced_query.json"

QUERY = (
    "RELATIONAL(SELECT count(*) AS n, sum(value) AS total "
    "FROM CAST(waveform, relational) WHERE value >= 0.25)"
)


def build_deployment() -> BigDawg:
    bigdawg = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bigdawg.add_engine(postgres, islands=["relational"])
    bigdawg.add_engine(scidb, islands=["array"])
    bigdawg.add_engine(accumulo, islands=["text"])

    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41), (4, 77)")
    rng = np.random.default_rng(7)
    scidb.load_numpy("waveform", rng.random((50, 40)))
    return bigdawg


def main() -> None:
    print("Building a 3-engine BigDAWG deployment (postgres/scidb/accumulo)...")
    bigdawg = build_deployment()

    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    runtime = PolystoreRuntime(bigdawg, workers=2)
    try:
        print(f"\nExecuting traced multi-island query:\n  {QUERY}")
        result = runtime.execute(QUERY)
        print(f"  -> {result.to_dicts()}")

        # A second execution: the CAST target is already materialized, so
        # the second trace has no cast stage — only the relational execute.
        runtime.execute(QUERY)
    finally:
        runtime.shutdown()
        set_tracer(previous)

    events = write_chrome_trace(TRACE_PATH, tracer.spans())
    print(f"\nWrote {events} trace events to {TRACE_PATH} "
          "(load in chrome://tracing or ui.perfetto.dev)")

    print("\nSpan tree:")
    print(render_tree(tracer.spans()))

    # EXPLAIN ANALYZE on the relational engine: estimated vs actual rows
    # per operator, measured on the vectorized executor.
    postgres = bigdawg.engine("postgres")
    print("\nEXPLAIN ANALYZE on the relational island:")
    print(postgres.explain(
        "SELECT age, count(*) AS n FROM patients WHERE age > 50 "
        "GROUP BY age ORDER BY age",
        analyze=True,
    ))


if __name__ == "__main__":
    main()
