"""Workload-driven data placement: the BigDAWG monitor in action.

Section 2.1 of the paper: "if the majority of the queries accessing MIMIC II's
waveforms use linear algebra, this data would naturally be migrated to an
array store."  This example starts with waveform data *misplaced* in the
relational engine, lets the monitor observe a linear-algebra-heavy workload on
both engines, and shows the advisor recommending — and applying — the
migration to the array engine.

Run with::

    python examples/workload_migration.py
"""

from __future__ import annotations

import numpy as np

from repro import BigDawg
from repro.common.schema import Relation, Schema
from repro.engines.array import ArrayEngine
from repro.engines.relational import RelationalEngine


def build_waveform_rows(signals: int, samples: int, seed: int = 5) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema([("signal_id", "integer"), ("sample_index", "integer"), ("value", "float")])
    relation = Relation(schema)
    for signal in range(signals):
        values = np.sin(np.linspace(0, 40, samples)) + 0.1 * rng.standard_normal(samples)
        for index, value in enumerate(values):
            relation.append([signal, index, float(value)])
    return relation


def windowed_average_sql(engine: RelationalEngine, window: int) -> float:
    rows = engine.execute(
        "SELECT signal_id, sample_index, value FROM waveforms ORDER BY signal_id, sample_index"
    )
    best, buffer, current = float("-inf"), [], None
    for row in rows:
        if row["signal_id"] != current:
            current, buffer = row["signal_id"], []
        buffer.append(float(row["value"]))
        if len(buffer) > window:
            buffer.pop(0)
        best = max(best, sum(buffer) / len(buffer))
    return best


def main() -> None:
    bigdawg = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    bigdawg.add_engine(postgres)
    bigdawg.add_engine(scidb)

    # Waveforms start out (badly) placed in the relational engine.
    postgres.import_relation("waveforms", build_waveform_rows(signals=4, samples=2000))
    bigdawg.catalog.register_object("waveforms", "postgres", "table")
    print("initial placement:", bigdawg.catalog.locate("waveforms").engine_name)

    # The monitor probes the dominant (linear-algebra) query on both engines.
    # The array-engine runner includes the one-time cast, so the comparison is honest.
    def run_on_postgres() -> float:
        return windowed_average_sql(postgres, window=32)

    def run_on_scidb() -> float:
        if not scidb.has_object("waveforms_probe"):
            # Probe copy under a different name so the catalog still records the
            # object's real placement (postgres) until the advisor moves it.
            bigdawg.cast("waveforms", "scidb", target_name="waveforms_probe",
                         dimensions=["signal_id", "sample_index"])
        result = scidb.execute(
            "aggregate(window(waveforms_probe, value, 32, avg, sample_index), max(avg_value))"
        )
        return float(result["max(avg_value)"])

    for _ in range(3):
        latencies = bigdawg.monitor.probe(
            "linear_algebra", "waveforms",
            {"postgres": run_on_postgres, "scidb": run_on_scidb},
        )
        print({engine: f"{seconds * 1000:.1f} ms" for engine, seconds in latencies.items()})

    recommendation = bigdawg.advisor.recommend("waveforms")
    print(
        f"advisor: move {recommendation.object_name} from {recommendation.current_engine} "
        f"to {recommendation.target_engine} (expected speedup {recommendation.expected_speedup:.1f}x)"
    )
    moved = bigdawg.advisor.apply(
        recommendation, dimensions=["signal_id", "sample_index"]
    )
    print("migration applied:", moved)
    print("final placement:", bigdawg.catalog.locate("waveforms").engine_name)


if __name__ == "__main__":
    main()
