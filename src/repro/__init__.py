"""repro — a reproduction of the BigDAWG polystore system (Elmore et al., VLDB 2015).

The package provides:

* :class:`repro.core.BigDawg` — the polystore facade (islands, SCOPE/CAST, monitor);
* ``repro.runtime`` — the concurrent serving layer (worker-pool scheduler,
  per-engine admission control, versioned result cache, runtime metrics);
* ``repro.engines.*`` — the federated storage engines (relational, array,
  key-value, streaming, TileDB, Tupleware);
* ``repro.mimic`` — a synthetic MIMIC II dataset generator and polystore loader;
* ``repro.exploration`` / ``repro.analytics`` / ``repro.monitoring`` — the demo's
  upper layers (SeeDB, Searchlight, ScalaR, complex analytics, real-time alerts);
* ``repro.baselines`` — the "one size fits all" comparison systems.
"""

from repro.core.bigdawg import BigDawg
from repro.core.catalog import BigDawgCatalog
from repro.runtime.scheduler import PolystoreRuntime

__version__ = "1.0.0"

__all__ = ["BigDawg", "BigDawgCatalog", "PolystoreRuntime", "__version__"]
