"""Complex analytics: regression, PCA, k-means, FFT, eigenanalysis, graph analytics."""

from repro.analytics.algorithms import (
    KMeansResult,
    PcaResult,
    RegressionResult,
    dominant_frequency,
    fft_spectrum,
    kmeans,
    linear_regression,
    pagerank,
    pca,
    power_iteration,
)
from repro.analytics.runner import AnalyticsRunner

__all__ = [
    "AnalyticsRunner",
    "KMeansResult",
    "PcaResult",
    "RegressionResult",
    "dominant_frequency",
    "fft_spectrum",
    "kmeans",
    "linear_regression",
    "pagerank",
    "pca",
    "power_iteration",
]
