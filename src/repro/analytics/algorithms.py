"""Complex analytics algorithms (Section 2.4).

"Increasingly analysts rely on predictive models … The vast majority are based
on linear algebra and often use recursion.  These include regression analysis,
singular value decomposition, eigenanalysis (e.g. power iterations), k-means
clustering, and graph analytics."

Each algorithm here is written against plain numpy matrices so it can run on
whatever the array island hands back; :mod:`repro.analytics.runner` binds them
to the polystore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegressionResult:
    """Ordinary least squares fit: y ≈ X @ coefficients + intercept."""

    coefficients: np.ndarray
    intercept: float
    r_squared: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.asarray(features, dtype=float) @ self.coefficients + self.intercept


def linear_regression(features: np.ndarray, target: np.ndarray) -> RegressionResult:
    """Least-squares linear regression with an intercept term."""
    X = np.asarray(features, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = np.asarray(target, dtype=float).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError("features and target must have the same number of rows")
    design = np.column_stack([X, np.ones(X.shape[0])])
    solution, *_ = np.linalg.lstsq(design, y, rcond=None)
    coefficients, intercept = solution[:-1], float(solution[-1])
    predictions = design @ solution
    residual = float(((y - predictions) ** 2).sum())
    total = float(((y - y.mean()) ** 2).sum())
    # A (near-)constant target has no variance to explain; the fit is exact.
    r_squared = 1.0 if total <= 1e-12 else 1.0 - residual / total
    return RegressionResult(coefficients, intercept, r_squared)


@dataclass(frozen=True)
class PcaResult:
    """Principal component analysis of a (samples x features) matrix."""

    components: np.ndarray  # (n_components, features)
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray

    def transform(self, data: np.ndarray) -> np.ndarray:
        return (np.asarray(data, dtype=float) - self.mean) @ self.components.T


def pca(data: np.ndarray, n_components: int | None = None) -> PcaResult:
    """PCA via SVD of the centered data matrix."""
    X = np.asarray(data, dtype=float)
    if X.ndim != 2:
        raise ValueError("PCA requires a 2-dimensional (samples x features) matrix")
    mean = X.mean(axis=0)
    centered = X - mean
    _u, s, vt = np.linalg.svd(centered, full_matrices=False)
    variance = (s ** 2) / max(1, X.shape[0] - 1)
    k = n_components or min(X.shape)
    total = variance.sum()
    ratio = variance / total if total > 0 else np.zeros_like(variance)
    return PcaResult(vt[:k], variance[:k], ratio[:k], mean)


@dataclass(frozen=True)
class KMeansResult:
    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def kmeans(data: np.ndarray, k: int, max_iterations: int = 100, seed: int = 0) -> KMeansResult:
    """Lloyd's algorithm with deterministic initialization (k-means++ style seeding)."""
    X = np.asarray(data, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if k <= 0 or k > X.shape[0]:
        raise ValueError("k must be between 1 and the number of samples")
    rng = np.random.default_rng(seed)
    centroids = _kmeans_plus_plus_init(X, k, rng)
    labels = np.zeros(X.shape[0], dtype=int)
    for iteration in range(1, max_iterations + 1):
        distances = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        new_centroids = np.array(
            [
                X[new_labels == i].mean(axis=0) if np.any(new_labels == i) else centroids[i]
                for i in range(k)
            ]
        )
        if np.array_equal(new_labels, labels) and np.allclose(new_centroids, centroids):
            labels = new_labels
            centroids = new_centroids
            break
        labels, centroids = new_labels, new_centroids
    inertia = float(((X - centroids[labels]) ** 2).sum())
    return KMeansResult(centroids, labels, inertia, iteration)


def _kmeans_plus_plus_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    centroids = [X[rng.integers(X.shape[0])]]
    for _ in range(1, k):
        distances = np.min(
            np.linalg.norm(X[:, None, :] - np.array(centroids)[None, :, :], axis=2) ** 2, axis=1
        )
        total = distances.sum()
        if total == 0:
            centroids.append(X[rng.integers(X.shape[0])])
            continue
        probabilities = distances / total
        centroids.append(X[rng.choice(X.shape[0], p=probabilities)])
    return np.array(centroids)


def fft_spectrum(signal: np.ndarray, sample_rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
    """Magnitude spectrum of a real signal: (frequencies, magnitudes)."""
    values = np.asarray(signal, dtype=float).ravel()
    magnitudes = np.abs(np.fft.rfft(values))
    frequencies = np.fft.rfftfreq(values.size, d=1.0 / sample_rate_hz)
    return frequencies, magnitudes


def dominant_frequency(signal: np.ndarray, sample_rate_hz: float) -> float:
    """The non-DC frequency with the largest magnitude."""
    frequencies, magnitudes = fft_spectrum(signal, sample_rate_hz)
    if magnitudes.size <= 1:
        return 0.0
    index = int(np.argmax(magnitudes[1:])) + 1
    return float(frequencies[index])


def power_iteration(matrix: np.ndarray, iterations: int = 200, tolerance: float = 1e-10
                    ) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue / eigenvector of a square matrix."""
    A = np.asarray(matrix, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("power iteration requires a square matrix")
    vector = np.ones(A.shape[0]) / np.sqrt(A.shape[0])
    eigenvalue = 0.0
    for _ in range(iterations):
        product = A @ vector
        norm = np.linalg.norm(product)
        if norm == 0:
            return 0.0, vector
        vector = product / norm
        new_eigenvalue = float(vector @ A @ vector)
        if abs(new_eigenvalue - eigenvalue) < tolerance:
            return new_eigenvalue, vector
        eigenvalue = new_eigenvalue
    return eigenvalue, vector


def pagerank(adjacency: np.ndarray, damping: float = 0.85, iterations: int = 100,
             tolerance: float = 1e-9) -> np.ndarray:
    """PageRank over a dense adjacency matrix (rows = source, cols = target)."""
    A = np.asarray(adjacency, dtype=float)
    n = A.shape[0]
    out_degree = A.sum(axis=1)
    transition = np.divide(A, out_degree[:, None], out=np.full_like(A, 1.0 / n), where=out_degree[:, None] > 0)
    rank = np.full(n, 1.0 / n)
    for _ in range(iterations):
        new_rank = (1 - damping) / n + damping * transition.T @ rank
        if np.abs(new_rank - rank).sum() < tolerance:
            return new_rank
        rank = new_rank
    return rank
