"""Binding complex analytics to the polystore.

The demo's "Complex Analytics" screen lets a non-programmer run linear
regression, FFTs and PCA on patient data.  :class:`AnalyticsRunner` is the
layer behind that screen: it pulls matrices out of the array island (or from
relational tables via a cast), runs the algorithms, and returns plain results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.algorithms import (
    KMeansResult,
    PcaResult,
    RegressionResult,
    dominant_frequency,
    fft_spectrum,
    kmeans,
    linear_regression,
    pca,
)
from repro.core.bigdawg import BigDawg
from repro.core.islands.array import ArrayIsland


@dataclass
class AnalyticsRunner:
    """Runs complex analytics through the BigDAWG array island."""

    bigdawg: BigDawg

    # ------------------------------------------------------------------ inputs
    def waveform_matrix(self, array_name: str, attribute: str = "value") -> np.ndarray:
        """Fetch an array-island object as a dense matrix."""
        island = self.bigdawg.island("array")
        assert isinstance(island, ArrayIsland)
        stored = island.fetch_array(array_name)
        return np.asarray(stored.buffer(attribute), dtype=float)

    def feature_matrix(self, sql: str, columns: list[str]) -> np.ndarray:
        """Run a relational query and pull the named numeric columns as a matrix."""
        relation = self.bigdawg.execute(f"RELATIONAL({sql})")
        rows = []
        for row in relation:
            rows.append([float(row[c]) if row[c] is not None else 0.0 for c in columns])
        return np.asarray(rows, dtype=float)

    # -------------------------------------------------------------- algorithms
    def regression(self, sql: str, feature_columns: list[str], target_column: str) -> RegressionResult:
        """Fit a linear regression over the result of a relational query."""
        matrix = self.feature_matrix(sql, feature_columns + [target_column])
        return linear_regression(matrix[:, :-1], matrix[:, -1])

    def waveform_fft(self, array_name: str, signal_index: int, sample_rate_hz: float
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Magnitude spectrum of one signal row of a waveform array."""
        matrix = self.waveform_matrix(array_name)
        return fft_spectrum(matrix[signal_index], sample_rate_hz)

    def waveform_dominant_frequency(self, array_name: str, signal_index: int,
                                    sample_rate_hz: float) -> float:
        matrix = self.waveform_matrix(array_name)
        return dominant_frequency(matrix[signal_index], sample_rate_hz)

    def patient_pca(self, sql: str, columns: list[str], n_components: int = 2) -> PcaResult:
        """PCA over a relational feature matrix."""
        return pca(self.feature_matrix(sql, columns), n_components)

    def patient_clusters(self, sql: str, columns: list[str], k: int, seed: int = 0) -> KMeansResult:
        """k-means over a relational feature matrix."""
        return kmeans(self.feature_matrix(sql, columns), k, seed=seed)
