"""Baselines the paper compares against: a single-store deployment and micro-batching."""

from repro.baselines.microbatch import MicroBatchAlert, MicroBatchProcessor
from repro.baselines.onesize import OneSizeFitsAllDeployment, build_one_size_fits_all

__all__ = [
    "MicroBatchAlert",
    "MicroBatchProcessor",
    "OneSizeFitsAllDeployment",
    "build_one_size_fits_all",
]
