"""Micro-batch stream processing baseline (the Spark-Streaming-style comparator).

Section 1.2: "Spark Streaming is not designed for sub-second latencies" — the
paper's argument for a tuple-at-a-time transactional engine.  The baseline
here buffers incoming tuples and only evaluates the monitoring logic when a
batch interval elapses, so the best-case detection latency is bounded below by
the batch interval, versus the per-tuple path of the streaming engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass
class MicroBatchAlert:
    """One alert raised at the end of a batch."""

    timestamp: float  # the batch boundary at which the alert was produced
    kind: str
    observed: float
    triggering_timestamp: float  # earliest tuple in the batch that satisfied the condition


@dataclass
class MicroBatchProcessor:
    """Buffers tuples and runs the detection function once per batch interval.

    ``detector`` receives the window of recent values and returns the observed
    statistic; an alert fires when it exceeds ``threshold``.
    """

    batch_interval_seconds: float
    window_seconds: float
    detector: Callable[[np.ndarray], float]
    threshold: float
    alerts: list[MicroBatchAlert] = field(default_factory=list)
    batches_processed: int = 0
    _buffer: list[tuple[float, float]] = field(default_factory=list)  # (timestamp, value)
    _window: list[tuple[float, float]] = field(default_factory=list)
    _next_batch_boundary: float | None = None

    def ingest(self, timestamp: float, value: float, **_extra: Any) -> list[MicroBatchAlert]:
        """Buffer one tuple; process the batch only when the interval has elapsed."""
        if self._next_batch_boundary is None:
            # Batches are aligned to absolute multiples of the interval, as a
            # micro-batch scheduler would align them to wall-clock ticks.
            intervals_elapsed = int(timestamp // self.batch_interval_seconds) + 1
            self._next_batch_boundary = intervals_elapsed * self.batch_interval_seconds
        self._buffer.append((timestamp, value))
        fired: list[MicroBatchAlert] = []
        while self._next_batch_boundary is not None and timestamp >= self._next_batch_boundary:
            fired.extend(self._process_batch(self._next_batch_boundary))
            self._next_batch_boundary += self.batch_interval_seconds
        return fired

    def flush(self) -> list[MicroBatchAlert]:
        """Process whatever is buffered (end of feed)."""
        if not self._buffer:
            return []
        boundary = max(ts for ts, _v in self._buffer)
        return self._process_batch(boundary)

    # ----------------------------------------------------------------- internal
    def _process_batch(self, boundary: float) -> list[MicroBatchAlert]:
        batch = [(ts, v) for ts, v in self._buffer if ts <= boundary]
        self._buffer = [(ts, v) for ts, v in self._buffer if ts > boundary]
        self.batches_processed += 1
        if not batch:
            return []
        self._window.extend(batch)
        horizon = boundary - self.window_seconds
        self._window = [(ts, v) for ts, v in self._window if ts >= horizon]
        values = np.array([v for _ts, v in self._window], dtype=float)
        if values.size == 0:
            return []
        observed = float(self.detector(values))
        if observed <= self.threshold:
            return []
        alert = MicroBatchAlert(
            timestamp=boundary,
            kind="threshold",
            observed=observed,
            triggering_timestamp=batch[0][0],
        )
        self.alerts.append(alert)
        return [alert]

    def detection_latency(self, anomaly_timestamp: float) -> float | None:
        """Seconds between the anomaly's first sample and the first alert at/after it."""
        eligible = [a for a in self.alerts if a.timestamp >= anomaly_timestamp]
        if not eligible:
            return None
        return min(a.timestamp for a in eligible) - anomaly_timestamp
