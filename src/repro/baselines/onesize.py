"""The "one size fits all" baseline: everything in a single relational store.

Section 4: "we expect our architecture to outperform a 'one size fits all'
system by one-to-two orders of magnitude."  To measure that, this module
deploys the *entire* MIMIC II dataset — metadata, waveform samples flattened
to rows, and notes as text rows — into one relational engine and re-expresses
each workload class against it:

* SQL analytics run natively (this is the baseline's home turf);
* complex analytics must compute windowed aggregates and spectra by pulling
  rows out of SQL and looping, instead of operating on dense arrays;
* text search becomes ``LIKE``-style scans over the notes table instead of an
  inverted-index lookup;
* streaming alerting becomes periodic polling of a table that ingests the feed
  with batch inserts, instead of tuple-at-a-time triggers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.schema import Schema
from repro.engines.relational.engine import RelationalEngine
from repro.mimic.generator import MimicDataset


NOTES_SCHEMA = Schema(
    [
        ("note_id", "integer", False),
        ("patient_id", "integer", False),
        ("author", "text"),
        ("note_text", "text"),
    ]
)
WAVEFORM_ROWS_SCHEMA = Schema(
    [
        ("signal_id", "integer", False),
        ("sample_index", "integer", False),
        ("value", "float"),
    ]
)


@dataclass
class OneSizeFitsAllDeployment:
    """The whole dataset in one relational engine."""

    engine: RelationalEngine
    sample_rate_hz: float

    # ------------------------------------------------------------ SQL analytics
    def patients_given_drug(self, drug: str) -> int:
        result = self.engine.execute(
            f"SELECT count(*) AS n FROM prescriptions WHERE drug = '{drug}'"
        )
        return int(result.rows[0]["n"])

    def stay_by_race(self) -> dict[str, float]:
        result = self.engine.execute(
            "SELECT p.race AS race, avg(a.stay_days) AS avg_stay FROM patients p "
            "JOIN admissions a ON p.patient_id = a.patient_id GROUP BY p.race"
        )
        return {row["race"]: float(row["avg_stay"]) for row in result}

    # -------------------------------------------------------- complex analytics
    def waveform_statistics(self) -> dict[str, float]:
        """Global mean/stddev of the waveform, computed over rows."""
        result = self.engine.execute(
            "SELECT avg(value) AS mean_value, stddev(value) AS std_value FROM waveform_rows"
        )
        row = result.rows[0]
        return {"avg": float(row["mean_value"]), "stddev": float(row["std_value"])}

    def windowed_max_average(self, window: int) -> float:
        """Max trailing-window average, computed by pulling rows into Python."""
        rows = self.engine.execute(
            "SELECT signal_id, sample_index, value FROM waveform_rows ORDER BY signal_id, sample_index"
        )
        best = float("-inf")
        current_signal = None
        buffer: list[float] = []
        for row in rows:
            if row["signal_id"] != current_signal:
                current_signal = row["signal_id"]
                buffer = []
            buffer.append(float(row["value"]))
            if len(buffer) > window:
                buffer.pop(0)
            if buffer:
                best = max(best, sum(buffer) / len(buffer))
        return best

    def dominant_frequency(self, signal_id: int) -> float:
        rows = self.engine.execute(
            f"SELECT value FROM waveform_rows WHERE signal_id = {signal_id} ORDER BY sample_index"
        )
        values = np.array([float(r["value"]) for r in rows])
        if values.size < 2:
            return 0.0
        magnitudes = np.abs(np.fft.rfft(values))
        frequencies = np.fft.rfftfreq(values.size, d=1.0 / self.sample_rate_hz)
        return float(frequencies[int(np.argmax(magnitudes[1:])) + 1])

    # --------------------------------------------------------------- text search
    def patients_with_min_phrase(self, phrase: str, minimum: int) -> list[str]:
        """Patients with at least ``minimum`` notes containing the phrase, via LIKE."""
        result = self.engine.execute(
            f"SELECT patient_id, count(*) AS n FROM notes WHERE note_text LIKE '%{phrase}%' "
            f"GROUP BY patient_id HAVING count(*) >= {minimum}"
        )
        return sorted(f"patient_{int(row['patient_id']):06d}" for row in result)

    # ----------------------------------------------------------------- streaming
    def ingest_feed_batch(self, batch: list[tuple[float, tuple[int, int, float]]]) -> int:
        """Batch-insert feed tuples (the baseline has no streaming primitives)."""
        rows = [(int(v[0]), int(v[1]), float(v[2])) for _ts, v in batch]
        return self.engine.insert_rows("waveform_rows", rows)

    def poll_recent_average(self, signal_id: int, last_n: int) -> float | None:
        result = self.engine.execute(
            f"SELECT avg(value) AS a FROM (SELECT value FROM waveform_rows "
            f"WHERE signal_id = {signal_id} ORDER BY sample_index DESC LIMIT {last_n}) t"
        )
        value = result.rows[0]["a"] if result.rows else None
        return float(value) if value is not None else None


def build_one_size_fits_all(dataset: MimicDataset, include_waveforms: bool = True,
                            sample_rate_hz: float | None = None) -> OneSizeFitsAllDeployment:
    """Load the entire dataset into a single relational engine."""
    from repro.mimic.loader import load_relational

    engine = RelationalEngine("onesize")
    load_relational(engine, dataset)
    engine.create_table("notes", NOTES_SCHEMA, primary_key=("note_id",), if_not_exists=True)
    engine.insert_rows(
        "notes", [(n.note_id, n.patient_id, n.author, n.text) for n in dataset.notes]
    )
    engine.create_table("waveform_rows", WAVEFORM_ROWS_SCHEMA, if_not_exists=True)
    rate = sample_rate_hz or (dataset.waveforms[0].sample_rate_hz if dataset.waveforms else 125.0)
    if include_waveforms:
        rows = []
        for waveform in dataset.waveforms:
            for index, value in enumerate(waveform.values):
                rows.append((waveform.signal_id, index, float(value)))
        engine.insert_rows("waveform_rows", rows)
        engine.create_index("idx_waveform_signal", "waveform_rows", ["signal_id"])
    return OneSizeFitsAllDeployment(engine, rate)
