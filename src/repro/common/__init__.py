"""Common kernel shared by every engine and island: types, schemas, expressions."""

from repro.common.errors import (
    BigDawgError,
    CastError,
    CatalogError,
    DuplicateObjectError,
    ExecutionError,
    ObjectNotFoundError,
    ParseError,
    PlanningError,
    SchemaError,
    TypeMismatchError,
    UnsupportedOperationError,
)
from repro.common.schema import Column, Relation, Row, Schema, TableDefinition
from repro.common.types import DataType, coerce, common_type, infer_type, parse_type

__all__ = [
    "BigDawgError",
    "CastError",
    "CatalogError",
    "Column",
    "DataType",
    "DuplicateObjectError",
    "ExecutionError",
    "ObjectNotFoundError",
    "ParseError",
    "PlanningError",
    "Relation",
    "Row",
    "Schema",
    "SchemaError",
    "TableDefinition",
    "TypeMismatchError",
    "UnsupportedOperationError",
    "coerce",
    "common_type",
    "infer_type",
    "parse_type",
]
