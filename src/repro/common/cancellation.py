"""Cooperative per-query cancellation.

A :class:`CancellationToken` carries a query's deadline plus an explicit
cancel flag.  The scheduler creates one per submitted query and installs
it in an ambient thread-local scope; engines, the morsel executor and the
chunked CAST pipeline call :func:`check_cancelled` at batch/chunk
boundaries, so a timed-out or client-abandoned query stops mid-scan
instead of running to completion and being discarded.

The ambient scope composes with the tracing context: ``capture_context``
snapshots the active token together with the active span/tracer, and
``with_context`` re-installs all three, so the token crosses the runtime
worker pool, plan-wave threads and morsel workers exactly the way trace
context already does.

When no token is active (library used without the runtime, or tracing a
bare island call) every check is a near-free ``None`` test — the same
cost profile the tracing-overhead CI guard already bounds.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator
from contextlib import contextmanager

from repro.common.errors import DeadlineExceededError, QueryCancelledError

__all__ = [
    "CancellationToken",
    "cancel_scope",
    "check_cancelled",
    "current_token",
]


class CancellationToken:
    """A cancel flag plus an optional deadline on an injectable clock.

    ``check()`` is the single polling point: it raises
    :class:`QueryCancelledError` if the client cancelled, or
    :class:`DeadlineExceededError` if the deadline (a timestamp on
    ``clock``'s timeline, matching the scheduler's deadlines) has passed.
    Thread-safe: many worker threads may poll one token.
    """

    __slots__ = ("deadline", "_clock", "_cancelled", "_reason", "_lock")

    def __init__(self, deadline: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.deadline = deadline
        self._clock = clock
        self._cancelled = False
        self._reason: str | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ state
    def cancel(self, reason: str | None = None) -> None:
        """Request cancellation; idempotent, first reason wins."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (deadline not considered)."""
        return self._cancelled

    @property
    def reason(self) -> str | None:
        return self._reason

    def expired(self) -> bool:
        """Whether the deadline, if any, has passed."""
        return self.deadline is not None and self._clock() >= self.deadline

    def remaining_s(self) -> float | None:
        """Seconds until the deadline, or ``None`` when there is none."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    # ------------------------------------------------------------------ check
    def check(self) -> None:
        """Raise if the query should stop; otherwise return immediately."""
        if self._cancelled:
            raise QueryCancelledError(
                self._reason or "query cancelled by client"
            )
        if self.deadline is not None and self._clock() >= self.deadline:
            raise DeadlineExceededError(
                "query exceeded its deadline mid-execution"
            )


_ACTIVE = threading.local()


def current_token() -> CancellationToken | None:
    """The token installed in this thread's ambient scope, if any."""
    return getattr(_ACTIVE, "token", None)


def _install(token: CancellationToken | None) -> CancellationToken | None:
    previous = getattr(_ACTIVE, "token", None)
    _ACTIVE.token = token
    return previous


@contextmanager
def cancel_scope(token: CancellationToken | None) -> Iterator[CancellationToken | None]:
    """Install ``token`` as the ambient token for the duration of the block."""
    previous = _install(token)
    try:
        yield token
    finally:
        _install(previous)


def check_cancelled() -> None:
    """Poll the ambient token; no-op (one attribute read) when none is set."""
    token = getattr(_ACTIVE, "token", None)
    if token is not None:
        token.check()
