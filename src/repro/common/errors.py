"""Exception hierarchy shared by every BigDAWG subsystem.

Every error raised by the library derives from :class:`BigDawgError` so that
callers can catch a single base class at the federation boundary while still
being able to discriminate parse errors from execution errors from catalog
errors when they need to.
"""

from __future__ import annotations


class BigDawgError(Exception):
    """Base class for every error raised by the repro library.

    ``retryable`` marks errors the runtime's retry policy may transparently
    retry: transient, connection-shaped failures that happened *before* the
    engine applied any effect.  Semantic errors (parse, planning, schema,
    constraint) stay non-retryable — retrying them can only fail again.
    """

    #: Whether the runtime may retry the operation that raised this.
    retryable = False


class SchemaError(BigDawgError):
    """A schema is malformed or two schemas are incompatible."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared column type."""


class ParseError(BigDawgError):
    """A query string could not be parsed.

    Attributes
    ----------
    position:
        Character offset in the query text where parsing failed, if known.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(BigDawgError):
    """A parsed query could not be turned into an executable plan."""


class ExecutionError(BigDawgError):
    """A plan failed while executing."""


class CatalogError(BigDawgError):
    """A referenced object is missing from, or duplicated in, a catalog."""


class ObjectNotFoundError(CatalogError):
    """A table, array, stream or other data object does not exist."""


class DuplicateObjectError(CatalogError):
    """An object with the same name already exists."""


class UnsupportedOperationError(BigDawgError):
    """An engine or island was asked to perform something outside its capabilities."""


class CastError(BigDawgError):
    """Data could not be moved between two engines."""


class TransientEngineError(BigDawgError):
    """An engine failed in a way that may succeed on retry.

    The failure surface of a federated deployment: dropped connections,
    brief stalls, engines restarting.  The fault-injection harness raises
    subclasses of this, and the runtime's retry policy only ever retries
    errors whose ``retryable`` flag is set.
    """

    retryable = True


class EngineUnavailableError(TransientEngineError):
    """An engine is down (or simulated down) and cannot serve any call."""


class CircuitOpenError(BigDawgError):
    """The runtime refused to dispatch to an engine whose breaker is open.

    Raised *before* admission, so queries fail fast instead of queueing
    behind an engine known to be unhealthy.  ``engine`` names the tripped
    breaker; ``retry_after_s`` is the cooldown remaining when known.
    """

    def __init__(self, message: str, engine: str | None = None,
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.engine = engine
        self.retry_after_s = retry_after_s


class DeadlineExceededError(BigDawgError):
    """A query ran past its deadline.

    Checked at plan-step boundaries by the scheduler and, once a
    :class:`~repro.common.cancellation.CancellationToken` is installed,
    at every batch/chunk boundary inside the engines themselves.
    """


class QueryCancelledError(BigDawgError):
    """A query was cancelled by its client before completing.

    Raised cooperatively from :meth:`CancellationToken.check` at batch
    boundaries.  Deliberately *not* retryable: the client no longer wants
    the answer, so the runtime must unwind, clean up shadow/spill state,
    and stop — never re-run the work.
    """


class SimulatedCrashError(BaseException):
    """A simulated middleware-process death, for crash-recovery tests.

    Deliberately derives from ``BaseException`` rather than
    :class:`BigDawgError`: a real crash gives in-process cleanup handlers no
    chance to run, so ``except Exception`` recovery paths (shadow discard,
    intent aborts, failure accounting) must not observe this either.  The
    few ``except BaseException`` unwind sites in the write path check for it
    explicitly and re-raise without cleaning up — recovery from a simulated
    crash must come from replaying the write-ahead intent journal, exactly
    as it would after a genuine process death.
    """


class TransactionError(BigDawgError):
    """A transaction was aborted or used incorrectly."""


class IngestionError(BigDawgError):
    """The streaming engine could not ingest a tuple or batch."""


class ConstraintViolationError(BigDawgError):
    """A declared constraint (primary key, not-null) was violated."""
