"""Expression AST shared by the SQL engine, the array engine and the islands.

The same expression tree is produced by the SQL parser, the AFL parser and the
BigDAWG query planner, which lets predicates be pushed across island
boundaries without re-parsing.

Expressions support two evaluation strategies:

* :meth:`Expression.evaluate` — the interpreted path: walk the tree once per
  row, resolving column names against the row's schema each time.
* :meth:`Expression.compile` — the compiled path: lower the tree *once*
  against a schema into a closure over a positional value tuple.  Column
  references become index lookups, operator tables are resolved at compile
  time, and LIKE patterns become pre-compiled regexes, so evaluating a
  predicate over a batch of rows pays no per-row dispatch.
"""

from __future__ import annotations

import math
import operator
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Sequence

from repro.common.errors import ExecutionError
from repro.common.schema import Row, Schema

#: A compiled expression: positional value tuple -> value.
CompiledExpression = Callable[[Sequence[Any]], Any]


class Expression:
    """Base class of all expression nodes."""

    def evaluate(self, row: Row) -> Any:
        """Evaluate this expression against one row."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> CompiledExpression:
        """Lower this expression once into a closure over a value tuple.

        The returned callable takes a positional sequence of values laid out
        according to ``schema`` and returns the expression's value.  The
        default implementation wraps :meth:`evaluate` so expression types
        added later still work on the compiled path; every built-in node
        overrides it with a dispatch-free closure.
        """
        node, bound_schema = self, schema
        return lambda values: node.evaluate(Row(bound_schema, values))

    def referenced_columns(self) -> set[str]:
        """Return the set of column names this expression reads."""
        return set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_sql()

    def to_sql(self) -> str:
        """Render the expression back to SQL-ish text (for EXPLAIN and shims)."""
        raise NotImplementedError


@dataclass(frozen=True, repr=False)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def compile(self, schema: Schema) -> CompiledExpression:
        value = self.value
        return lambda values: value

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True, repr=False)
class ColumnRef(Expression):
    """A reference to a column by name."""

    name: str

    def evaluate(self, row: Row) -> Any:
        return row[self.name]

    def compile(self, schema: Schema) -> CompiledExpression:
        return operator.itemgetter(schema.index_of(self.name))

    def referenced_columns(self) -> set[str]:
        return {self.name.lower()}

    def to_sql(self) -> str:
        return self.name


def _null_safe(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Wrap a binary operator with SQL NULL propagation."""

    def wrapped(left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        return fn(left, right)

    return wrapped


def _divide(left: Any, right: Any) -> Any:
    if right == 0:
        raise ExecutionError("division by zero")
    result = left / right
    return result


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a LIKE pattern (``%`` and ``_`` wildcards) to a regex, once.

    The cache means a LIKE predicate evaluated over a million rows compiles
    its regex a single time instead of once per row.
    """
    return re.compile(re.escape(pattern).replace("%", ".*").replace("_", "."))


def _like(value: Any, pattern: Any) -> bool:
    """SQL LIKE with % and _ wildcards, case sensitive."""
    return _like_regex(str(pattern)).fullmatch(str(value)) is not None


_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _null_safe(operator.add),
    "-": _null_safe(operator.sub),
    "*": _null_safe(operator.mul),
    "/": _null_safe(_divide),
    "%": _null_safe(operator.mod),
    "=": _null_safe(operator.eq),
    "==": _null_safe(operator.eq),
    "!=": _null_safe(operator.ne),
    "<>": _null_safe(operator.ne),
    "<": _null_safe(operator.lt),
    "<=": _null_safe(operator.le),
    ">": _null_safe(operator.gt),
    ">=": _null_safe(operator.ge),
    "like": _null_safe(_like),
}


@dataclass(frozen=True, repr=False)
class BinaryOp(Expression):
    """A binary arithmetic or comparison operator with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op.lower() not in _BINARY_OPS and self.op.lower() not in ("and", "or"):
            raise ExecutionError(f"unknown binary operator: {self.op!r}")

    def evaluate(self, row: Row) -> Any:
        op = self.op.lower()
        if op == "and":
            left = self.left.evaluate(row)
            if left is False:
                return False
            right = self.right.evaluate(row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if op == "or":
            left = self.left.evaluate(row)
            if left is True:
                return True
            right = self.right.evaluate(row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        return _BINARY_OPS[op](self.left.evaluate(row), self.right.evaluate(row))

    def compile(self, schema: Schema) -> CompiledExpression:
        op = self.op.lower()
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        if op == "and":

            def _and(values: Sequence[Any]) -> Any:
                l = left(values)
                if l is False:
                    return False
                r = right(values)
                if r is False:
                    return False
                if l is None or r is None:
                    return None
                return bool(l) and bool(r)

            return _and
        if op == "or":

            def _or(values: Sequence[Any]) -> Any:
                l = left(values)
                if l is True:
                    return True
                r = right(values)
                if r is True:
                    return True
                if l is None or r is None:
                    return None
                return bool(l) or bool(r)

            return _or
        if op == "like" and isinstance(self.right, Literal) and self.right.value is not None:
            # Constant pattern: bake the compiled regex straight into the closure.
            regex = _like_regex(str(self.right.value))

            def _match(values: Sequence[Any]) -> Any:
                value = left(values)
                if value is None:
                    return None
                return regex.fullmatch(str(value)) is not None

            return _match
        fn = _BINARY_OPS[op]
        return lambda values: fn(left(values), right(values))

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op.upper()} {self.right.to_sql()})"


@dataclass(frozen=True, repr=False)
class UnaryOp(Expression):
    """NOT and unary minus."""

    op: str
    operand: Expression

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        op = self.op.lower()
        if op == "not":
            if value is None:
                return None
            return not bool(value)
        if op == "-":
            if value is None:
                return None
            return -value
        raise ExecutionError(f"unknown unary operator: {self.op!r}")

    def compile(self, schema: Schema) -> CompiledExpression:
        operand = self.operand.compile(schema)
        op = self.op.lower()
        if op == "not":

            def _not(values: Sequence[Any]) -> Any:
                value = operand(values)
                return None if value is None else not bool(value)

            return _not
        if op == "-":

            def _neg(values: Sequence[Any]) -> Any:
                value = operand(values)
                return None if value is None else -value

            return _neg
        raise ExecutionError(f"unknown unary operator: {self.op!r}")

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.op.upper()} {self.operand.to_sql()})"


@dataclass(frozen=True, repr=False)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Row) -> Any:
        is_null = self.operand.evaluate(row) is None
        return (not is_null) if self.negated else is_null

    def compile(self, schema: Schema) -> CompiledExpression:
        operand = self.operand.compile(schema)
        if self.negated:
            return lambda values: operand(values) is not None
        return lambda values: operand(values) is None

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True, repr=False)
class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Any, ...]
    negated: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        result = value in self.values
        return (not result) if self.negated else result

    def compile(self, schema: Schema) -> CompiledExpression:
        operand = self.operand.compile(schema)
        # Tuple membership preserves the interpreted path's ``==`` semantics
        # exactly; IN lists are short, so linear probing stays cheap.
        lookup = self.values
        negated = self.negated

        def _in(values: Sequence[Any]) -> Any:
            value = operand(values)
            if value is None:
                return None
            result = value in lookup
            return (not result) if negated else result

        return _in

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        rendered = ", ".join(Literal(v).to_sql() for v in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({rendered}))"


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "sqrt": lambda x: math.sqrt(x) if x is not None else None,
    "floor": lambda x: math.floor(x) if x is not None else None,
    "ceil": lambda x: math.ceil(x) if x is not None else None,
    "round": lambda x, n=0: round(x, int(n)) if x is not None else None,
    "ln": lambda x: math.log(x) if x is not None else None,
    "log": lambda x: math.log10(x) if x is not None else None,
    "exp": lambda x: math.exp(x) if x is not None else None,
    "upper": lambda s: s.upper() if s is not None else None,
    "lower": lambda s: s.lower() if s is not None else None,
    "length": lambda s: len(s) if s is not None else None,
    "substr": lambda s, start, length=None: (
        None if s is None else (s[int(start) - 1 :] if length is None else s[int(start) - 1 : int(start) - 1 + int(length)])
    ),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "greatest": lambda *args: max(a for a in args if a is not None),
    "least": lambda *args: min(a for a in args if a is not None),
    "pow": lambda x, y: math.pow(x, y) if x is not None and y is not None else None,
    "sin": lambda x: math.sin(x) if x is not None else None,
    "cos": lambda x: math.cos(x) if x is not None else None,
}


def scalar_function_names() -> set[str]:
    """Names of all built-in scalar functions (used by parsers)."""
    return set(_SCALAR_FUNCTIONS)


@dataclass(frozen=True, repr=False)
class FunctionCall(Expression):
    """A call to a built-in scalar function."""

    name: str
    args: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        fn = _SCALAR_FUNCTIONS.get(self.name.lower())
        if fn is None:
            raise ExecutionError(f"unknown scalar function: {self.name!r}")
        return fn(*[arg.evaluate(row) for arg in self.args])

    def compile(self, schema: Schema) -> CompiledExpression:
        fn = _SCALAR_FUNCTIONS.get(self.name.lower())
        if fn is None:
            raise ExecutionError(f"unknown scalar function: {self.name!r}")
        compiled = [arg.compile(schema) for arg in self.args]
        if len(compiled) == 1:
            arg0 = compiled[0]
            return lambda values: fn(arg0(values))
        if len(compiled) == 2:
            arg0, arg1 = compiled
            return lambda values: fn(arg0(values), arg1(values))
        return lambda values: fn(*[arg(values) for arg in compiled])

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.referenced_columns()
        return refs

    def to_sql(self) -> str:
        return f"{self.name.upper()}({', '.join(a.to_sql() for a in self.args)})"


@dataclass(frozen=True, repr=False)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def evaluate(self, row: Row) -> Any:
        for condition, result in self.branches:
            if condition.evaluate(row):
                return result.evaluate(row)
        if self.default is not None:
            return self.default.evaluate(row)
        return None

    def compile(self, schema: Schema) -> CompiledExpression:
        branches = [
            (condition.compile(schema), result.compile(schema))
            for condition, result in self.branches
        ]
        default = self.default.compile(schema) if self.default is not None else None

        def _case(values: Sequence[Any]) -> Any:
            for condition, result in branches:
                if condition(values):
                    return result(values)
            if default is not None:
                return default(values)
            return None

        return _case

    def referenced_columns(self) -> set[str]:
        refs: set[str] = set()
        for condition, result in self.branches:
            refs |= condition.referenced_columns() | result.referenced_columns()
        if self.default is not None:
            refs |= self.default.referenced_columns()
        return refs

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


def conjunction(predicates: Sequence[Expression]) -> Expression | None:
    """AND together a list of predicates; returns None for an empty list."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("and", result, predicate)
    return result


def split_conjuncts(predicate: Expression | None) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op.lower() == "and":
        return split_conjuncts(predicate.left) + split_conjuncts(predicate.right)
    return [predicate]


def columns_satisfiable_by(predicate: Expression, schema: Schema) -> bool:
    """Return True if every column the predicate references exists in ``schema``."""
    return all(schema.has_column(name) for name in predicate.referenced_columns())


def evaluate_predicate(predicate: Expression | None, row: Row) -> bool:
    """Evaluate a predicate with SQL semantics: NULL counts as not satisfied."""
    if predicate is None:
        return True
    result = predicate.evaluate(row)
    return bool(result) if result is not None else False


def compile_predicate(
    predicate: Expression | None, schema: Schema
) -> Callable[[Sequence[Any]], bool]:
    """Compile a predicate once into a value-tuple closure with SQL semantics.

    The returned callable applies the same NULL-counts-as-false rule as
    :func:`evaluate_predicate`, but resolves columns, operators and LIKE
    regexes a single time instead of once per row.
    """
    if predicate is None:
        return lambda values: True
    compiled = predicate.compile(schema)

    def _predicate(values: Sequence[Any]) -> bool:
        result = compiled(values)
        return bool(result) if result is not None else False

    return _predicate
