"""Dense int64 key codes for vectorized joins and grouped aggregation.

The batch executor's joins and group-bys both reduce to the same primitive:
map one-or-many key columns to a single dense ``int64`` code per row so that
"same key" becomes "same integer" and the rest of the operator is numpy
index arithmetic (``np.bincount``, ``np.take``, ``np.repeat``) instead of
per-row Python tuples and dict probes.

NULL-sentinel contract
----------------------
* Inside a per-column encoding, code ``0`` is **reserved for NULL**; real
  values are assigned codes ``1..k``.  Combining columns with a mixed-radix
  step therefore keeps NULL distinct from every real value automatically.
* In the public results, :data:`NULL_CODE` (``-1``) marks rows whose key
  contains a NULL **in join position**: :meth:`JoinKeyTable.build_codes`
  and :meth:`JoinKeyTable.probe` return ``-1`` for NULL (or unseen) keys,
  because an SQL equi-join never matches on NULL.
* :func:`encode_group_keys` instead treats NULL as a *regular grouping
  value* (SQL GROUP BY puts all-NULL keys in one group), so its codes are
  always ``>= 0``; the per-row NULL information is preserved in
  :attr:`GroupCodes.null_rows`.

Dtype specialization
--------------------
INTEGER/FLOAT/BOOLEAN columns are factorized with ``np.unique`` over a
fixed-width numpy array (NULLs masked out first).  Everything else — TEXT,
TIMESTAMP, out-of-int64-range integers, and mixed-type column pairs — uses
a stable insertion-ordered Python dict, which preserves the row path's
``==``/``hash`` equality semantics exactly (``1 == 1.0``, ``True == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.common.types import DataType

#: Public sentinel: the code of a row whose key must not participate in a
#: join (NULL key on either side, or a probe key absent from the build side).
NULL_CODE = -1

#: numpy dtype per scalar type for the fast factorization path.
_CODE_DTYPES = {
    DataType.INTEGER: np.int64,
    DataType.FLOAT: np.float64,
    DataType.BOOLEAN: np.bool_,
}

#: Mixed-radix combination must stay inside int64; re-densify before this.
_RADIX_LIMIT = np.int64(2) ** 62


def _null_mask(values: Sequence[Any]) -> np.ndarray:
    return np.fromiter((v is None for v in values), np.bool_, count=len(values))


def _filled_array(values: Sequence[Any], dtype: Any) -> np.ndarray:
    """Pack a value list into a numpy array, substituting 0 at NULLs."""
    return np.fromiter(
        (0 if v is None else v for v in values), dtype, count=len(values)
    )


class _NumericColumnCodes:
    """Per-column factorization over a fixed-width numpy dtype."""

    def __init__(self, values: Sequence[Any], dtype: Any) -> None:
        nulls = _null_mask(values)
        filled = _filled_array(values, dtype)  # may raise OverflowError
        self._dtype = dtype
        if nulls.any():
            uniq, inverse = np.unique(filled[~nulls], return_inverse=True)
            codes = np.zeros(len(values), dtype=np.int64)
            codes[~nulls] = inverse.astype(np.int64) + 1
        else:
            uniq, inverse = np.unique(filled, return_inverse=True)
            codes = inverse.astype(np.int64) + 1
        self.uniques = uniq
        self.codes = codes
        self.radix = len(uniq) + 1

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        """Codes for probe-side values against this column's dictionary.

        Unseen values and NULLs map to 0 (the reserved NULL slot), which the
        caller treats as non-matching.
        """
        uniq = self.uniques
        if len(uniq) == 0:
            return np.zeros(len(values), dtype=np.int64)
        try:
            nulls = _null_mask(values)
            filled = _filled_array(values, self._dtype)
        except (OverflowError, TypeError, ValueError):
            return self._transform_one_by_one(values)
        idx = np.searchsorted(uniq, filled)
        clipped = np.minimum(idx, len(uniq) - 1)
        found = (~nulls) & (idx < len(uniq)) & (uniq[clipped] == filled)
        return np.where(found, clipped + 1, 0).astype(np.int64)

    def _transform_one_by_one(self, values: Sequence[Any]) -> np.ndarray:
        """Probe values that will not pack into the build dtype (e.g. Python
        ints beyond int64): a misfit value can never equal an in-range build
        key, so it maps to 0; the remaining values probe individually."""
        uniq = self.uniques
        out = np.zeros(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            if value is None:
                continue
            try:
                packed = np.array([value], dtype=self._dtype)[0]
            except (OverflowError, TypeError, ValueError):
                continue
            idx = int(np.searchsorted(uniq, packed))
            if idx < len(uniq) and uniq[idx] == packed:
                out[i] = idx + 1
        return out


class _ObjectColumnCodes:
    """Insertion-ordered dict factorization: the stable fallback for object
    columns, preserving Python ``==``/``hash`` equality across types."""

    def __init__(self, values: Sequence[Any]) -> None:
        mapping: dict[Any, int] = {}
        setdefault = mapping.setdefault
        # fromiter writes int64 slots directly — no interim list, no
        # per-element ndarray __setitem__.
        codes = np.fromiter(
            (0 if v is None else setdefault(v, len(mapping) + 1) for v in values),
            np.int64,
            count=len(values),
        )
        self._mapping = mapping
        self.codes = codes
        self.radix = len(mapping) + 1

    def transform(self, values: Sequence[Any]) -> np.ndarray:
        get = self._mapping.get
        return np.fromiter(
            (0 if v is None else get(v, 0) for v in values),
            np.int64,
            count=len(values),
        )


def _encode_column(values: Sequence[Any], dtype: DataType | None):
    """Factorize one key column; numpy-specialized when the dtype allows."""
    np_dtype = _CODE_DTYPES.get(dtype) if dtype is not None else None
    if np_dtype is not None:
        try:
            return _NumericColumnCodes(values, np_dtype)
        except (OverflowError, TypeError, ValueError):
            pass  # e.g. Python ints beyond int64: fall through to the dict
    return _ObjectColumnCodes(values)


def _combine(column_codes: list) -> tuple[np.ndarray, np.ndarray]:
    """Mixed-radix combine per-column codes into one int64 code per row.

    Returns ``(combined, null_any)`` where ``null_any`` flags rows with a
    NULL (code 0) in any key column.  Re-densifies via ``np.unique`` before
    any step that could overflow int64.
    """
    first = column_codes[0]
    combined = first.codes
    null_any = combined == 0
    radix_total = np.int64(max(first.radix, 1))
    for encoder in column_codes[1:]:
        radix = np.int64(max(encoder.radix, 1))
        if radix_total > _RADIX_LIMIT // radix:
            uniq, inverse = np.unique(combined, return_inverse=True)
            combined = inverse.astype(np.int64)
            radix_total = np.int64(len(uniq))
        combined = combined * radix + encoder.codes
        null_any = null_any | (encoder.codes == 0)
        radix_total = radix_total * radix
    return combined, null_any


@dataclass
class GroupCodes:
    """Result of :func:`encode_group_keys`.

    ``codes[i]`` is the dense group id of row ``i``, numbered by **first
    appearance** so that emitting groups in code order reproduces the row
    executor's dict-insertion output order exactly.
    """

    codes: np.ndarray  #: int64 group id per row, first-appearance ordered
    group_count: int
    first_rows: np.ndarray  #: row index of each group's first occurrence
    null_rows: np.ndarray  #: bool mask: key contains a NULL (still grouped)


def encode_group_keys(
    columns: Sequence[Sequence[Any]], dtypes: Sequence[DataType | None]
) -> GroupCodes:
    """Factorize grouping key columns into dense first-appearance codes."""
    encoders = [_encode_column(col, dt) for col, dt in zip(columns, dtypes)]
    combined, null_any = _combine(encoders)
    uniq, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq), dtype=np.int64)
    codes = rank[inverse]
    return GroupCodes(
        codes=codes,
        group_count=len(uniq),
        first_rows=first_idx[order],
        null_rows=null_any,
    )


def partition_codes(codes: np.ndarray, num_partitions: int) -> list[np.ndarray]:
    """Radix-partition dense int64 key codes into per-partition row indices.

    Row ``i`` lands in partition ``codes[i] % num_partitions``; rows keep
    their input order inside each partition, so per-partition processing in
    partition-then-row order is deterministic regardless of which worker
    handles which partition.  Rows with negative codes (:data:`NULL_CODE`)
    belong to no partition and are excluded — join and group keys shard on
    real key identity only.

    Returns ``num_partitions`` int64 arrays of row indices.
    """
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    codes = np.asarray(codes, dtype=np.int64)
    if num_partitions == 1:
        return [np.flatnonzero(codes >= 0).astype(np.int64, copy=False)]
    # Negative codes go to a sentinel bucket past the last real partition
    # (numpy's modulo maps -1 % k to k-1, which would leak NULLs into a
    # real partition).
    valid = codes >= 0
    pids = np.where(valid, codes % num_partitions, num_partitions)
    order = np.argsort(pids, kind="stable")
    sorted_pids = pids[order]
    bounds = np.searchsorted(sorted_pids, np.arange(num_partitions + 1))
    return [
        order[bounds[p] : bounds[p + 1]].astype(np.int64, copy=False)
        for p in range(num_partitions)
    ]


class IncrementalGroupEncoder:
    """Shared group-key dictionary for the streaming two-pass group-by.

    Each batch is factorized locally with :func:`encode_group_keys` (the
    numpy-fast path), then only the batch's **distinct** keys are mapped
    through a persistent insertion-ordered dictionary.  Global codes are
    therefore stable across batches and numbered by first appearance over
    the whole stream — emitting groups in code order reproduces the row
    executor's dict-insertion output order — while the per-batch Python
    work is O(distinct keys in the batch), not O(rows).

    The dictionary keys are the actual key values (a scalar for
    single-column keys, a tuple otherwise), so cross-batch equality follows
    Python ``==``/``hash`` semantics exactly like the row executor's group
    dict (``1 == 1.0``, ``True == 1``).  NaN grouping keys must be rejected
    by the caller before encoding (``np.unique`` collapses NaNs that the
    row path's dict keeps distinct).
    """

    def __init__(self, dtypes: Sequence[DataType | None]) -> None:
        self._dtypes = list(dtypes)
        self._single = len(self._dtypes) == 1
        self._key_map: dict[Any, int] = {}

    @property
    def group_count(self) -> int:
        return len(self._key_map)

    def encode_batch(
        self, columns: Sequence[Sequence[Any]]
    ) -> tuple[np.ndarray, list[int]]:
        """Encode one batch of key columns against the shared dictionary.

        Returns ``(codes, new_first_rows)``: the global int64 group code per
        row, plus the batch row index of the first occurrence of each group
        that is **new** to the stream, in global-code order (the new groups
        occupy codes ``group_count_before .. group_count_after - 1``).
        """
        local = encode_group_keys(columns, self._dtypes)
        key_map = self._key_map
        before = len(key_map)
        translation = np.empty(local.group_count, dtype=np.int64)
        first_rows = local.first_rows.tolist()
        if self._single:
            column = columns[0]
            for g, r in enumerate(first_rows):
                translation[g] = key_map.setdefault(column[r], len(key_map))
        else:
            for g, r in enumerate(first_rows):
                key = tuple(column[r] for column in columns)
                translation[g] = key_map.setdefault(key, len(key_map))
        # Local codes are first-appearance ordered, so new global codes are
        # assigned in increasing order as ``g`` advances — the new-group
        # representatives come out already sorted by global code.
        new_first_rows = [
            r for g, r in enumerate(first_rows) if translation[g] >= before
        ]
        return translation[local.codes], new_first_rows


class JoinKeyTable:
    """Code dictionary fitted on a hash join's build side.

    Construction factorizes the build keys; :attr:`build_codes` holds one
    dense code per build row with :data:`NULL_CODE` at NULL keys (excluded
    from matching).  :meth:`probe` maps probe-side key columns through the
    same dictionary, returning the matching build code or :data:`NULL_CODE`
    for NULL or never-seen keys — so a whole probe batch resolves to build
    rows with array lookups and zero per-row tuple construction.

    Unlike :func:`encode_group_keys`, the multi-column combine here never
    re-densifies mid-stream (probe must replay the build side's exact radix
    arithmetic); when the radix product would overflow int64, the combine
    degrades to a dict over per-column code tuples instead.
    """

    def __init__(
        self,
        build_columns: Sequence[Sequence[Any]],
        build_dtypes: Sequence[DataType | None],
        probe_dtypes: Sequence[DataType | None] | None = None,
    ) -> None:
        probe_dtypes = probe_dtypes if probe_dtypes is not None else build_dtypes
        self._encoders = []
        for col, build_dt, probe_dt in zip(build_columns, build_dtypes, probe_dtypes):
            # The numpy path requires both sides to share the fixed-width
            # dtype; mixed pairs (e.g. INTEGER vs FLOAT) use the dict path,
            # whose Python hashing equates 1 and 1.0 like the row executor.
            dtype = build_dt if build_dt == probe_dt else None
            self._encoders.append(_encode_column(col, dtype))
        self._radices = [max(enc.radix, 1) for enc in self._encoders]
        product = 1
        for radix in self._radices:
            product *= radix
        self._tuple_mode = product >= int(_RADIX_LIMIT)
        per_codes = [enc.codes for enc in self._encoders]
        if self._tuple_mode:
            self._tuple_map: dict[tuple, int] = {}
            self.build_codes = self._tuple_encode(per_codes, fit=True)
            self.group_count = len(self._tuple_map)
        else:
            combined, null_any = self._radix_combine(per_codes)
            valid = ~null_any
            uniq, inverse = np.unique(combined[valid], return_inverse=True)
            codes = np.full(len(combined), NULL_CODE, dtype=np.int64)
            codes[valid] = inverse.astype(np.int64)
            self.build_codes = codes
            self.group_count = len(uniq)
            self._uniques = uniq

    def probe(self, columns: Sequence[Sequence[Any]]) -> np.ndarray:
        """Map probe key columns to build codes (``NULL_CODE`` = no match)."""
        per_codes = [enc.transform(col) for enc, col in zip(self._encoders, columns)]
        if self._tuple_mode:
            return self._tuple_encode(per_codes, fit=False)
        combined, null_any = self._radix_combine(per_codes)
        uniq = self._uniques
        n = len(combined)
        if len(uniq) == 0:
            return np.full(n, NULL_CODE, dtype=np.int64)
        idx = np.searchsorted(uniq, combined)
        clipped = np.minimum(idx, len(uniq) - 1)
        found = (~null_any) & (idx < len(uniq)) & (uniq[clipped] == combined)
        return np.where(found, clipped, NULL_CODE).astype(np.int64)

    def _radix_combine(self, per_codes: list) -> tuple[np.ndarray, np.ndarray]:
        combined = per_codes[0]
        null_any = combined == 0
        for codes, radix in zip(per_codes[1:], self._radices[1:]):
            combined = combined * np.int64(radix) + codes
            null_any = null_any | (codes == 0)
        return combined, null_any

    def _tuple_encode(self, per_codes: list, fit: bool) -> np.ndarray:
        n = len(per_codes[0])
        out = np.full(n, NULL_CODE, dtype=np.int64)
        mapping = self._tuple_map
        rows = zip(*(codes.tolist() for codes in per_codes))
        if fit:
            setdefault = mapping.setdefault
            for i, key in enumerate(rows):
                if 0 not in key:
                    out[i] = setdefault(key, len(mapping))
        else:
            get = mapping.get
            for i, key in enumerate(rows):
                if 0 not in key:
                    out[i] = get(key, NULL_CODE)
        return out
