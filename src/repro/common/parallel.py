"""Intra-query task parallelism: worker credits and per-query task contexts.

The runtime's thread pool parallelizes *across* queries; this module is the
machinery that lets one query parallelize *within* itself without starving
the many-client path.  A :class:`WorkerCredits` counter is installed fleet-
wide by the runtime: a query that wants N workers borrows up to N-1 extra
credits non-blockingly and runs with whatever it got, so under concurrent
load every query degrades toward serial instead of oversubscribing the box.

:class:`TaskContext` is the per-query handle.  With ``workers <= 1`` it runs
everything inline (no pool, no threads), which keeps the single-threaded
path byte-for-byte identical to the pre-parallel executor; with more workers
it lazily spins up a bounded pool and offers an order-preserving streaming
map plus a barrier-style ``run_all``.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.observability.tracing import capture_context, with_context

PARALLELISM_AUTO = "auto"
_AUTO_CAP = 8


def resolve_parallelism(setting: int | str | None, cap: int = _AUTO_CAP) -> int:
    """Resolve a ``parallelism`` knob value to a concrete worker count.

    ``"auto"`` (or None) uses the machine's core count, capped so a large
    host doesn't spawn unbounded threads per query.  Integers are taken
    literally (minimum 1).
    """
    if setting is None or setting == PARALLELISM_AUTO:
        return max(1, min(os.cpu_count() or 1, cap))
    workers = int(setting)
    if workers < 1:
        raise ValueError(f"parallelism must be >= 1 or 'auto', got {setting!r}")
    return workers


class WorkerCredits:
    """Fleet-wide budget of extra intra-query workers.

    The runtime creates one of these sized to its pool and installs it on
    every relational engine.  ``acquire_up_to`` never blocks: a query asking
    for 3 extra workers when only 1 credit remains gets 1 and runs mostly
    serial.  That is the cooperation with admission — intra-query fan-out
    can never hold more threads than the serving pool was sized for.
    """

    def __init__(self, total: int) -> None:
        self._lock = threading.Lock()
        self._available = max(0, int(total))

    def acquire_up_to(self, wanted: int) -> int:
        if wanted <= 0:
            return 0
        with self._lock:
            granted = min(wanted, self._available)
            self._available -= granted
            return granted

    def release(self, count: int) -> None:
        if count <= 0:
            return
        with self._lock:
            self._available += count

    @property
    def available(self) -> int:
        with self._lock:
            return self._available


class TaskContext:
    """Execution context for one query's intra-operator tasks.

    ``workers`` counts the calling thread, so ``workers=1`` means "no extra
    threads": every method runs inline and no pool is ever created.  The
    context must be closed (or used as a context manager) so borrowed
    worker credits flow back to the runtime.
    """

    def __init__(
        self,
        workers: int = 1,
        on_close: Callable[[], None] | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._on_close = on_close
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------ pool
    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="bigdawg-task"
            )
        return self._pool

    # ----------------------------------------------------------------- tasks
    def map_ordered(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[Any]:
        """Apply ``fn`` to ``items``, yielding results in input order.

        Streaming with a bounded in-flight window (2x workers), so an
        operator can pipe morsels through without materializing the whole
        input or output.  Serial contexts map inline.
        """
        if self.workers <= 1:
            for item in items:
                yield fn(item)
            return
        pool = self._executor()
        window = self.workers * 2
        pending: deque = deque()
        # Carry the submitter's trace context into the pool threads so
        # morsel-level spans nest under the query's operator spans.  With
        # tracing off the context is None and tasks run unwrapped.
        ctx = capture_context()
        try:
            for item in items:
                pending.append(pool.submit(with_context, ctx, fn, item))
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()
        finally:
            for future in pending:
                future.cancel()

    def run_all(self, thunks: list[Callable[[], Any]]) -> list[Any]:
        """Run every thunk and barrier; results in thunk order.

        The barrier is what keeps partitioned accumulation deterministic:
        callers dispatch one batch's partition tasks, wait for all of them,
        then move to the next batch, so per-partition state always folds
        batches in the same order as a serial run.
        """
        if self.workers <= 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        pool = self._executor()
        ctx = capture_context()
        futures = [pool.submit(with_context, ctx, thunk) for thunk in thunks]
        return [future.result() for future in futures]

    # --------------------------------------------------------------- lifetime
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._on_close is not None:
            self._on_close()

    def __enter__(self) -> TaskContext:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def partition_count_for(workers: int) -> int:
    """Number of radix partitions for a worker count: next power of two."""
    count = 1
    while count < max(1, workers):
        count <<= 1
    return count
