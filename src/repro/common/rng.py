"""Deterministic random-number helpers.

Every workload generator and synthetic-data module seeds its own
``numpy.random.Generator`` so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Return a seeded numpy Generator (PCG64)."""
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *names: str) -> int:
    """Derive a stable sub-seed from a base seed and a sequence of labels.

    Keeps independent generators (patients vs. waveforms vs. notes) decoupled:
    changing how many values one stream draws does not perturb the others.
    """
    value = base_seed & 0xFFFFFFFF
    for name in names:
        for ch in name:
            value = (value * 1_000_003 + ord(ch)) & 0xFFFFFFFF
    return value
