"""Relational schemas and rows — the lingua franca of the polystore.

Every island ultimately exchanges data as a :class:`Schema` plus an iterable
of :class:`Row` objects (or a :class:`Relation`, which bundles the two).  Each
engine translates its native representation to and from this form at the
shim/CAST boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import SchemaError, TypeMismatchError
from repro.common.types import DataType, coerce, common_type, parse_type


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name; comparisons are case-insensitive but the original case is
        preserved for display.
    dtype:
        Scalar type of the column.
    nullable:
        Whether NULL values are allowed.
    """

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        object.__setattr__(self, "dtype", parse_type(self.dtype))

    def with_name(self, name: str) -> "Column":
        """Return a copy of this column under a different name."""
        return Column(name, self.dtype, self.nullable)

    def matches(self, name: str) -> bool:
        """Case-insensitive name comparison, also matching a qualified suffix."""
        own = self.name.lower()
        other = name.lower()
        if own == other:
            return True
        # Allow "t.col" to match "col" and vice versa.
        return own.split(".")[-1] == other.split(".")[-1]


class Schema:
    """An ordered collection of :class:`Column` objects."""

    def __init__(self, columns: Sequence[Column | tuple[str, Any]]) -> None:
        normalized: list[Column] = []
        for col in columns:
            if isinstance(col, Column):
                normalized.append(col)
            else:
                name, dtype = col[0], col[1]
                nullable = col[2] if len(col) > 2 else True
                normalized.append(Column(name, parse_type(dtype), nullable))
        names = [c.name.lower() for c in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns = tuple(normalized)
        self._index = {c.name.lower(): i for i, c in enumerate(self._columns)}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._columns]

    @property
    def types(self) -> list[DataType]:
        return [c.dtype for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype}" for c in self._columns)
        return f"Schema({cols})"

    def index_of(self, name: str) -> int:
        """Return the ordinal position of a column by (case-insensitive) name."""
        key = name.lower()
        if key in self._index:
            return self._index[key]
        # Fall back to suffix matching for qualified names.
        matches = [i for i, c in enumerate(self._columns) if c.matches(name)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column reference: {name!r}")
        raise SchemaError(f"no such column: {name!r} in {self.names}")

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        try:
            self.index_of(name)
            return True
        except SchemaError:
            return False

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema with only the named columns, in the given order."""
        return Schema([self.column(n) for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed according to ``mapping``."""
        lowered = {k.lower(): v for k, v in mapping.items()}
        return Schema(
            [
                c.with_name(lowered.get(c.name.lower(), c.name))
                for c in self._columns
            ]
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema whose columns are qualified as ``prefix.column``."""
        return Schema([c.with_name(f"{prefix}.{c.name}") for c in self._columns])

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by joins)."""
        return Schema(list(self._columns) + list(other.columns))

    def merge_types(self, other: "Schema") -> "Schema":
        """Return a schema unifying column types positionally (used by UNION/CAST)."""
        if len(self) != len(other):
            raise SchemaError(
                f"cannot merge schemas of different widths: {len(self)} vs {len(other)}"
            )
        merged = []
        for a, b in zip(self._columns, other.columns):
            merged.append(Column(a.name, common_type(a.dtype, b.dtype), a.nullable or b.nullable))
        return Schema(merged)

    def validate_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Coerce a sequence of values to this schema, raising on mismatch."""
        if len(values) != len(self._columns):
            raise SchemaError(
                f"row width {len(values)} does not match schema width {len(self._columns)}"
            )
        out = []
        for value, col in zip(values, self._columns):
            if value is None and not col.nullable:
                raise TypeMismatchError(f"column {col.name!r} is not nullable")
            out.append(coerce(value, col.dtype))
        return tuple(out)


class Row:
    """A single tuple bound to a :class:`Schema`.

    Rows are immutable; engines produce new rows rather than mutating.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Sequence[Any], validate: bool = False) -> None:
        self._schema = schema
        if validate:
            self._values = schema.validate_row(values)
        else:
            self._values = tuple(values)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __getitem__(self, key: int | str) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except SchemaError:
            return default

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Row({pairs})"

    def to_dict(self) -> dict[str, Any]:
        """Return the row as a plain ``{column: value}`` dictionary."""
        return dict(zip(self._schema.names, self._values))

    def concat(self, other: "Row", schema: Schema | None = None) -> "Row":
        """Concatenate two rows (used by joins)."""
        joined_schema = schema if schema is not None else self._schema.concat(other.schema)
        return Row(joined_schema, self._values + other.values)

    def project(self, names: Sequence[str]) -> "Row":
        """Return a row containing only the named columns."""
        schema = self._schema.project(names)
        return Row(schema, tuple(self[n] for n in names))


class Relation:
    """A fully materialized result set: a schema and a list of rows.

    This is the unit of exchange at island boundaries and the return type of
    every island ``execute`` call.
    """

    #: Set (per instance) by the runtime when this result was served from the
    #: stale cache while an engine's circuit breaker was open — possibly out
    #: of date, and the caller opted into receiving it anyway.
    stale = False

    def __init__(self, schema: Schema, rows: Iterable[Row | Sequence[Any]] | None = None) -> None:
        self._schema = schema
        self._rows: list[Row] = []
        if rows is not None:
            for row in rows:
                self.append(row)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> list[Row]:
        return self._rows

    def append(self, row: Row | Sequence[Any]) -> None:
        if isinstance(row, Row):
            if len(row) != len(self._schema):
                raise SchemaError("row width does not match relation schema")
            self._rows.append(Row(self._schema, row.values))
        else:
            self._rows.append(Row(self._schema, self._schema.validate_row(row)))

    def extend(self, rows: Iterable[Row | Sequence[Any]]) -> None:
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self.rows == other.rows

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, {len(self)} rows)"

    def column_values(self, index: int) -> list[Any]:
        """Return one column (by ordinal position) as a list of values.

        Columnar-backed relations override this to hand out their stored
        column without materializing rows, which is what lets the binary
        codec encode an exported chunk with zero per-row conversion.
        """
        return [row.values[index] for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """Return all values of one column as a list."""
        return self.column_values(self._schema.index_of(name))

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return the relation as a list of ``{column: value}`` dictionaries."""
        return [row.to_dict() for row in self.rows]

    def sorted_by(self, *names: str, descending: bool = False) -> "Relation":
        """Return a copy sorted by the given columns (NULLs last)."""
        indexes = [self._schema.index_of(n) for n in names]

        def key(row: Row) -> tuple:
            parts = []
            for i in indexes:
                value = row.values[i]
                parts.append((value is None, value))
            return tuple(parts)

        ordered = sorted(self.rows, key=key, reverse=descending)
        return Relation(self._schema, [r.values for r in ordered])

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[dict[str, Any]]) -> "Relation":
        """Build a relation from dictionaries keyed by column name."""
        relation = cls(schema)
        for record in records:
            relation.append([record.get(name) for name in schema.names])
        return relation

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows as a new relation."""
        return Relation(self._schema, [r.values for r in self.rows[:n]])


def object_view(column: Sequence[Any]) -> "Any":
    """A column as a 1-D object ndarray (reused as-is when it already is one):
    the shared building block for C-speed gathers/compresses over columns
    that must keep their original Python values."""
    import numpy as np

    if isinstance(column, np.ndarray):
        return column
    arr = np.empty(len(column), dtype=object)
    arr[:] = column
    return arr


class ColumnBatch:
    """A bounded batch of tuples stored column-wise.

    This is the unit of exchange inside the vectorized relational executor:
    operators stream ``ColumnBatch`` objects instead of per-tuple
    :class:`Row` objects, so a predicate or projection touches contiguous
    column lists (or numpy views of them) rather than one Python object per
    row.
    """

    __slots__ = ("schema", "columns", "_length")

    def __init__(
        self, schema: Schema, columns: Sequence[Sequence[Any]], length: int | None = None
    ) -> None:
        self.schema = schema
        # Columns are read-only sequences (lists, tuples or 1-D object
        # ndarrays); operators build new columns rather than mutating.
        self.columns = list(columns)
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        self._length = length

    @classmethod
    def from_value_rows(cls, schema: Schema, value_rows: Sequence[Sequence[Any]]) -> "ColumnBatch":
        """Transpose a list of value tuples into a columnar batch.

        Columns are stored as the tuples ``zip`` produces — batch columns
        are read-only by convention, so skipping the per-column list copy
        keeps the transpose single-pass.
        """
        count = len(value_rows)
        if count == 0:
            return cls(schema, [[] for _ in schema], 0)
        return cls(schema, list(zip(*value_rows)), count)

    def __len__(self) -> int:
        return self._length

    def value_rows(self) -> Iterator[tuple[Any, ...]]:
        """Yield the batch's tuples row-wise (the batch/tuple boundary)."""
        if not self.columns:
            return (() for _ in range(self._length))
        return zip(*self.columns)

    def with_schema(self, schema: Schema) -> "ColumnBatch":
        """The same columns under a different (equally wide) schema."""
        return ColumnBatch(schema, self.columns, self._length)

    def compress(self, mask: Sequence[bool]) -> "ColumnBatch":
        """Keep only the rows where ``mask`` is true.

        A numpy boolean mask (the filter kernels' output) compresses each
        column with a C-speed boolean gather over an object view; list
        masks (the row-closure fallback) use the Python path.
        """
        import numpy as np

        if isinstance(mask, np.ndarray):
            kept = [object_view(column)[mask] for column in self.columns]
            length = len(kept[0]) if kept else int(np.count_nonzero(mask))
            return ColumnBatch(self.schema, kept, length)
        kept = [
            [value for value, keep in zip(column, mask) if keep]
            for column in self.columns
        ]
        length = len(kept[0]) if kept else sum(1 for keep in mask if keep)
        return ColumnBatch(self.schema, kept, length)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by position (used by the hash join's build side)."""
        return ColumnBatch(
            self.schema,
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    def gather(self, indices: Any) -> "ColumnBatch":
        """Vectorized row gather: ``np.take`` over object views of each column.

        ``indices`` is a numpy integer array (or any sequence accepted by
        ``np.take``).  Unlike :meth:`take`, which loops in Python, this is a
        C-speed gather — the probe side of the batched hash join calls it
        once per batch instead of once per row.
        """
        import numpy as np

        count = int(len(indices))
        out = [
            np.take(object_view(column), indices).tolist() for column in self.columns
        ]
        return ColumnBatch(self.schema, out, count)

    @classmethod
    def concat(cls, schema: Schema, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Vertically concatenate batches into one (used to pin a join's build
        side or a group-by's input in memory as columns, never as rows)."""
        if not batches:
            return cls(schema, [[] for _ in schema], 0)
        width = len(batches[0].columns)
        columns: list[list[Any]] = [[] for _ in range(width)]
        total = 0
        for batch in batches:
            total += len(batch)
            for slot, column in zip(columns, batch.columns):
                slot.extend(column)
        return cls(schema, columns, total)

    @classmethod
    def nulls(cls, schema: Schema, length: int) -> "ColumnBatch":
        """An all-NULL batch: the padding side of an outer join's unmatched rows."""
        return cls(schema, [[None] * length for _ in schema], length)

    def to_relation(self) -> "ColumnarRelation":
        return ColumnarRelation(self.schema, self.columns, self._length)


class ColumnarRelation(Relation):
    """A :class:`Relation` backed by columns; rows materialize lazily.

    Exported chunks from a columnar scan arrive as this type: a consumer
    that only needs columns (the binary codec's columnar layout) reads them
    via :meth:`column_values` without a single :class:`Row` ever being
    constructed, while row-oriented consumers transparently materialize on
    first access.
    """

    def __init__(self, schema: Schema, columns: Sequence[list[Any]], length: int | None = None) -> None:
        super().__init__(schema)
        self._columns: list[list[Any]] = list(columns)
        if length is None:
            length = len(self._columns[0]) if self._columns else 0
        self._length = length
        self._materialized = False

    @classmethod
    def from_value_rows(cls, schema: Schema, value_rows: Sequence[Sequence[Any]]) -> "ColumnarRelation":
        count = len(value_rows)
        if count == 0:
            return cls(schema, [[] for _ in schema], 0)
        return cls(schema, [list(col) for col in zip(*value_rows)], count)

    @property
    def rows(self) -> list[Row]:
        if not self._materialized:
            schema = self._schema
            if self._columns:
                self._rows.extend(Row(schema, values) for values in zip(*self._columns))
            self._materialized = True
        return self._rows

    def __len__(self) -> int:
        if self._materialized:
            return len(self._rows)
        return self._length

    def column_values(self, index: int) -> list[Any]:
        if self._materialized:
            return super().column_values(index)
        return self._columns[index]

    def append(self, row: Row | Sequence[Any]) -> None:
        self.rows  # materialize so columns never go stale
        super().append(row)

    def extend(self, rows: Iterable[Row | Sequence[Any]]) -> None:
        self.rows
        super().extend(rows)


@dataclass
class TableDefinition:
    """A named table plus optional constraints, as stored in a catalog."""

    name: str
    schema: Schema
    primary_key: tuple[str, ...] = ()
    engine: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key_col in self.primary_key:
            if not self.schema.has_column(key_col):
                raise SchemaError(
                    f"primary key column {key_col!r} not present in schema for {self.name!r}"
                )
