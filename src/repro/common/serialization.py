"""Serialization codecs used by the CAST operator.

The paper contrasts naive *file-based import/export* between engines with a
*binary, parallel* access path (Section 2.1).  We model both:

* :class:`CsvCodec` — the file-based path: every value is rendered to text,
  written line by line, then re-parsed and re-coerced on the receiving side.
* :class:`BinaryCodec` — the direct path: values are packed with ``struct``
  into a compact binary frame that the receiver can decode without text
  parsing, and numeric columns travel as contiguous buffers.

Both codecs round-trip a :class:`~repro.common.schema.Relation`, so the CAST
benchmarks compare like for like.
"""

from __future__ import annotations

import io
import struct
from datetime import datetime, timezone
from typing import Any

from repro.common.errors import CastError
from repro.common.schema import Relation, Schema
from repro.common.types import DataType


class CsvCodec:
    """Text (CSV-like) encoding of a relation, modelling file-based export/import."""

    DELIMITER = ","
    NULL_TOKEN = r"\N"

    def encode(self, relation: Relation) -> bytes:
        """Render a relation to delimited text, one row per line."""
        buffer = io.StringIO()
        buffer.write(self.DELIMITER.join(relation.schema.names))
        buffer.write("\n")
        for row in relation:
            fields = []
            for value in row.values:
                fields.append(self._render(value))
            buffer.write(self.DELIMITER.join(fields))
            buffer.write("\n")
        return buffer.getvalue().encode("utf-8")

    def decode(self, payload: bytes, schema: Schema) -> Relation:
        """Parse delimited text back into a relation, coercing each field.

        Quoted fields may contain the delimiter, doubled quotes and embedded
        newlines, exactly as they are rendered by :meth:`encode`.
        """
        text = payload.decode("utf-8")
        records = self._split_records(text)
        if not records:
            return Relation(schema)
        relation = Relation(schema)
        for fields in records[1:]:
            if fields == [""]:
                continue
            if len(fields) != len(schema):
                raise CastError(
                    f"CSV row has {len(fields)} fields but schema expects {len(schema)}"
                )
            values = [self._parse(field, col.dtype) for field, col in zip(fields, schema)]
            relation.append(values)
        return relation

    def _split_records(self, text: str) -> list[list[str]]:
        """Split the full payload into records, honouring quoted newlines."""
        records: list[list[str]] = []
        fields: list[str] = []
        current = io.StringIO()
        in_quotes = False
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if in_quotes:
                if ch == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        current.write('"')
                        i += 1
                    else:
                        in_quotes = False
                else:
                    current.write(ch)
            elif ch == '"':
                in_quotes = True
            elif ch == self.DELIMITER:
                fields.append(current.getvalue())
                current = io.StringIO()
            elif ch == "\n":
                fields.append(current.getvalue())
                current = io.StringIO()
                records.append(fields)
                fields = []
            elif ch != "\r":
                current.write(ch)
            i += 1
        trailing = current.getvalue()
        if trailing or fields:
            fields.append(trailing)
            records.append(fields)
        return records

    def _render(self, value: Any) -> str:
        if value is None:
            return self.NULL_TOKEN
        if isinstance(value, datetime):
            return value.isoformat()
        if isinstance(value, str):
            if self.DELIMITER in value or '"' in value or "\n" in value:
                return '"' + value.replace('"', '""') + '"'
            return value
        return str(value)

    def _split(self, line: str) -> list[str]:
        fields: list[str] = []
        current = io.StringIO()
        in_quotes = False
        i = 0
        while i < len(line):
            ch = line[i]
            if in_quotes:
                if ch == '"':
                    if i + 1 < len(line) and line[i + 1] == '"':
                        current.write('"')
                        i += 1
                    else:
                        in_quotes = False
                else:
                    current.write(ch)
            else:
                if ch == '"':
                    in_quotes = True
                elif ch == self.DELIMITER:
                    fields.append(current.getvalue())
                    current = io.StringIO()
                else:
                    current.write(ch)
            i += 1
        fields.append(current.getvalue())
        return fields

    def _parse(self, field: str, dtype: DataType) -> Any:
        if field == self.NULL_TOKEN:
            return None
        try:
            if dtype is DataType.INTEGER:
                return int(field)
            if dtype is DataType.FLOAT:
                return float(field)
            if dtype is DataType.BOOLEAN:
                return field.strip().lower() in ("true", "t", "1")
            if dtype is DataType.TIMESTAMP:
                return datetime.fromisoformat(field)
            return field
        except ValueError as exc:
            raise CastError(f"cannot parse {field!r} as {dtype}") from exc


class BinaryCodec:
    """Compact binary encoding of a relation, modelling a direct binary CAST path.

    Frame layout::

        [u32 row_count][u32 column_count]
        for each column: [u8 type_tag]
        then row-major packed values:
            null flag (u8) then, when non-null,
            INTEGER  -> i64
            FLOAT    -> f64
            BOOLEAN  -> u8
            TIMESTAMP-> f64 (epoch seconds, UTC)
            TEXT     -> u32 length + utf-8 bytes
    """

    _TYPE_TAGS = {
        DataType.INTEGER: 1,
        DataType.FLOAT: 2,
        DataType.TEXT: 3,
        DataType.BOOLEAN: 4,
        DataType.TIMESTAMP: 5,
        DataType.NULL: 6,
    }
    _TAG_TYPES = {v: k for k, v in _TYPE_TAGS.items()}

    def encode(self, relation: Relation) -> bytes:
        schema = relation.schema
        out = io.BytesIO()
        out.write(struct.pack("<II", len(relation), len(schema)))
        for col in schema:
            out.write(struct.pack("<B", self._TYPE_TAGS[col.dtype]))
        for row in relation:
            for value, col in zip(row.values, schema):
                self._write_value(out, value, col.dtype)
        return out.getvalue()

    def decode(self, payload: bytes, schema: Schema) -> Relation:
        view = memoryview(payload)
        offset = 0
        row_count, col_count = struct.unpack_from("<II", view, offset)
        offset += 8
        if col_count != len(schema):
            raise CastError(
                f"binary frame has {col_count} columns but schema expects {len(schema)}"
            )
        tags = []
        for _ in range(col_count):
            (tag,) = struct.unpack_from("<B", view, offset)
            offset += 1
            tags.append(self._TAG_TYPES[tag])
        relation = Relation(schema)
        for _ in range(row_count):
            values = []
            for dtype in tags:
                value, offset = self._read_value(view, offset, dtype)
                values.append(value)
            relation.append(values)
        return relation

    def _write_value(self, out: io.BytesIO, value: Any, dtype: DataType) -> None:
        if value is None:
            out.write(b"\x01")
            return
        out.write(b"\x00")
        if dtype is DataType.INTEGER:
            out.write(struct.pack("<q", int(value)))
        elif dtype is DataType.FLOAT:
            out.write(struct.pack("<d", float(value)))
        elif dtype is DataType.BOOLEAN:
            out.write(struct.pack("<B", 1 if value else 0))
        elif dtype is DataType.TIMESTAMP:
            if isinstance(value, datetime):
                stamp = value.timestamp()
            else:
                stamp = float(value)
            out.write(struct.pack("<d", stamp))
        elif dtype in (DataType.TEXT, DataType.NULL):
            encoded = str(value).encode("utf-8")
            out.write(struct.pack("<I", len(encoded)))
            out.write(encoded)
        else:  # pragma: no cover - exhaustive over DataType
            raise CastError(f"unsupported type for binary encoding: {dtype}")

    def _read_value(self, view: memoryview, offset: int, dtype: DataType) -> tuple[Any, int]:
        (null_flag,) = struct.unpack_from("<B", view, offset)
        offset += 1
        if null_flag:
            return None, offset
        if dtype is DataType.INTEGER:
            (value,) = struct.unpack_from("<q", view, offset)
            return value, offset + 8
        if dtype is DataType.FLOAT:
            (value,) = struct.unpack_from("<d", view, offset)
            return value, offset + 8
        if dtype is DataType.BOOLEAN:
            (value,) = struct.unpack_from("<B", view, offset)
            return bool(value), offset + 1
        if dtype is DataType.TIMESTAMP:
            (stamp,) = struct.unpack_from("<d", view, offset)
            return datetime.fromtimestamp(stamp, tz=timezone.utc), offset + 8
        if dtype in (DataType.TEXT, DataType.NULL):
            (length,) = struct.unpack_from("<I", view, offset)
            offset += 4
            raw = bytes(view[offset : offset + length])
            return raw.decode("utf-8"), offset + length
        raise CastError(f"unsupported type for binary decoding: {dtype}")
