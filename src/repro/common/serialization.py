"""Serialization codecs used by the CAST operator.

The paper contrasts naive *file-based import/export* between engines with a
*binary, parallel* access path (Section 2.1).  We model both:

* :class:`CsvCodec` — the file-based path: every value is rendered to text,
  written line by line, then re-parsed and re-coerced on the receiving side.
* :class:`BinaryCodec` — the direct path: values are packed with ``struct``
  into a compact binary frame that the receiver can decode without text
  parsing.  All-numeric relations are packed *columnar* — one null-flag
  vector plus one contiguous value buffer per column — so a frame of
  waveform samples is a handful of bulk packs instead of a per-value loop.

Both codecs also support the chunked CAST pipeline through
``encode_chunks`` / ``decode_chunks``: each chunk becomes one independent,
self-describing frame, so a streaming CAST never holds more than a single
chunk's payload in memory.

Timestamps are normalized to UTC on encode: naive datetimes are interpreted
as UTC wall-clock times (not local time), so a value decodes to the same
instant regardless of the host timezone.

Both codecs round-trip a :class:`~repro.common.schema.Relation`, so the CAST
benchmarks compare like for like.
"""

from __future__ import annotations

import io
import struct
from datetime import datetime, timezone
from typing import Any, Iterable, Iterator

from repro.common.errors import CastError
from repro.common.schema import Relation, Row, Schema
from repro.common.types import DataType


def _timestamp_to_epoch(value: Any) -> float:
    """Convert a timestamp value to UTC epoch seconds.

    Naive datetimes are treated as UTC wall-clock times; interpreting them in
    local time would make the decoded instant depend on the host timezone.
    """
    if isinstance(value, datetime):
        if value.tzinfo is None:
            value = value.replace(tzinfo=timezone.utc)
        return value.timestamp()
    return float(value)


class ChunkedCodecMixin:
    """Frame-per-chunk streaming on top of a codec's ``encode``/``decode``.

    Each chunk becomes one independent, self-describing payload (CSV frames
    carry their own header line; binary frames their own type tags), so any
    frame decodes on its own and a consumer never holds more than one frame.
    """

    def encode_chunks(self, chunks: Iterable[Relation]) -> Iterator[bytes]:
        """Encode a stream of chunks as independent payloads, one at a time."""
        for chunk in chunks:
            yield self.encode(chunk)

    def decode_chunks(self, payloads: Iterable[bytes], schema: Schema) -> Iterator[Relation]:
        """Decode a stream of independent payloads back into relation chunks."""
        for payload in payloads:
            yield self.decode(payload, schema)


class CsvCodec(ChunkedCodecMixin):
    """Text (CSV-like) encoding of a relation, modelling file-based export/import."""

    DELIMITER = ","
    NULL_TOKEN = r"\N"

    # Kept in sync with the boolean tokens repro.common.types.coerce accepts,
    # so a value that imports through validate_row also parses from CSV.
    _TRUE_TOKENS = frozenset(("true", "t", "1", "yes"))
    _FALSE_TOKENS = frozenset(("false", "f", "0", "no"))

    def encode(self, relation: Relation) -> bytes:
        """Render a relation to delimited text, one row per line."""
        buffer = io.StringIO()
        buffer.write(self.DELIMITER.join(relation.schema.names))
        buffer.write("\n")
        for row in relation:
            fields = []
            for value in row.values:
                fields.append(self._render(value))
            buffer.write(self.DELIMITER.join(fields))
            buffer.write("\n")
        return buffer.getvalue().encode("utf-8")

    def decode(self, payload: bytes, schema: Schema) -> Relation:
        """Parse delimited text back into a relation, coercing each field.

        Quoted fields may contain the delimiter, doubled quotes and embedded
        newlines, exactly as they are rendered by :meth:`encode`.
        """
        text = payload.decode("utf-8")
        records = self._split_records(text)
        if not records:
            return Relation(schema)
        relation = Relation(schema)
        single_text_column = len(schema) == 1 and schema.columns[0].dtype is DataType.TEXT
        for fields in records[1:]:
            if fields == [""] and not single_text_column:
                # A blank line cannot be a row — except for a single-TEXT-column
                # schema, where it is a legitimate empty-string value.
                continue
            if len(fields) != len(schema):
                raise CastError(
                    f"CSV row has {len(fields)} fields but schema expects {len(schema)}"
                )
            values = [self._parse(field, col.dtype) for field, col in zip(fields, schema)]
            relation.append(values)
        return relation

    def _split_records(self, text: str) -> list[list[str]]:
        """Split the full payload into records, honouring quoted newlines."""
        records: list[list[str]] = []
        fields: list[str] = []
        current = io.StringIO()
        in_quotes = False
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            if in_quotes:
                if ch == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        current.write('"')
                        i += 1
                    else:
                        in_quotes = False
                else:
                    current.write(ch)
            elif ch == '"':
                in_quotes = True
            elif ch == self.DELIMITER:
                fields.append(current.getvalue())
                current = io.StringIO()
            elif ch == "\n":
                fields.append(current.getvalue())
                current = io.StringIO()
                records.append(fields)
                fields = []
            elif ch != "\r":
                current.write(ch)
            i += 1
        trailing = current.getvalue()
        if trailing or fields:
            fields.append(trailing)
            records.append(fields)
        return records

    def _render(self, value: Any) -> str:
        if value is None:
            return self.NULL_TOKEN
        if isinstance(value, datetime):
            return value.isoformat()
        if isinstance(value, str):
            if self.DELIMITER in value or '"' in value or "\n" in value:
                return '"' + value.replace('"', '""') + '"'
            return value
        return str(value)

    def _split(self, line: str) -> list[str]:
        fields: list[str] = []
        current = io.StringIO()
        in_quotes = False
        i = 0
        while i < len(line):
            ch = line[i]
            if in_quotes:
                if ch == '"':
                    if i + 1 < len(line) and line[i + 1] == '"':
                        current.write('"')
                        i += 1
                    else:
                        in_quotes = False
                else:
                    current.write(ch)
            else:
                if ch == '"':
                    in_quotes = True
                elif ch == self.DELIMITER:
                    fields.append(current.getvalue())
                    current = io.StringIO()
                else:
                    current.write(ch)
            i += 1
        fields.append(current.getvalue())
        return fields

    def _parse(self, field: str, dtype: DataType) -> Any:
        if field == self.NULL_TOKEN:
            return None
        try:
            if dtype is DataType.INTEGER:
                return int(field)
            if dtype is DataType.FLOAT:
                return float(field)
            if dtype is DataType.BOOLEAN:
                token = field.strip().lower()
                if token in self._TRUE_TOKENS:
                    return True
                if token in self._FALSE_TOKENS:
                    return False
                raise CastError(f"cannot parse {field!r} as {dtype}")
            if dtype is DataType.TIMESTAMP:
                parsed = datetime.fromisoformat(field)
                if parsed.tzinfo is None:
                    parsed = parsed.replace(tzinfo=timezone.utc)
                return parsed
            return field
        except ValueError as exc:
            raise CastError(f"cannot parse {field!r} as {dtype}") from exc


class BinaryCodec(ChunkedCodecMixin):
    """Compact binary encoding of a relation, modelling a direct binary CAST path.

    Frame layout::

        [u8 layout][u32 row_count][u32 column_count]
        for each column: [u8 type_tag]

    followed by, for ``layout == LAYOUT_ROW_MAJOR``, row-major packed values::

        null flag (u8) then, when non-null,
        INTEGER  -> i64
        FLOAT    -> f64
        BOOLEAN  -> u8
        TIMESTAMP-> f64 (epoch seconds, UTC; naive datetimes treated as UTC)
        TEXT     -> u32 length + utf-8 bytes

    or, for ``layout == LAYOUT_COLUMNAR`` (chosen automatically when every
    column is numeric), one column at a time::

        [u8 null flag x row_count]
        then the non-null values packed contiguously with one bulk
        ``struct.pack`` (i64 / f64 / u8 as above)

    The columnar layout is what makes large numeric CASTs cheap: encoding and
    decoding are a few bulk packs per column instead of a per-value loop.
    """

    LAYOUT_ROW_MAJOR = 0
    LAYOUT_COLUMNAR = 1

    _TYPE_TAGS = {
        DataType.INTEGER: 1,
        DataType.FLOAT: 2,
        DataType.TEXT: 3,
        DataType.BOOLEAN: 4,
        DataType.TIMESTAMP: 5,
        DataType.NULL: 6,
    }
    _TAG_TYPES = {v: k for k, v in _TYPE_TAGS.items()}

    #: struct format character for each columnar-packable type.
    _COLUMNAR_FORMATS = {
        DataType.INTEGER: "q",
        DataType.FLOAT: "d",
        DataType.BOOLEAN: "B",
        DataType.TIMESTAMP: "d",
    }

    def __init__(self, columnar: bool = True) -> None:
        #: When True (the default) all-numeric relations are packed columnar;
        #: False forces the row-major layout.  Relations with TEXT columns
        #: always use row-major regardless.
        self.columnar = columnar

    def encode(self, relation: Relation) -> bytes:
        schema = relation.schema
        use_columnar = self.columnar and all(
            c.dtype in self._COLUMNAR_FORMATS for c in schema
        )
        layout = self.LAYOUT_COLUMNAR if use_columnar else self.LAYOUT_ROW_MAJOR
        out = io.BytesIO()
        out.write(struct.pack("<BII", layout, len(relation), len(schema)))
        for col in schema:
            out.write(struct.pack("<B", self._TYPE_TAGS[col.dtype]))
        if layout == self.LAYOUT_COLUMNAR:
            self._encode_columnar(out, relation)
        else:
            for row in relation:
                for value, col in zip(row.values, schema):
                    self._write_value(out, value, col.dtype)
        return out.getvalue()

    def decode(self, payload: bytes, schema: Schema) -> Relation:
        view = memoryview(payload)
        offset = 0
        layout, row_count, col_count = struct.unpack_from("<BII", view, offset)
        offset += 9
        if col_count != len(schema):
            raise CastError(
                f"binary frame has {col_count} columns but schema expects {len(schema)}"
            )
        tags = []
        for _ in range(col_count):
            (tag,) = struct.unpack_from("<B", view, offset)
            offset += 1
            tags.append(self._TAG_TYPES[tag])
        if layout == self.LAYOUT_COLUMNAR:
            return self._decode_columnar(view, offset, row_count, tags, schema)
        if layout != self.LAYOUT_ROW_MAJOR:
            raise CastError(f"unknown binary frame layout {layout}")
        relation = Relation(schema)
        for _ in range(row_count):
            values = []
            for dtype in tags:
                value, offset = self._read_value(view, offset, dtype)
                values.append(value)
            relation.append(values)
        return relation

    # ------------------------------------------------------------ columnar path
    def _encode_columnar(self, out: io.BytesIO, relation: Relation) -> None:
        for index, col in enumerate(relation.schema):
            # column_values hands back the stored column directly when the
            # relation is columnar-backed (e.g. a chunk streamed out of the
            # relational engine's batch scan), so an all-numeric CAST never
            # converts through per-row objects.
            column = relation.column_values(index)
            out.write(bytes(1 if value is None else 0 for value in column))
            if col.dtype is DataType.TIMESTAMP:
                packed = [_timestamp_to_epoch(v) for v in column if v is not None]
            elif col.dtype is DataType.BOOLEAN:
                packed = [1 if v else 0 for v in column if v is not None]
            elif col.dtype is DataType.INTEGER:
                packed = [int(v) for v in column if v is not None]
            else:
                packed = [float(v) for v in column if v is not None]
            fmt = self._COLUMNAR_FORMATS[col.dtype]
            out.write(struct.pack(f"<{len(packed)}{fmt}", *packed))

    def _decode_columnar(self, view: memoryview, offset: int, row_count: int,
                         tags: list[DataType], schema: Schema) -> Relation:
        columns: list[list[Any]] = []
        for dtype in tags:
            fmt = self._COLUMNAR_FORMATS.get(dtype)
            if fmt is None:
                raise CastError(f"columnar frames do not support type {dtype}")
            flags = bytes(view[offset : offset + row_count])
            offset += row_count
            non_null = row_count - sum(flags)
            values = struct.unpack_from(f"<{non_null}{fmt}", view, offset)
            offset += struct.calcsize(f"<{non_null}{fmt}")
            if dtype is DataType.TIMESTAMP:
                values = [datetime.fromtimestamp(v, tz=timezone.utc) for v in values]
            elif dtype is DataType.BOOLEAN:
                values = [bool(v) for v in values]
            column: list[Any] = []
            it = iter(values)
            for flag in flags:
                column.append(None if flag else next(it))
            columns.append(column)
        relation = Relation(schema)
        if tags == schema.types:
            # The unpacked values already have the exact Python types the
            # schema asks for; skip per-value re-validation so the decode
            # stays a bulk operation.
            rows = relation.rows
            for values in zip(*columns) if columns else ():
                rows.append(Row(schema, values))
        else:
            for values in zip(*columns) if columns else ():
                relation.append(list(values))
        return relation

    # ----------------------------------------------------------- row-major path
    def _write_value(self, out: io.BytesIO, value: Any, dtype: DataType) -> None:
        if value is None:
            out.write(b"\x01")
            return
        out.write(b"\x00")
        if dtype is DataType.INTEGER:
            out.write(struct.pack("<q", int(value)))
        elif dtype is DataType.FLOAT:
            out.write(struct.pack("<d", float(value)))
        elif dtype is DataType.BOOLEAN:
            out.write(struct.pack("<B", 1 if value else 0))
        elif dtype is DataType.TIMESTAMP:
            out.write(struct.pack("<d", _timestamp_to_epoch(value)))
        elif dtype in (DataType.TEXT, DataType.NULL):
            encoded = str(value).encode("utf-8")
            out.write(struct.pack("<I", len(encoded)))
            out.write(encoded)
        else:  # pragma: no cover - exhaustive over DataType
            raise CastError(f"unsupported type for binary encoding: {dtype}")

    def _read_value(self, view: memoryview, offset: int, dtype: DataType) -> tuple[Any, int]:
        (null_flag,) = struct.unpack_from("<B", view, offset)
        offset += 1
        if null_flag:
            return None, offset
        if dtype is DataType.INTEGER:
            (value,) = struct.unpack_from("<q", view, offset)
            return value, offset + 8
        if dtype is DataType.FLOAT:
            (value,) = struct.unpack_from("<d", view, offset)
            return value, offset + 8
        if dtype is DataType.BOOLEAN:
            (value,) = struct.unpack_from("<B", view, offset)
            return bool(value), offset + 1
        if dtype is DataType.TIMESTAMP:
            (stamp,) = struct.unpack_from("<d", view, offset)
            return datetime.fromtimestamp(stamp, tz=timezone.utc), offset + 8
        if dtype in (DataType.TEXT, DataType.NULL):
            (length,) = struct.unpack_from("<I", view, offset)
            offset += 4
            raw = bytes(view[offset : offset + length])
            return raw.decode("utf-8"), offset + length
        raise CastError(f"unsupported type for binary decoding: {dtype}")
