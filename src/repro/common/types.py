"""Data types shared by every island and engine.

The polystore federates engines with different data models, but the scalar
types flowing between them are a small common set.  Each engine maps its own
native representation onto these types when data crosses an island boundary
(a ``CAST``), which is what makes cross-engine movement well defined.
"""

from __future__ import annotations

import enum
import math
from datetime import datetime, timezone
from typing import Any

from repro.common.errors import TypeMismatchError


class DataType(enum.Enum):
    """Scalar types understood by every island."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_TYPE_ALIASES = {
    "int": DataType.INTEGER,
    "integer": DataType.INTEGER,
    "int64": DataType.INTEGER,
    "bigint": DataType.INTEGER,
    "smallint": DataType.INTEGER,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "real": DataType.FLOAT,
    "numeric": DataType.FLOAT,
    "decimal": DataType.FLOAT,
    "text": DataType.TEXT,
    "string": DataType.TEXT,
    "varchar": DataType.TEXT,
    "char": DataType.TEXT,
    "bool": DataType.BOOLEAN,
    "boolean": DataType.BOOLEAN,
    "timestamp": DataType.TIMESTAMP,
    "datetime": DataType.TIMESTAMP,
    "null": DataType.NULL,
}


def parse_type(name: str | DataType) -> DataType:
    """Resolve a type name (possibly an engine-specific alias) to a :class:`DataType`."""
    if isinstance(name, DataType):
        return name
    key = name.strip().lower()
    # Strip parameterised forms such as varchar(32).
    if "(" in key:
        key = key[: key.index("(")].strip()
    if key not in _TYPE_ALIASES:
        raise TypeMismatchError(f"unknown type name: {name!r}")
    return _TYPE_ALIASES[key]


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value."""
    if value is None:
        return DataType.NULL
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, datetime):
        return DataType.TIMESTAMP
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeMismatchError(f"cannot infer a data type for {value!r}")


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` to the Python representation of ``dtype``.

    ``None`` is always allowed (SQL-style nullable columns).  Raises
    :class:`TypeMismatchError` when a lossless conversion is impossible.
    """
    if value is None:
        return None
    try:
        if dtype is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float):
                if not value.is_integer():
                    raise TypeMismatchError(f"cannot losslessly coerce {value!r} to integer")
                return int(value)
            return int(value)
        if dtype is DataType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            result = float(value)
            if math.isnan(result):
                return result
            return result
        if dtype is DataType.TEXT:
            if isinstance(value, datetime):
                return value.isoformat()
            return str(value)
        if dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
            raise TypeMismatchError(f"cannot coerce {value!r} to boolean")
        if dtype is DataType.TIMESTAMP:
            if isinstance(value, datetime):
                return value
            if isinstance(value, (int, float)):
                return datetime.fromtimestamp(float(value), tz=timezone.utc)
            if isinstance(value, str):
                return datetime.fromisoformat(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to timestamp")
        if dtype is DataType.NULL:
            return None
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype}") from exc
    raise TypeMismatchError(f"unhandled data type {dtype!r}")


def is_numeric(dtype: DataType) -> bool:
    """Return True if the type participates in arithmetic."""
    return dtype in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN)


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the type that can represent values of both argument types.

    Used when unioning columns from different engines during a CAST and when
    typing arithmetic expressions.
    """
    if left == right:
        return left
    if DataType.NULL in (left, right):
        return right if left is DataType.NULL else left
    numeric_order = {DataType.BOOLEAN: 0, DataType.INTEGER: 1, DataType.FLOAT: 2}
    if left in numeric_order and right in numeric_order:
        return left if numeric_order[left] >= numeric_order[right] else right
    if DataType.TEXT in (left, right):
        return DataType.TEXT
    raise TypeMismatchError(f"no common type for {left} and {right}")
