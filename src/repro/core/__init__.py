"""The BigDAWG polystore middleware: catalog, islands, shims, SCOPE/CAST, monitor."""

from repro.core.bigdawg import BigDawg
from repro.core.cast import CastMigrator, CastRecord
from repro.core.catalog import BigDawgCatalog, ObjectLocation
from repro.core.monitor import ExecutionMonitor, MigrationAdvisor, MigrationRecommendation
from repro.core.semantics import ProbeCase, ProbeResult, SemanticProber

__all__ = [
    "BigDawg",
    "BigDawgCatalog",
    "CastMigrator",
    "CastRecord",
    "ExecutionMonitor",
    "MigrationAdvisor",
    "MigrationRecommendation",
    "ObjectLocation",
    "ProbeCase",
    "ProbeResult",
    "SemanticProber",
]
