"""The BigDAWG polystore facade.

This is the public entry point of the reproduction: it wires the catalog, the
islands, the CAST migrator, the cross-island planner and the monitor into one
object, mirroring Figure 1 of the paper.

Typical usage::

    from repro import BigDawg
    from repro.engines.relational import RelationalEngine
    from repro.engines.array import ArrayEngine

    bd = BigDawg()
    bd.add_engine(RelationalEngine("postgres"), islands=["relational", "myria", "d4m"])
    bd.add_engine(ArrayEngine("scidb"), islands=["array", "relational", "myria", "d4m"])

    bd.execute("RELATIONAL(SELECT count(*) FROM patients WHERE age > 65)")
    bd.execute("ARRAY(aggregate(waveform_history, avg(value)))")
    bd.execute("RELATIONAL(SELECT * FROM CAST(waveform_history, relational) WHERE value > 5)")
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.common.errors import CatalogError, ObjectNotFoundError, PlanningError
from repro.common.schema import Relation
from repro.core.cast import CastMigrator, CastRecord
from repro.core.catalog import BigDawgCatalog
from repro.core.islands.array import ArrayIsland
from repro.core.islands.base import Island
from repro.core.islands.d4m import D4MIsland
from repro.core.islands.degenerate import DegenerateIsland
from repro.core.islands.myria import MyriaIsland
from repro.core.islands.relational import RelationalIsland
from repro.core.islands.text import TextIsland
from repro.core.monitor import ExecutionMonitor, MigrationAdvisor
from repro.core.query.language import parse_query
from repro.core.query.planner import CrossIslandPlanner, QueryPlan
from repro.engines.base import Engine
from repro.engines.relational.engine import RelationalEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.scheduler import PolystoreRuntime


#: Default island memberships per engine kind, matching the paper's Figure 1.
DEFAULT_ISLANDS_BY_KIND = {
    "relational": ["relational", "myria", "d4m"],
    "array": ["array", "relational", "myria", "d4m"],
    "keyvalue": ["text", "relational", "d4m"],
    "streaming": ["relational"],
    "tiledb": ["array", "relational"],
    "tupleware": ["relational"],
}


class BigDawg:
    """The polystore: engines + islands + SCOPE/CAST query processing."""

    def __init__(self) -> None:
        self.catalog = BigDawgCatalog()
        self.migrator = CastMigrator(self.catalog)
        self.monitor = ExecutionMonitor()
        self.advisor = MigrationAdvisor(self.catalog, self.monitor, self.migrator)
        self._islands: dict[str, Island] = {
            "relational": RelationalIsland(self.catalog),
            "array": ArrayIsland(self.catalog),
            "text": TextIsland(self.catalog),
            "d4m": D4MIsland(self.catalog),
            "myria": MyriaIsland(self.catalog),
        }
        self._degenerate: dict[str, DegenerateIsland] = {}
        self._planner = CrossIslandPlanner(self)
        self._temp_engine: RelationalEngine | None = None
        self._temp_engine_lock = threading.Lock()
        self._runtime: "PolystoreRuntime | None" = None
        self._runtime_lock = threading.Lock()

    @property
    def planner(self) -> CrossIslandPlanner:
        """The cross-island planner (the runtime drives it step by step)."""
        return self._planner

    def runtime(self, **config: Any) -> "PolystoreRuntime":
        """The concurrent serving layer for this polystore, created lazily.

        ``config`` (``workers=``, ``slots_per_engine=``, ...) applies only on
        the call that creates the runtime; construct
        :class:`~repro.runtime.scheduler.PolystoreRuntime` directly for
        several differently-tuned runtimes over one polystore.
        """
        with self._runtime_lock:
            if self._runtime is None:
                from repro.runtime.scheduler import PolystoreRuntime

                self._runtime = PolystoreRuntime(self, **config)
            return self._runtime

    # ------------------------------------------------------------------ wiring
    def add_engine(self, engine: Engine, islands: list[str] | None = None) -> None:
        """Register an engine, join it to islands, and create its degenerate island."""
        memberships = islands if islands is not None else DEFAULT_ISLANDS_BY_KIND.get(engine.kind, [])
        self.catalog.register_engine(engine, memberships)
        self._degenerate[engine.name.lower()] = DegenerateIsland(self.catalog, engine)

    def engine(self, name: str) -> Engine:
        return self.catalog.engine(name)

    def island(self, name: str) -> Island:
        key = name.lower()
        if key in self._islands:
            return self._islands[key]
        if key.startswith("degenerate_"):
            engine_name = key[len("degenerate_"):]
            if engine_name in self._degenerate:
                return self._degenerate[engine_name]
        if key in self._degenerate:
            return self._degenerate[key]
        raise ObjectNotFoundError(f"no island named {name!r}")

    def islands(self) -> list[Island]:
        return list(self._islands.values()) + list(self._degenerate.values())

    def degenerate_island(self, engine_name: str) -> DegenerateIsland:
        key = engine_name.lower()
        if key not in self._degenerate:
            raise ObjectNotFoundError(f"no degenerate island for engine {engine_name!r}")
        return self._degenerate[key]

    # ------------------------------------------------------------------- query
    def execute(self, query: str, cast_method: str = "binary",
                chunk_size: int | None = None) -> Relation:
        """Execute a BigDAWG query.

        Accepts either a scoped query (``RELATIONAL(...)``, ``ARRAY(...)``, ...)
        — possibly with ``WITH`` bindings and ``CAST`` terms — or bare island
        text, in which case the island is chosen automatically from the ones
        whose ``can_answer`` matches.  ``cast_method`` and ``chunk_size`` set
        the policy for any CASTs the plan performs.
        """
        stripped = query.strip()
        if self._looks_scoped(stripped):
            return self._planner.execute(
                parse_query(stripped), cast_method=cast_method, chunk_size=chunk_size
            )
        island = self._choose_island(stripped)
        return island.execute(stripped)

    def explain(self, query: str, cast_method: str = "binary",
                chunk_size: int | None = None) -> str:
        """Return the cross-island plan for a scoped query as numbered steps.

        Pass the same ``cast_method``/``chunk_size`` the query will be
        executed with so the explained CAST steps match what would run.
        """
        if not self._looks_scoped(query.strip()):
            island = self._choose_island(query.strip())
            return f"1. EXECUTE on island {island.name.upper()}"
        return self.plan(query, cast_method=cast_method, chunk_size=chunk_size).explain()

    def plan(self, query: str, cast_method: str = "binary",
             chunk_size: int | None = None) -> QueryPlan:
        return self._planner.plan(
            parse_query(query.strip()), cast_method=cast_method, chunk_size=chunk_size
        )

    def cast(self, object_name: str, target_engine: str, method: str = "binary",
             chunk_size: int | None = None, **options: Any) -> CastRecord:
        """Explicitly CAST an object to another engine."""
        return self.migrator.cast(
            object_name, target_engine, method=method, chunk_size=chunk_size, **options
        )

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def is_scoped(query: str) -> bool:
        """Whether the query is in SCOPE/CAST form (vs bare island text)."""
        return BigDawg._looks_scoped(query.strip())

    @staticmethod
    def _looks_scoped(query: str) -> bool:
        from repro.core.query.language import SCOPE_NAMES

        lowered = query.lower()
        if lowered.startswith("with "):
            return True
        return any(lowered.startswith(f"{scope}(") for scope in SCOPE_NAMES)

    def _choose_island(self, query: str) -> Island:
        candidates = [island for island in self._islands.values() if island.can_answer(query)]
        if not candidates:
            raise PlanningError(
                f"no island recognizes the query; wrap it in a scope such as RELATIONAL(...): {query[:60]!r}"
            )
        if len(candidates) == 1:
            return candidates[0]
        # Common semantics: prefer the island whose engines hold the referenced objects.
        for island in candidates:
            if isinstance(island, RelationalIsland):
                tables = island.referenced_tables(query)
                try:
                    engines = {self.catalog.locate(t).engine_name for t in tables}
                except ObjectNotFoundError:
                    continue
                members = {e.name.lower() for e in island.member_engines()}
                if engines <= members:
                    return island
        return candidates[0]

    def materialize_temporary(self, name: str, relation: Relation) -> None:
        """Store a WITH-binding result as a table visible to later scopes.

        The object is registered as ``temporary`` so :meth:`drop_temporary`
        (called by plan executions when they finish, and by runtime sessions
        when they close) can retire it from both the engine and the catalog.
        Temporaries always land in the dedicated ephemeral engine: their
        constant churn then never advances a production engine's write
        version, so the result cache stays warm across WITH queries.
        """
        target = self.temp_engine()
        target.import_relation(name, relation)
        self.catalog.register_object(name, target.name, "table", replace=True, temporary=True)

    def drop_temporary(self, name: str) -> bool:
        """Drop a temporary object from its engine and the catalog.

        Returns False when the object no longer exists; raises
        :class:`~repro.common.errors.CatalogError` when asked to drop an
        object that was not registered as temporary.
        """
        try:
            location = self.catalog.locate(name)
        except ObjectNotFoundError:
            return False
        if not location.properties.get("temporary"):
            raise CatalogError(f"object {name!r} is not temporary; refusing to drop it")
        try:
            self.catalog.engine(location.engine_name).drop_object(location.name)
        except ObjectNotFoundError:
            pass
        self.catalog.unregister_object(name)
        return True

    def temp_engine(self) -> RelationalEngine:
        """The ephemeral relational engine holding WITH/session temporaries.

        Created lazily and joined to the relational-model islands so temps
        stay reachable from every scope that could previously see them.
        """
        with self._temp_engine_lock:
            if self._temp_engine is None:
                engine = RelationalEngine("_bigdawg_temp")
                engine.ephemeral = True
                self.catalog.register_engine(engine, ["relational", "myria", "d4m"])
                self._temp_engine = engine
            return self._temp_engine

    # ------------------------------------------------------------------ status
    def describe(self) -> dict:
        """A status snapshot: engines, islands, objects, casts performed."""
        return {
            "catalog": self.catalog.describe(),
            "islands": {island.name: island.describe() for island in self.islands()},
            "casts": len(self.migrator.history),
            "observations": len(self.monitor.observations),
        }
