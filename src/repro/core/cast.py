"""The CAST operator: moving data objects between engines.

Section 2.1 of the paper introduces ``CAST`` for moving data or intermediate
results from one storage engine to another, and notes the project is
"investigating techniques to make cross-database CASTs more efficient than
file-based import/export", with a binary access method that reads data
directly from another engine.

:class:`CastMigrator` implements the move as a *chunked streaming pipeline*
over the engines' chunk export/import interface: the source yields relations
of at most ``chunk_size`` rows, each chunk is encoded into one frame, decoded
by the receiver and imported before the next chunk is produced.  At no point
does the migrator hold more than one encoded frame (or, on the zero-copy
path, one decoded chunk) in memory, so the *wire* side of a CAST runs in
bounded space.  Destination-side memory depends on the target: engines with
incremental import (relational, key-value) consume each chunk as it arrives,
while the array engine — which needs its dimension bounds before it can
allocate — buffers the decoded cells until the stream ends.

Three methods are supported:

* ``method="binary"`` — the direct path: each chunk is framed with the
  compact binary codec (columnar for all-numeric schemas) and decoded by the
  receiver without text parsing.
* ``method="csv"``    — the file-based path: each chunk is rendered to
  delimited text (optionally staged through a real temporary file) and
  re-parsed on the way in.
* ``method="direct"`` — the zero-copy fast path for engines that share the
  in-memory :class:`~repro.common.schema.Relation` representation: chunks
  flow from exporter to importer with no serialization at all.

Every cast is recorded — including per-chunk accounting (``chunks``,
``peak_chunk_bytes``) — so the monitor and benchmarks can inspect volume,
latency and memory behaviour.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.cancellation import check_cancelled
from repro.common.errors import (
    BigDawgError,
    CastError,
    ObjectNotFoundError,
    SimulatedCrashError,
)
from repro.common.schema import Relation, Schema
from repro.common.serialization import BinaryCodec, CsvCodec
from repro.core.catalog import BigDawgCatalog
from repro.engines.base import DEFAULT_CHUNK_ROWS
from repro.observability.tracing import get_tracer


@dataclass
class CastRecord:
    """Accounting for one completed cast."""

    object_name: str
    source_engine: str
    target_engine: str
    method: str
    rows: int
    bytes_moved: int
    seconds: float
    #: Number of chunks the object was streamed in.
    chunks: int = 1
    #: Largest single encoded frame held in memory during the cast.
    peak_chunk_bytes: int = 0
    #: The row budget per chunk the pipeline ran with.
    chunk_size: int = DEFAULT_CHUNK_ROWS


@dataclass
class CastMigrator:
    """Moves objects between engines registered in a catalog.

    Casts of the *same* object are serialized through a per-object lock so
    concurrent plans in the runtime cannot interleave the export/import/
    catalog-update sequence; casts of different objects proceed in parallel.
    """

    catalog: BigDawgCatalog
    history: list[CastRecord] = field(default_factory=list)
    #: Write-ahead intent journal (duck-typed to avoid a core -> runtime
    #: import; the runtime injects its
    #: :class:`~repro.runtime.journal.WriteIntentJournal` here).  When set,
    #: every cast journals begin/imported/renamed/catalog/source_dropped/
    #: commit so crash recovery can roll a half-done cast forward or back.
    journal: Any = None

    def __post_init__(self) -> None:
        self._object_locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    def object_lock(self, object_name: str) -> threading.Lock:
        """The lock serializing casts of one object (exposed for the runtime)."""
        with self._locks_guard:
            return self._object_locks.setdefault(object_name.lower(), threading.Lock())

    def cast(
        self,
        object_name: str,
        target_engine: str,
        method: str = "binary",
        target_name: str | None = None,
        drop_source: bool = False,
        use_tempfile: bool = False,
        chunk_size: int | None = None,
        source_engine: str | None = None,
        **import_options: Any,
    ) -> CastRecord:
        """Copy (or move) an object to another engine, one chunk at a time.

        Parameters
        ----------
        object_name:
            The object to move; its current location comes from the catalog.
        target_engine:
            Name of the destination engine.
        method:
            ``"binary"`` for the direct binary path, ``"csv"`` for file-based
            export/import, or ``"direct"`` for the zero-copy in-memory path.
        target_name:
            Name for the object at the destination (defaults to the same name).
        drop_source:
            When True the source copy is dropped and the catalog records the move.
        use_tempfile:
            For the CSV path, stage each chunk through an actual temporary
            file, as a real file-based export/import would.
        chunk_size:
            Rows per chunk on the streaming pipeline (default
            :data:`~repro.engines.base.DEFAULT_CHUNK_ROWS`).  Only one chunk's
            encoded payload is ever held in memory.
        source_engine:
            Export from this copy instead of the primary — the failover path
            reads from a fresh replica when the primary's engine is down.
            Must name an engine holding a *fresh* copy; a ``drop_source``
            cast must still export from the primary.
        import_options:
            Passed to the destination engine's ``import_chunks`` (e.g.
            ``dimensions=[...]`` when casting into the array engine).
        """
        with self.object_lock(object_name):
            return self._cast_locked(
                object_name, target_engine, method, target_name, drop_source,
                use_tempfile, chunk_size, source_engine, **import_options,
            )

    def _cast_locked(
        self,
        object_name: str,
        target_engine: str,
        method: str,
        target_name: str | None,
        drop_source: bool,
        use_tempfile: bool,
        chunk_size: int | None,
        source_engine: str | None = None,
        **import_options: Any,
    ) -> CastRecord:
        codec = self._codec(method)
        location = self.catalog.locate(object_name)
        if source_engine is not None and source_engine.lower() != location.engine_name:
            if drop_source:
                raise CastError(
                    "a drop_source cast must export from the primary copy, "
                    f"not the replica on {source_engine!r}"
                )
            copies = {
                loc.engine_name: loc for loc in self.catalog.fresh_locations(object_name)
            }
            chosen = copies.get(source_engine.lower())
            if chosen is None:
                raise CastError(
                    f"object {object_name!r} has no fresh copy on engine "
                    f"{source_engine!r} to export from"
                )
            location = chosen
        source = self.catalog.engine(location.engine_name)
        target = self.catalog.engine(target_engine)
        destination_name = target_name or object_name
        if source is target and destination_name.lower() == object_name.lower():
            # Same comparison as the drop_source path below: names are
            # case-insensitive, so a case-variant target_name is the same
            # object and casting would destroy it.
            raise CastError(f"object {object_name!r} already lives in engine {target_engine!r}")
        size = chunk_size if chunk_size is not None else DEFAULT_CHUNK_ROWS
        if size <= 0:
            raise CastError(f"chunk_size must be positive, got {size}")
        stats = _PipelineStats()
        started = time.perf_counter()
        tracer = get_tracer()
        # Transactional import: stream into a *shadow* name, publish with one
        # atomic rename only after every chunk landed.  A failure anywhere in
        # export/encode/decode/import leaves the destination name untouched
        # (including a pre-existing object being replaced) and discards the
        # partial shadow, so a died-mid-stream CAST is invisible afterwards
        # and the whole operation is idempotently retryable.
        shadow_name = self._shadow_name(destination_name)
        # Write-ahead intent: the begin record lands before any engine state
        # changes, each completed protocol step is marked, and the boundaries
        # double as the crash-sweep points.  ``intent`` stays None when no
        # journal is attached (bare migrator use).
        intent = None
        if self.journal is not None:
            intent = self.journal.begin(
                "cast",
                object=object_name,
                source_engine=source.name.lower(),
                target_engine=target.name.lower(),
                destination=destination_name,
                shadow=shadow_name,
                drop_source=drop_source,
                target_kind=target.kind,
                properties=dict(location.properties),
            )
            self.journal.crash_point("cast.begin")

        def checkpoint(step: str) -> None:
            if intent is not None:
                intent.mark(step)
                self.journal.crash_point(f"cast.{step}")

        with tracer.span(
            "cast", kind="cast", object=object_name,
            source=source.name, target=target.name, method=method,
        ):
            try:
                # One export_stream call: engines with native chunk support
                # answer from metadata, and fallback engines export the
                # relation only once.
                schema, exported = source.export_stream(object_name, size)
                if codec is None:
                    # Zero-copy fast path: every engine here shares the
                    # in-memory Relation representation, so chunks flow
                    # through unserialized.
                    decoded = self._count_rows(exported, stats)
                elif tracer.enabled:
                    decoded = self._traced_frame_pipeline(
                        exported, schema, codec, method, use_tempfile, stats, tracer
                    )
                else:
                    decoded = self._frame_pipeline(
                        exported, schema, codec, method, use_tempfile, stats
                    )
                with tracer.span("cast.import", kind="cast", object=destination_name,
                                 shadow=shadow_name):
                    target.import_chunks(shadow_name, schema, decoded, **import_options)
                checkpoint("imported")
                with tracer.span("cast.commit", kind="cast", object=destination_name):
                    target.rename_object(shadow_name, destination_name, replace=True)
                checkpoint("renamed")
            except BaseException as error:
                if isinstance(error, SimulatedCrashError):
                    # A (simulated) process death gets no in-process cleanup:
                    # the shadow stays, the intent stays open, and recovery
                    # must resolve both from the journal.
                    raise
                self._discard_partial(target, shadow_name, tracer)
                if intent is not None:
                    intent.abort(error=type(error).__name__)
                raise
        elapsed = time.perf_counter() - started
        # The catalog swap happens *before* the source copy is dropped: if
        # registration fails, the catalog still points at the intact source
        # object and the cast can simply be retried — the reverse order could
        # orphan the object (source gone, catalog still naming it there).
        if drop_source:
            if destination_name.lower() == object_name.lower():
                self.catalog.move_object(object_name, target.name, target.kind)
            else:
                # The object changed name as it moved: retire the old catalog
                # entry and register the new one (carrying its properties, as
                # move_object does), so the catalog never points at a name
                # that does not exist on the target engine.
                self.catalog.unregister_object(object_name)
                self.catalog.register_object(
                    destination_name, target.name, target.kind, replace=True,
                    **location.properties,
                )
            checkpoint("catalog")
            try:
                source.drop_object(object_name)
            except ObjectNotFoundError:  # pragma: no cover - already gone
                pass
            checkpoint("source_dropped")
        elif destination_name.lower() == object_name.lower():
            # Copy-cast keeping the same name: the source keeps its (still
            # queryable) registration and the new copy is recorded as a fresh
            # replica — CAST doubling as a replication tool instead of
            # silently re-pointing the catalog away from the source island.
            self.catalog.add_replica(destination_name, target.name, target.kind)
            checkpoint("catalog")
        else:
            self.catalog.register_object(
                destination_name, target.name, target.kind, replace=True
            )
            checkpoint("catalog")
        if intent is not None:
            intent.commit()
            self.journal.crash_point("cast.committed")
        record = CastRecord(
            object_name=object_name,
            source_engine=source.name,
            target_engine=target.name,
            method=method,
            rows=stats.rows,
            bytes_moved=stats.bytes_moved,
            seconds=elapsed,
            chunks=stats.chunks,
            peak_chunk_bytes=stats.peak_chunk_bytes,
            chunk_size=size,
        )
        self.history.append(record)
        return record

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _shadow_name(destination_name: str) -> str:
        """The staging name a cast imports into before the commit rename.

        Deterministic on purpose: a retried cast reuses (and therefore
        replaces) the shadow a previous failed attempt may have left behind,
        instead of leaking one abandoned staging object per attempt.
        """
        return f"__cast_shadow__{destination_name}"

    @staticmethod
    def _discard_partial(target: Any, shadow_name: str, tracer: Any) -> None:
        """Best-effort drop of a failed cast's staging object.

        Runs on the failure path, so engine errors here must not mask the
        original exception; a shadow that was never created (the stream died
        before the first chunk landed) is the common, silent case.
        """
        begin = time.time()
        try:
            target.drop_object(shadow_name)
            tracer.record("cast.abort", start_s=begin, duration_s=time.time() - begin,
                          kind="cast", shadow=shadow_name, dropped=True)
        except ObjectNotFoundError:
            pass
        except BigDawgError:
            tracer.record("cast.abort", start_s=begin, duration_s=time.time() - begin,
                          kind="cast", shadow=shadow_name, dropped=False)

    def _codec(self, method: str) -> BinaryCodec | CsvCodec | None:
        if method == "binary":
            return BinaryCodec()
        if method == "csv":
            return CsvCodec()
        if method == "direct":
            return None
        raise CastError(
            f"unknown cast method {method!r}; use 'binary', 'csv' or 'direct'"
        )

    def _frame_pipeline(
        self,
        chunks: Iterator[Relation],
        schema: Schema,
        codec: BinaryCodec | CsvCodec,
        method: str,
        use_tempfile: bool,
        stats: "_PipelineStats",
    ) -> Iterator[Relation]:
        """encode -> (stage) -> decode, one frame at a time."""
        for chunk in chunks:
            check_cancelled()
            payload = codec.encode(chunk)
            if method == "csv" and use_tempfile:
                payload = self._stage_through_tempfile(payload)
            stats.rows += len(chunk)
            stats.chunks += 1
            stats.bytes_moved += len(payload)
            stats.peak_chunk_bytes = max(stats.peak_chunk_bytes, len(payload))
            yield codec.decode(payload, schema)

    def _traced_frame_pipeline(
        self,
        chunks: Iterator[Relation],
        schema: Schema,
        codec: BinaryCodec | CsvCodec,
        method: str,
        use_tempfile: bool,
        stats: "_PipelineStats",
        tracer: Any,
    ) -> Iterator[Relation]:
        """:meth:`_frame_pipeline` with one span per CAST stage per chunk.

        Export time is the pull from the source iterator; import time is
        the gap between yielding a decoded chunk and being resumed (the
        consumer is ``import_chunks``).  Kept as a separate method so the
        untraced pipeline stays branch-free.
        """
        source = iter(chunks)
        index = 0
        while True:
            check_cancelled()
            export_wall = time.time()
            export_begin = time.perf_counter()
            try:
                chunk = next(source)
            except StopIteration:
                return
            tracer.record(
                "cast.export", start_s=export_wall,
                duration_s=time.perf_counter() - export_begin,
                kind="cast", chunk=index, rows=len(chunk),
            )
            with tracer.span("cast.encode", kind="cast", chunk=index) as span:
                payload = codec.encode(chunk)
                span.set("bytes", len(payload))
            if method == "csv" and use_tempfile:
                with tracer.span("cast.stage", kind="cast", chunk=index):
                    payload = self._stage_through_tempfile(payload)
            stats.rows += len(chunk)
            stats.chunks += 1
            stats.bytes_moved += len(payload)
            stats.peak_chunk_bytes = max(stats.peak_chunk_bytes, len(payload))
            with tracer.span("cast.decode", kind="cast", chunk=index):
                decoded = codec.decode(payload, schema)
            import_wall = time.time()
            import_begin = time.perf_counter()
            yield decoded
            tracer.record(
                "cast.import_chunk", start_s=import_wall,
                duration_s=time.perf_counter() - import_begin,
                kind="cast", chunk=index,
            )
            index += 1

    @staticmethod
    def _count_rows(chunks: Iterator[Relation], stats: "_PipelineStats") -> Iterator[Relation]:
        for chunk in chunks:
            check_cancelled()
            stats.rows += len(chunk)
            stats.chunks += 1
            yield chunk

    @staticmethod
    def _stage_through_tempfile(payload: bytes) -> bytes:
        """Round-trip one chunk through a real file to model export-to-disk."""
        fd, path = tempfile.mkstemp(suffix=".csv")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            with open(path, "rb") as handle:
                return handle.read()
        finally:
            os.unlink(path)

    # ------------------------------------------------------------------ stats
    def total_bytes_moved(self) -> int:
        return sum(record.bytes_moved for record in self.history)

    def casts_between(self, source: str, target: str) -> list[CastRecord]:
        return [
            record
            for record in self.history
            if record.source_engine.lower() == source.lower()
            and record.target_engine.lower() == target.lower()
        ]


@dataclass
class _PipelineStats:
    """Mutable per-cast counters threaded through the streaming generators."""

    rows: int = 0
    chunks: int = 0
    bytes_moved: int = 0
    peak_chunk_bytes: int = 0
