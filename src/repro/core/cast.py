"""The CAST operator: moving data objects between engines.

Section 2.1 of the paper introduces ``CAST`` for moving data or intermediate
results from one storage engine to another, and notes the project is
"investigating techniques to make cross-database CASTs more efficient than
file-based import/export", with a binary access method that reads data
directly from another engine.

:class:`CastMigrator` implements both paths over the engines' relation
export/import interface:

* ``method="binary"`` — the direct path: the exported relation is framed with
  the compact binary codec and decoded by the receiver without text parsing.
* ``method="csv"``    — the file-based path: the relation is rendered to
  delimited text (optionally staged through a real temporary file) and
  re-parsed on the way in.

Every cast is recorded so the monitor and benchmarks can inspect volume and
latency.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import CastError
from repro.common.schema import Relation
from repro.common.serialization import BinaryCodec, CsvCodec
from repro.core.catalog import BigDawgCatalog


@dataclass
class CastRecord:
    """Accounting for one completed cast."""

    object_name: str
    source_engine: str
    target_engine: str
    method: str
    rows: int
    bytes_moved: int
    seconds: float


@dataclass
class CastMigrator:
    """Moves objects between engines registered in a catalog."""

    catalog: BigDawgCatalog
    history: list[CastRecord] = field(default_factory=list)

    def cast(
        self,
        object_name: str,
        target_engine: str,
        method: str = "binary",
        target_name: str | None = None,
        drop_source: bool = False,
        use_tempfile: bool = False,
        **import_options: Any,
    ) -> CastRecord:
        """Copy (or move) an object to another engine.

        Parameters
        ----------
        object_name:
            The object to move; its current location comes from the catalog.
        target_engine:
            Name of the destination engine.
        method:
            ``"binary"`` for the direct path or ``"csv"`` for file-based export/import.
        target_name:
            Name for the object at the destination (defaults to the same name).
        drop_source:
            When True the source copy is dropped and the catalog records the move.
        use_tempfile:
            For the CSV path, stage the payload through an actual temporary file,
            as a real file-based export/import would.
        import_options:
            Passed to the destination engine's ``import_relation`` (e.g.
            ``dimensions=[...]`` when casting into the array engine).
        """
        location = self.catalog.locate(object_name)
        source = self.catalog.engine(location.engine_name)
        target = self.catalog.engine(target_engine)
        if source.name == target.name and (target_name or object_name) == object_name:
            raise CastError(f"object {object_name!r} already lives in engine {target_engine!r}")
        started = time.perf_counter()
        relation = source.export_relation(object_name)
        payload = self._encode(relation, method, use_tempfile)
        decoded = self._decode(payload, relation, method, use_tempfile)
        destination_name = target_name or object_name
        target.import_relation(destination_name, decoded, **import_options)
        elapsed = time.perf_counter() - started
        if drop_source:
            source.drop_object(object_name)
            self.catalog.move_object(object_name, target.name, target.kind)
        else:
            self.catalog.register_object(
                destination_name, target.name, target.kind, replace=True
            )
        record = CastRecord(
            object_name=object_name,
            source_engine=source.name,
            target_engine=target.name,
            method=method,
            rows=len(relation),
            bytes_moved=len(payload),
            seconds=elapsed,
        )
        self.history.append(record)
        return record

    # ----------------------------------------------------------------- helpers
    def _encode(self, relation: Relation, method: str, use_tempfile: bool) -> bytes:
        if method == "binary":
            return BinaryCodec().encode(relation)
        if method == "csv":
            payload = CsvCodec().encode(relation)
            if use_tempfile:
                # Round-trip through a real file to model export-to-disk.
                fd, path = tempfile.mkstemp(suffix=".csv")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(payload)
                    with open(path, "rb") as handle:
                        payload = handle.read()
                finally:
                    os.unlink(path)
            return payload
        raise CastError(f"unknown cast method {method!r}; use 'binary' or 'csv'")

    def _decode(self, payload: bytes, relation: Relation, method: str, use_tempfile: bool) -> Relation:
        if method == "binary":
            return BinaryCodec().decode(payload, relation.schema)
        return CsvCodec().decode(payload, relation.schema)

    # ------------------------------------------------------------------ stats
    def total_bytes_moved(self) -> int:
        return sum(record.bytes_moved for record in self.history)

    def casts_between(self, source: str, target: str) -> list[CastRecord]:
        return [
            record
            for record in self.history
            if record.source_engine.lower() == source.lower()
            and record.target_engine.lower() == target.lower()
        ]
