"""The BigDAWG catalog: which engines exist, which islands they join, and where
every data object lives.

The catalog is what gives users *location transparency* (Section 2.1): island
queries name objects, and the middleware asks the catalog which engine stores
each object and through which islands that engine is reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import CatalogError, DuplicateObjectError, ObjectNotFoundError
from repro.common.schema import Schema
from repro.engines.base import Engine


@dataclass
class ObjectLocation:
    """Where one data object lives and what it is."""

    name: str
    engine_name: str
    object_type: str  # table | array | stream | kvtable | dataset
    properties: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Engine names are case-insensitive everywhere else in the catalog;
        # normalizing here (the single place locations are created) means
        # consumers such as the planner can compare engine names directly.
        self.engine_name = self.engine_name.lower()


class BigDawgCatalog:
    """Registry of engines, island memberships and object placements."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}
        self._island_members: dict[str, set[str]] = {}
        self._objects: dict[str, ObjectLocation] = {}
        self._schemas: dict[str, Schema] = {}

    # ----------------------------------------------------------------- engines
    def register_engine(self, engine: Engine, islands: Iterable[str] = ()) -> None:
        """Register an engine and the islands through which it is reachable."""
        key = engine.name.lower()
        if key in self._engines:
            raise DuplicateObjectError(f"engine {engine.name!r} is already registered")
        self._engines[key] = engine
        for island in islands:
            self._island_members.setdefault(island.lower(), set()).add(key)

    def engine(self, name: str) -> Engine:
        key = name.lower()
        if key not in self._engines:
            raise ObjectNotFoundError(f"engine {name!r} is not registered")
        return self._engines[key]

    def engines(self) -> list[Engine]:
        return list(self._engines.values())

    def has_engine(self, name: str) -> bool:
        return name.lower() in self._engines

    # ----------------------------------------------------------------- islands
    def add_island_member(self, island: str, engine_name: str) -> None:
        """Declare that an engine is reachable through an island."""
        if engine_name.lower() not in self._engines:
            raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
        self._island_members.setdefault(island.lower(), set()).add(engine_name.lower())

    def island_engines(self, island: str) -> list[Engine]:
        """Engines reachable through an island."""
        members = self._island_members.get(island.lower(), set())
        return [self._engines[name] for name in sorted(members)]

    def islands(self) -> list[str]:
        return sorted(self._island_members)

    def islands_of_engine(self, engine_name: str) -> list[str]:
        key = engine_name.lower()
        return sorted(
            island for island, members in self._island_members.items() if key in members
        )

    # ----------------------------------------------------------------- objects
    def register_object(self, name: str, engine_name: str, object_type: str,
                        replace: bool = False, **properties) -> ObjectLocation:
        """Record that an object lives in an engine."""
        key = name.lower()
        if key in self._objects and not replace:
            raise DuplicateObjectError(f"object {name!r} is already registered")
        if engine_name.lower() not in self._engines:
            raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
        location = ObjectLocation(name, engine_name, object_type, dict(properties))
        self._objects[key] = location
        self._schemas.pop(key, None)
        return location

    def unregister_object(self, name: str) -> None:
        self._objects.pop(name.lower(), None)
        self._schemas.pop(name.lower(), None)

    def locate(self, name: str) -> ObjectLocation:
        """Find where an object lives, checking registrations first, then engines."""
        key = name.lower()
        if key in self._objects:
            return self._objects[key]
        # Fall back to asking the engines directly (objects created out-of-band).
        for engine in self._engines.values():
            if engine.has_object(name):
                return ObjectLocation(name, engine.name, engine.kind)
        raise ObjectNotFoundError(f"object {name!r} is not stored in any registered engine")

    def has_object(self, name: str) -> bool:
        try:
            self.locate(name)
            return True
        except ObjectNotFoundError:
            return False

    def objects(self) -> list[ObjectLocation]:
        return list(self._objects.values())

    def objects_in_engine(self, engine_name: str) -> list[str]:
        key = engine_name.lower()
        registered = [loc.name for loc in self._objects.values() if loc.engine_name == key]
        engine = self.engine(engine_name)
        unregistered = [n for n in engine.list_objects() if n.lower() not in self._objects]
        return sorted(set(registered) | set(unregistered))

    def move_object(self, name: str, target_engine: str, object_type: str | None = None) -> ObjectLocation:
        """Update an object's recorded location (the migrator calls this after a CAST)."""
        current = self.locate(name)
        if target_engine.lower() not in self._engines:
            raise CatalogError(f"target engine {target_engine!r} is not registered")
        location = ObjectLocation(
            current.name, target_engine, object_type or current.object_type, current.properties
        )
        self._objects[name.lower()] = location
        self._schemas.pop(name.lower(), None)
        return location

    # ----------------------------------------------------------------- schemas
    def schema_of(self, name: str) -> Schema:
        """The relational schema an export of ``name`` would have.

        Planning a CAST only needs the schema, never the data.  Engines with
        a native (metadata-only) ``export_schema`` are asked directly every
        time, so engine-side DDL such as drop-and-recreate is always
        reflected.  Only for engines relying on the full-export fallback is
        the result cached — there a lookup costs a whole relation export —
        with the entry dropped whenever the object is re-registered, moved
        or unregistered (out-of-band mutation needs ``invalidate_schema``).
        """
        location = self.locate(name)
        engine = self.engine(location.engine_name)
        if type(engine).export_schema is not Engine.export_schema:
            return engine.export_schema(name)
        key = name.lower()
        if key not in self._schemas:
            self._schemas[key] = engine.export_schema(name)
        return self._schemas[key]

    def invalidate_schema(self, name: str | None = None) -> None:
        """Drop cached schemas (all of them when ``name`` is None).

        Call this after mutating an object's shape directly on an engine,
        outside the catalog's register/move/unregister paths.
        """
        if name is None:
            self._schemas.clear()
        else:
            self._schemas.pop(name.lower(), None)

    def describe(self) -> dict:
        """Summary used by the demo's status screen."""
        return {
            "engines": {name: engine.kind for name, engine in self._engines.items()},
            "islands": {island: sorted(members) for island, members in self._island_members.items()},
            "objects": {loc.name: loc.engine_name for loc in self._objects.values()},
        }
