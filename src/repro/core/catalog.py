"""The BigDAWG catalog: which engines exist, which islands they join, and where
every data object lives.

The catalog is what gives users *location transparency* (Section 2.1): island
queries name objects, and the middleware asks the catalog which engine stores
each object and through which islands that engine is reachable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.common.errors import CatalogError, DuplicateObjectError, ObjectNotFoundError
from repro.common.schema import Schema
from repro.engines.base import Engine


@dataclass
class ObjectLocation:
    """Where one copy of a data object lives and what it is.

    ``version`` tags the copy's content: a location is *fresh* when its
    version equals the catalog's current content version for the object,
    and *stale* (still present, no longer served reads) after another
    location absorbed a write.
    """

    name: str
    engine_name: str
    object_type: str  # table | array | stream | kvtable | dataset
    properties: dict = field(default_factory=dict)
    version: int = 0

    def __post_init__(self) -> None:
        # Engine names are case-insensitive everywhere else in the catalog;
        # normalizing here (the single place locations are created) means
        # consumers such as the planner can compare engine names directly.
        self.engine_name = self.engine_name.lower()


class BigDawgCatalog:
    """Registry of engines, island memberships and object placements."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}
        self._island_members: dict[str, set[str]] = {}
        self._objects: dict[str, ObjectLocation] = {}
        # Replication: the primary stays in ``_objects`` (so ``locate`` keeps
        # its historical meaning), extra copies live here keyed
        # object -> engine -> location, and ``_content_versions`` holds the
        # current content tag a copy must carry to be considered fresh.
        self._replicas: dict[str, dict[str, ObjectLocation]] = {}
        self._content_versions: dict[str, int] = {}
        self._health_probe: Callable[[str], bool] | None = None
        self._schemas: dict[str, Schema] = {}
        # Concurrent runtime support: every read and write goes through one
        # re-entrant lock, and every metadata mutation advances ``version`` so
        # the result cache can fingerprint catalog state cheaply.  Temporary
        # objects churn constantly (every WITH binding registers and retires
        # one), so their *fresh* registrations and retirements advance the
        # separate ``temp_version`` — temp names are unique per execution, no
        # cached query can reference them, and folding that churn into
        # ``version`` would invalidate the whole result cache on every WITH
        # query.  Replacing an object that already exists (temporary or not)
        # is a visible content change and always bumps ``version``.
        self._lock = threading.RLock()
        self._version = 0
        self._temp_version = 0

    @property
    def version(self) -> int:
        """Monotonic counter advanced by every durable catalog mutation."""
        with self._lock:
            return self._version

    @property
    def temp_version(self) -> int:
        """Monotonic counter advanced by temporary-object churn."""
        with self._lock:
            return self._temp_version

    def _bump(self) -> None:
        self._version += 1  # callers hold self._lock

    # ----------------------------------------------------------------- engines
    def register_engine(self, engine: Engine, islands: Iterable[str] = ()) -> None:
        """Register an engine and the islands through which it is reachable."""
        with self._lock:
            key = engine.name.lower()
            if key in self._engines:
                raise DuplicateObjectError(f"engine {engine.name!r} is already registered")
            self._engines[key] = engine
            for island in islands:
                self._island_members.setdefault(island.lower(), set()).add(key)
            self._bump()

    def engine(self, name: str) -> Engine:
        with self._lock:
            key = name.lower()
            if key not in self._engines:
                raise ObjectNotFoundError(f"engine {name!r} is not registered")
            return self._engines[key]

    def engines(self) -> list[Engine]:
        with self._lock:
            return list(self._engines.values())

    def has_engine(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._engines

    # ----------------------------------------------------------------- islands
    def add_island_member(self, island: str, engine_name: str) -> None:
        """Declare that an engine is reachable through an island."""
        with self._lock:
            if engine_name.lower() not in self._engines:
                raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
            self._island_members.setdefault(island.lower(), set()).add(engine_name.lower())
            self._bump()

    def island_engines(self, island: str) -> list[Engine]:
        """Engines reachable through an island."""
        with self._lock:
            members = self._island_members.get(island.lower(), set())
            return [self._engines[name] for name in sorted(members)]

    def islands(self) -> list[str]:
        with self._lock:
            return sorted(self._island_members)

    def islands_of_engine(self, engine_name: str) -> list[str]:
        with self._lock:
            key = engine_name.lower()
            return sorted(
                island for island, members in self._island_members.items() if key in members
            )

    # ----------------------------------------------------------------- objects
    def register_object(self, name: str, engine_name: str, object_type: str,
                        replace: bool = False, **properties) -> ObjectLocation:
        """Record that an object lives in an engine."""
        with self._lock:
            key = name.lower()
            if key in self._objects and not replace:
                raise DuplicateObjectError(f"object {name!r} is already registered")
            if engine_name.lower() not in self._engines:
                raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
            existed = key in self._objects
            if existed:
                # Replacing an object is new content at the named engine: the
                # content version advances, so surviving replicas turn stale.
                self._content_versions[key] = self._content_versions.get(key, 0) + 1
            content = self._content_versions.get(key, 0)
            location = ObjectLocation(
                name, engine_name, object_type, dict(properties), version=content
            )
            self._objects[key] = location
            # The new primary engine may previously have held a replica.
            self._replicas.get(key, {}).pop(location.engine_name, None)
            self._schemas.pop(key, None)
            if properties.get("temporary") and not existed:
                self._temp_version += 1
            else:
                self._bump()
            return location

    def unregister_object(self, name: str) -> None:
        with self._lock:
            removed = self._objects.pop(name.lower(), None)
            self._schemas.pop(name.lower(), None)
            self._replicas.pop(name.lower(), None)
            self._content_versions.pop(name.lower(), None)
            if removed is None:
                return
            if removed.properties.get("temporary"):
                self._temp_version += 1
            else:
                self._bump()

    def locate(self, name: str) -> ObjectLocation:
        """Find where an object lives, checking registrations first, then engines."""
        with self._lock:
            key = name.lower()
            if key in self._objects:
                return self._objects[key]
            # Fall back to asking the engines directly (objects created out-of-band).
            for engine in self._engines.values():
                if engine.has_object(name):
                    return ObjectLocation(name, engine.name, engine.kind)
        raise ObjectNotFoundError(f"object {name!r} is not stored in any registered engine")

    def has_object(self, name: str) -> bool:
        try:
            self.locate(name)
            return True
        except ObjectNotFoundError:
            return False

    def objects(self) -> list[ObjectLocation]:
        with self._lock:
            return list(self._objects.values())

    def objects_in_engine(self, engine_name: str) -> list[str]:
        with self._lock:
            key = engine_name.lower()
            registered = [loc.name for loc in self._objects.values() if loc.engine_name == key]
            engine = self.engine(engine_name)
            unregistered = [n for n in engine.list_objects() if n.lower() not in self._objects]
            return sorted(set(registered) | set(unregistered))

    def move_object(self, name: str, target_engine: str, object_type: str | None = None) -> ObjectLocation:
        """Update an object's recorded location (the migrator calls this after a CAST)."""
        with self._lock:
            current = self.locate(name)
            if target_engine.lower() not in self._engines:
                raise CatalogError(f"target engine {target_engine!r} is not registered")
            key = name.lower()
            location = ObjectLocation(
                current.name, target_engine, object_type or current.object_type,
                current.properties, version=self._content_versions.get(key, 0),
            )
            self._objects[key] = location
            # A replica on the target engine is absorbed into the primary.
            self._replicas.get(key, {}).pop(location.engine_name, None)
            self._schemas.pop(key, None)
            self._bump()
            return location

    # ----------------------------------------------------------------- replicas
    def add_replica(self, name: str, engine_name: str,
                    object_type: str | None = None,
                    version: int | None = None) -> ObjectLocation:
        """Record an extra copy of an object on another engine.

        The copy is tagged fresh (current content version) unless an explicit
        ``version`` says otherwise.  Adding a "replica" on the primary's own
        engine is a no-op — there is only one copy there.
        """
        with self._lock:
            primary = self.locate(name)
            key = name.lower()
            if key not in self._objects:
                # Object known only via the engine-scan fallback: pin the
                # discovered primary so the replica has an anchor.
                self._objects[key] = primary
            engine_key = engine_name.lower()
            if engine_key not in self._engines:
                raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
            if engine_key == primary.engine_name:
                return primary
            location = ObjectLocation(
                primary.name, engine_name, object_type or primary.object_type,
                dict(primary.properties),
                version=self._content_versions.get(key, 0) if version is None else version,
            )
            self._replicas.setdefault(key, {})[engine_key] = location
            self._bump()
            return location

    def promote_primary(self, name: str, engine_name: str) -> ObjectLocation:
        """Make the copy of ``name`` on ``engine_name`` the write primary.

        The write-failover election step: when the current primary's engine
        is down, a *fresh* replica (one holding the current content version)
        is promoted so writes keep flowing.  The demoted primary stays
        behind as a replica at its old version — the caller journals the
        election and recovery later repairs (anti-entropy CAST) or discards
        it.  Promoting the current primary is a no-op; promoting a stale or
        unknown copy raises :class:`CatalogError`, because electing a copy
        missing acknowledged writes would silently lose them.
        """
        with self._lock:
            primary = self.locate(name)
            key = name.lower()
            engine_key = engine_name.lower()
            if engine_key == primary.engine_name:
                return primary
            copies = self._replicas.get(key, {})
            candidate = copies.get(engine_key)
            if candidate is None:
                raise CatalogError(
                    f"no replica of {name!r} on engine {engine_name!r} to promote"
                )
            current = self._content_versions.get(key, 0)
            if candidate.version != current:
                raise CatalogError(
                    f"replica of {name!r} on {engine_name!r} is stale "
                    f"(version {candidate.version} != content {current}); "
                    "refusing to elect a copy that would lose writes"
                )
            if key not in self._objects:
                self._objects[key] = primary
            copies.pop(engine_key)
            copies[primary.engine_name] = primary  # demoted, keeps its version
            self._replicas[key] = copies
            self._objects[key] = candidate
            self._schemas.pop(key, None)
            self._bump()
            return candidate

    def drop_replica(self, name: str, engine_name: str) -> None:
        """Forget the copy of ``name`` on ``engine_name`` (primary unaffected)."""
        with self._lock:
            removed = self._replicas.get(name.lower(), {}).pop(engine_name.lower(), None)
            if removed is not None:
                self._bump()

    def replicas(self, name: str) -> list[ObjectLocation]:
        """Non-primary copies of an object, in deterministic engine order."""
        with self._lock:
            copies = self._replicas.get(name.lower(), {})
            return [copies[engine] for engine in sorted(copies)]

    def locations(self, name: str) -> list[ObjectLocation]:
        """Every known copy of an object, primary first."""
        with self._lock:
            return [self.locate(name), *self.replicas(name)]

    def content_version(self, name: str) -> int:
        """The content tag a copy must carry to be fresh."""
        with self._lock:
            return self._content_versions.get(name.lower(), 0)

    def fresh_locations(self, name: str) -> list[ObjectLocation]:
        """Copies holding the current content, primary first."""
        with self._lock:
            current = self._content_versions.get(name.lower(), 0)
            return [loc for loc in self.locations(name) if loc.version == current]

    def note_object_write(self, name: str, engine_name: str | None = None) -> None:
        """Record that an object's content changed at one location.

        The written copy (the primary unless ``engine_name`` says otherwise)
        becomes the fresh primary; every other copy keeps its old version and
        turns stale.  A write landing on a replica promotes it to primary —
        the demoted primary stays behind as a stale replica.  Without any
        replicas this is version bookkeeping only, so the durable catalog
        version (and with it the result cache) is left alone — engine write
        versions already fingerprint plain single-copy mutation.
        """
        with self._lock:
            key = name.lower()
            primary = self._objects.get(key)
            if primary is None:
                return
            copies = self._replicas.get(key, {})
            new_version = self._content_versions.get(key, 0) + 1
            self._content_versions[key] = new_version
            written = primary.engine_name if engine_name is None else engine_name.lower()
            if written != primary.engine_name and written in copies:
                promoted = copies.pop(written)
                copies[primary.engine_name] = primary
                self._objects[key] = promoted
                primary = promoted
            if written == primary.engine_name:
                primary.version = new_version
            if copies:
                self._bump()

    # ------------------------------------------------------------ read routing
    def set_health_probe(self, probe: Callable[[str], bool] | None) -> None:
        """Install a callback reporting whether an engine can serve reads.

        The runtime wires this to its circuit-breaker state so read routing
        avoids engines with open breakers.  ``None`` removes the probe.
        """
        with self._lock:
            self._health_probe = probe

    def engine_is_healthy(self, engine_name: str) -> bool:
        """Whether the health probe (if any) considers an engine usable."""
        probe = self._health_probe
        if probe is None:
            return True
        try:
            return bool(probe(engine_name.lower()))
        except Exception:  # fail open: a broken probe must not stop routing
            return True

    def locate_for_read(self, name: str,
                        members: Iterable[str] | None = None) -> ObjectLocation:
        """The best copy of an object to *read* from.

        Preference order among copies holding the current content: the
        primary when it is healthy and reachable, then healthy replicas in
        engine-name order, then any fresh reachable copy, and finally the
        primary itself (so a fully-unhealthy catalog degrades to the
        pre-replication behaviour instead of failing routing).  ``members``
        restricts candidates to an island's engines; writes must keep using
        :meth:`locate` — only the primary accepts writes.
        """
        with self._lock:
            primary = self.locate(name)
            if name.lower() not in self._replicas or not self._replicas[name.lower()]:
                return primary
            allowed = None if members is None else {m.lower() for m in members}
            candidates = [
                loc for loc in self.fresh_locations(name)
                if allowed is None or loc.engine_name in allowed
            ]
            healthy = [loc for loc in candidates if self.engine_is_healthy(loc.engine_name)]
            for pool in (healthy, candidates):
                for loc in pool:
                    if loc.engine_name == primary.engine_name:
                        return loc
                if pool:
                    return min(pool, key=lambda loc: loc.engine_name)
            return primary

    # ----------------------------------------------------------------- schemas
    def schema_of(self, name: str) -> Schema:
        """The relational schema an export of ``name`` would have.

        Planning a CAST only needs the schema, never the data.  Engines with
        a native (metadata-only) ``export_schema`` are asked directly every
        time, so engine-side DDL such as drop-and-recreate is always
        reflected.  Only for engines relying on the full-export fallback is
        the result cached — there a lookup costs a whole relation export —
        with the entry dropped whenever the object is re-registered, moved
        or unregistered (out-of-band mutation needs ``invalidate_schema``).
        """
        with self._lock:
            location = self.locate(name)
            engine = self.engine(location.engine_name)
            if type(engine).export_schema is not Engine.export_schema:
                return engine.export_schema(name)
            key = name.lower()
            if key not in self._schemas:
                self._schemas[key] = engine.export_schema(name)
            return self._schemas[key]

    def invalidate_schema(self, name: str | None = None) -> None:
        """Drop cached schemas (all of them when ``name`` is None).

        Call this after mutating an object's shape directly on an engine,
        outside the catalog's register/move/unregister paths.
        """
        with self._lock:
            if name is None:
                self._schemas.clear()
            else:
                self._schemas.pop(name.lower(), None)

    def describe(self) -> dict:
        """Summary used by the demo's status screen."""
        with self._lock:
            return {
                "engines": {name: engine.kind for name, engine in self._engines.items()},
                "islands": {island: sorted(members) for island, members in self._island_members.items()},
                "objects": {loc.name: loc.engine_name for loc in self._objects.values()},
            }
