"""The BigDAWG catalog: which engines exist, which islands they join, and where
every data object lives.

The catalog is what gives users *location transparency* (Section 2.1): island
queries name objects, and the middleware asks the catalog which engine stores
each object and through which islands that engine is reachable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import CatalogError, DuplicateObjectError, ObjectNotFoundError
from repro.common.schema import Schema
from repro.engines.base import Engine


@dataclass
class ObjectLocation:
    """Where one data object lives and what it is."""

    name: str
    engine_name: str
    object_type: str  # table | array | stream | kvtable | dataset
    properties: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Engine names are case-insensitive everywhere else in the catalog;
        # normalizing here (the single place locations are created) means
        # consumers such as the planner can compare engine names directly.
        self.engine_name = self.engine_name.lower()


class BigDawgCatalog:
    """Registry of engines, island memberships and object placements."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}
        self._island_members: dict[str, set[str]] = {}
        self._objects: dict[str, ObjectLocation] = {}
        self._schemas: dict[str, Schema] = {}
        # Concurrent runtime support: every read and write goes through one
        # re-entrant lock, and every metadata mutation advances ``version`` so
        # the result cache can fingerprint catalog state cheaply.  Temporary
        # objects churn constantly (every WITH binding registers and retires
        # one), so their *fresh* registrations and retirements advance the
        # separate ``temp_version`` — temp names are unique per execution, no
        # cached query can reference them, and folding that churn into
        # ``version`` would invalidate the whole result cache on every WITH
        # query.  Replacing an object that already exists (temporary or not)
        # is a visible content change and always bumps ``version``.
        self._lock = threading.RLock()
        self._version = 0
        self._temp_version = 0

    @property
    def version(self) -> int:
        """Monotonic counter advanced by every durable catalog mutation."""
        with self._lock:
            return self._version

    @property
    def temp_version(self) -> int:
        """Monotonic counter advanced by temporary-object churn."""
        with self._lock:
            return self._temp_version

    def _bump(self) -> None:
        self._version += 1  # callers hold self._lock

    # ----------------------------------------------------------------- engines
    def register_engine(self, engine: Engine, islands: Iterable[str] = ()) -> None:
        """Register an engine and the islands through which it is reachable."""
        with self._lock:
            key = engine.name.lower()
            if key in self._engines:
                raise DuplicateObjectError(f"engine {engine.name!r} is already registered")
            self._engines[key] = engine
            for island in islands:
                self._island_members.setdefault(island.lower(), set()).add(key)
            self._bump()

    def engine(self, name: str) -> Engine:
        with self._lock:
            key = name.lower()
            if key not in self._engines:
                raise ObjectNotFoundError(f"engine {name!r} is not registered")
            return self._engines[key]

    def engines(self) -> list[Engine]:
        with self._lock:
            return list(self._engines.values())

    def has_engine(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._engines

    # ----------------------------------------------------------------- islands
    def add_island_member(self, island: str, engine_name: str) -> None:
        """Declare that an engine is reachable through an island."""
        with self._lock:
            if engine_name.lower() not in self._engines:
                raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
            self._island_members.setdefault(island.lower(), set()).add(engine_name.lower())
            self._bump()

    def island_engines(self, island: str) -> list[Engine]:
        """Engines reachable through an island."""
        with self._lock:
            members = self._island_members.get(island.lower(), set())
            return [self._engines[name] for name in sorted(members)]

    def islands(self) -> list[str]:
        with self._lock:
            return sorted(self._island_members)

    def islands_of_engine(self, engine_name: str) -> list[str]:
        with self._lock:
            key = engine_name.lower()
            return sorted(
                island for island, members in self._island_members.items() if key in members
            )

    # ----------------------------------------------------------------- objects
    def register_object(self, name: str, engine_name: str, object_type: str,
                        replace: bool = False, **properties) -> ObjectLocation:
        """Record that an object lives in an engine."""
        with self._lock:
            key = name.lower()
            if key in self._objects and not replace:
                raise DuplicateObjectError(f"object {name!r} is already registered")
            if engine_name.lower() not in self._engines:
                raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
            existed = key in self._objects
            location = ObjectLocation(name, engine_name, object_type, dict(properties))
            self._objects[key] = location
            self._schemas.pop(key, None)
            if properties.get("temporary") and not existed:
                self._temp_version += 1
            else:
                self._bump()
            return location

    def unregister_object(self, name: str) -> None:
        with self._lock:
            removed = self._objects.pop(name.lower(), None)
            self._schemas.pop(name.lower(), None)
            if removed is None:
                return
            if removed.properties.get("temporary"):
                self._temp_version += 1
            else:
                self._bump()

    def locate(self, name: str) -> ObjectLocation:
        """Find where an object lives, checking registrations first, then engines."""
        with self._lock:
            key = name.lower()
            if key in self._objects:
                return self._objects[key]
            # Fall back to asking the engines directly (objects created out-of-band).
            for engine in self._engines.values():
                if engine.has_object(name):
                    return ObjectLocation(name, engine.name, engine.kind)
        raise ObjectNotFoundError(f"object {name!r} is not stored in any registered engine")

    def has_object(self, name: str) -> bool:
        try:
            self.locate(name)
            return True
        except ObjectNotFoundError:
            return False

    def objects(self) -> list[ObjectLocation]:
        with self._lock:
            return list(self._objects.values())

    def objects_in_engine(self, engine_name: str) -> list[str]:
        with self._lock:
            key = engine_name.lower()
            registered = [loc.name for loc in self._objects.values() if loc.engine_name == key]
            engine = self.engine(engine_name)
            unregistered = [n for n in engine.list_objects() if n.lower() not in self._objects]
            return sorted(set(registered) | set(unregistered))

    def move_object(self, name: str, target_engine: str, object_type: str | None = None) -> ObjectLocation:
        """Update an object's recorded location (the migrator calls this after a CAST)."""
        with self._lock:
            current = self.locate(name)
            if target_engine.lower() not in self._engines:
                raise CatalogError(f"target engine {target_engine!r} is not registered")
            location = ObjectLocation(
                current.name, target_engine, object_type or current.object_type, current.properties
            )
            self._objects[name.lower()] = location
            self._schemas.pop(name.lower(), None)
            self._bump()
            return location

    # ----------------------------------------------------------------- schemas
    def schema_of(self, name: str) -> Schema:
        """The relational schema an export of ``name`` would have.

        Planning a CAST only needs the schema, never the data.  Engines with
        a native (metadata-only) ``export_schema`` are asked directly every
        time, so engine-side DDL such as drop-and-recreate is always
        reflected.  Only for engines relying on the full-export fallback is
        the result cached — there a lookup costs a whole relation export —
        with the entry dropped whenever the object is re-registered, moved
        or unregistered (out-of-band mutation needs ``invalidate_schema``).
        """
        with self._lock:
            location = self.locate(name)
            engine = self.engine(location.engine_name)
            if type(engine).export_schema is not Engine.export_schema:
                return engine.export_schema(name)
            key = name.lower()
            if key not in self._schemas:
                self._schemas[key] = engine.export_schema(name)
            return self._schemas[key]

    def invalidate_schema(self, name: str | None = None) -> None:
        """Drop cached schemas (all of them when ``name`` is None).

        Call this after mutating an object's shape directly on an engine,
        outside the catalog's register/move/unregister paths.
        """
        with self._lock:
            if name is None:
                self._schemas.clear()
            else:
                self._schemas.pop(name.lower(), None)

    def describe(self) -> dict:
        """Summary used by the demo's status screen."""
        with self._lock:
            return {
                "engines": {name: engine.kind for name, engine in self._engines.items()},
                "islands": {island: sorted(members) for island, members in self._island_members.items()},
                "objects": {loc.name: loc.engine_name for loc in self._objects.values()},
            }
