"""The BigDAWG catalog: which engines exist, which islands they join, and where
every data object lives.

The catalog is what gives users *location transparency* (Section 2.1): island
queries name objects, and the middleware asks the catalog which engine stores
each object and through which islands that engine is reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import CatalogError, DuplicateObjectError, ObjectNotFoundError
from repro.engines.base import Engine


@dataclass
class ObjectLocation:
    """Where one data object lives and what it is."""

    name: str
    engine_name: str
    object_type: str  # table | array | stream | kvtable | dataset
    properties: dict = field(default_factory=dict)


class BigDawgCatalog:
    """Registry of engines, island memberships and object placements."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}
        self._island_members: dict[str, set[str]] = {}
        self._objects: dict[str, ObjectLocation] = {}

    # ----------------------------------------------------------------- engines
    def register_engine(self, engine: Engine, islands: Iterable[str] = ()) -> None:
        """Register an engine and the islands through which it is reachable."""
        key = engine.name.lower()
        if key in self._engines:
            raise DuplicateObjectError(f"engine {engine.name!r} is already registered")
        self._engines[key] = engine
        for island in islands:
            self._island_members.setdefault(island.lower(), set()).add(key)

    def engine(self, name: str) -> Engine:
        key = name.lower()
        if key not in self._engines:
            raise ObjectNotFoundError(f"engine {name!r} is not registered")
        return self._engines[key]

    def engines(self) -> list[Engine]:
        return list(self._engines.values())

    def has_engine(self, name: str) -> bool:
        return name.lower() in self._engines

    # ----------------------------------------------------------------- islands
    def add_island_member(self, island: str, engine_name: str) -> None:
        """Declare that an engine is reachable through an island."""
        if engine_name.lower() not in self._engines:
            raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
        self._island_members.setdefault(island.lower(), set()).add(engine_name.lower())

    def island_engines(self, island: str) -> list[Engine]:
        """Engines reachable through an island."""
        members = self._island_members.get(island.lower(), set())
        return [self._engines[name] for name in sorted(members)]

    def islands(self) -> list[str]:
        return sorted(self._island_members)

    def islands_of_engine(self, engine_name: str) -> list[str]:
        key = engine_name.lower()
        return sorted(
            island for island, members in self._island_members.items() if key in members
        )

    # ----------------------------------------------------------------- objects
    def register_object(self, name: str, engine_name: str, object_type: str,
                        replace: bool = False, **properties) -> ObjectLocation:
        """Record that an object lives in an engine."""
        key = name.lower()
        if key in self._objects and not replace:
            raise DuplicateObjectError(f"object {name!r} is already registered")
        if engine_name.lower() not in self._engines:
            raise ObjectNotFoundError(f"engine {engine_name!r} is not registered")
        location = ObjectLocation(name, engine_name.lower(), object_type, dict(properties))
        self._objects[key] = location
        return location

    def unregister_object(self, name: str) -> None:
        self._objects.pop(name.lower(), None)

    def locate(self, name: str) -> ObjectLocation:
        """Find where an object lives, checking registrations first, then engines."""
        key = name.lower()
        if key in self._objects:
            return self._objects[key]
        # Fall back to asking the engines directly (objects created out-of-band).
        for engine in self._engines.values():
            if engine.has_object(name):
                return ObjectLocation(name, engine.name.lower(), engine.kind)
        raise ObjectNotFoundError(f"object {name!r} is not stored in any registered engine")

    def has_object(self, name: str) -> bool:
        try:
            self.locate(name)
            return True
        except ObjectNotFoundError:
            return False

    def objects(self) -> list[ObjectLocation]:
        return list(self._objects.values())

    def objects_in_engine(self, engine_name: str) -> list[str]:
        key = engine_name.lower()
        registered = [loc.name for loc in self._objects.values() if loc.engine_name == key]
        engine = self.engine(engine_name)
        unregistered = [n for n in engine.list_objects() if n.lower() not in self._objects]
        return sorted(set(registered) | set(unregistered))

    def move_object(self, name: str, target_engine: str, object_type: str | None = None) -> ObjectLocation:
        """Update an object's recorded location (the migrator calls this after a CAST)."""
        current = self.locate(name)
        if target_engine.lower() not in self._engines:
            raise CatalogError(f"target engine {target_engine!r} is not registered")
        location = ObjectLocation(
            current.name, target_engine.lower(), object_type or current.object_type, current.properties
        )
        self._objects[name.lower()] = location
        return location

    def describe(self) -> dict:
        """Summary used by the demo's status screen."""
        return {
            "engines": {name: engine.kind for name, engine in self._engines.items()},
            "islands": {island: sorted(members) for island, members in self._island_members.items()},
            "objects": {loc.name: loc.engine_name for loc in self._objects.values()},
        }
