"""Islands of information: the user-facing abstractions of the polystore."""

from repro.core.islands.array import ArrayIsland
from repro.core.islands.base import Island
from repro.core.islands.d4m import D4MIsland
from repro.core.islands.degenerate import DegenerateIsland
from repro.core.islands.myria import MyriaIsland, MyriaPlan, MyriaStep
from repro.core.islands.relational import RelationalIsland
from repro.core.islands.text import TextIsland

__all__ = [
    "ArrayIsland",
    "D4MIsland",
    "DegenerateIsland",
    "Island",
    "MyriaIsland",
    "MyriaPlan",
    "MyriaStep",
    "RelationalIsland",
    "TextIsland",
]
