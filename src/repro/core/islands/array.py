"""The array island: AFL-style queries over array-capable engines."""

from __future__ import annotations

import re

from repro.common.errors import ExecutionError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.core.islands.base import Island
from repro.core.shims import ArrayShim
from repro.engines.array.aql import AqlCall, parse_aql
from repro.engines.array.engine import ArrayEngine
from repro.engines.array.storage import StoredArray


class ArrayIsland(Island):
    """AFL over the federation's array engines."""

    name = "array"

    _OPERATOR_RE = re.compile(
        r"^\s*(scan|filter|between|subarray|apply|project|aggregate|window|regrid)\s*\(",
        re.IGNORECASE,
    )

    def can_answer(self, query: str) -> bool:
        return bool(self._OPERATOR_RE.match(query.strip()))

    def execute(self, query: str) -> Relation:
        """Execute an AFL query; the result is flattened to a relation."""
        self.queries_executed += 1
        call = parse_aql(query)
        array_name = self._root_array(call)
        engine = self.engine_for_object(array_name)
        if isinstance(engine, ArrayEngine):
            result = engine.execute(query)
        else:
            # Materialize through the shim into a scratch array engine first.
            scratch = ArrayEngine("_array_island_scratch")
            stored = ArrayShim(engine).fetch_array(array_name)
            scratch.register(array_name, stored)
            result = scratch.execute(query)
        return self._to_relation(result)

    def execute_native(self, query: str) -> StoredArray | dict:
        """Execute and return the engine's native result (used by analytics)."""
        self.queries_executed += 1
        call = parse_aql(query)
        array_name = self._root_array(call)
        engine = self.engine_for_object(array_name)
        if isinstance(engine, ArrayEngine):
            return engine.execute(query)
        scratch = ArrayEngine("_array_island_scratch")
        scratch.register(array_name, ArrayShim(engine).fetch_array(array_name))
        return scratch.execute(query)

    def fetch_array(self, object_name: str) -> StoredArray:
        """Materialize an object as a stored array via the owning engine's shim."""
        engine = self.engine_for_object(object_name)
        return ArrayShim(engine).fetch_array(object_name)

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _root_array(call: AqlCall) -> str:
        node = call
        while isinstance(node.source, AqlCall):
            node = node.source
        return str(node.source)

    @staticmethod
    def _to_relation(result) -> Relation:
        """Flatten an array / aggregate-dict result into a relation."""
        if isinstance(result, StoredArray):
            columns = [Column(d.name, DataType.INTEGER) for d in result.schema.dimensions]
            columns += [Column(a.name, a.dtype) for a in result.schema.attributes]
            relation = Relation(Schema(columns))
            for coordinates, values in result.iter_cells():
                relation.append(list(coordinates) + [values[a.name] for a in result.schema.attributes])
            return relation
        if isinstance(result, dict):
            # Either {aggregate_name: value} or {coordinate: value} from grouping.
            keys = list(result)
            if keys and isinstance(keys[0], str):
                schema = Schema([Column(key, DataType.FLOAT) for key in keys])
                relation = Relation(schema)
                relation.append([result[key] for key in keys])
                return relation
            schema = Schema([Column("coordinate", DataType.INTEGER), Column("value", DataType.FLOAT)])
            relation = Relation(schema)
            for key in sorted(result):
                relation.append([int(key), float(result[key])])
            return relation
        raise ExecutionError(f"cannot convert array result of type {type(result).__name__} to a relation")
