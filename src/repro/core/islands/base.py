"""The island abstraction.

Each island is a front-facing abstraction with a query language, a data model
and a set of shims to the engines it federates (Section 2.1).  Every island
answers:

* ``execute(query)`` — run a query expressed in the island's language and
  return a :class:`~repro.common.schema.Relation` (the common result form all
  interfaces consume).
* ``can_answer(query)`` — a cheap syntactic check used by the cross-island
  planner when the user did not SCOPE a subquery explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.errors import ObjectNotFoundError
from repro.common.schema import Relation
from repro.core.catalog import BigDawgCatalog
from repro.core.shims import Shim, shim_for
from repro.engines.base import Engine


class Island(ABC):
    """Base class of every island."""

    #: Island name as used in SCOPE specifications, e.g. RELATIONAL(...)
    name: str = "abstract"

    def __init__(self, catalog: BigDawgCatalog) -> None:
        self.catalog = catalog
        self.queries_executed = 0

    # ------------------------------------------------------------------ shims
    def member_engines(self) -> list[Engine]:
        """Engines reachable through this island, according to the catalog."""
        return self.catalog.island_engines(self.name)

    def shim(self, engine: Engine) -> Shim:
        """Build the shim adapting an engine to this island's data model."""
        return shim_for(engine, self.name)

    def engine_for_object(self, object_name: str, for_write: bool = False) -> Engine:
        """The engine storing an object, restricted to this island's members.

        Reads go through the catalog's replica-aware routing (cheapest fresh
        healthy copy); writes must hit the primary, which is what keeps the
        freshness bookkeeping single-writer.
        """
        members = {engine.name.lower() for engine in self.member_engines()}
        if for_write:
            location = self.catalog.locate(object_name)
        else:
            location = self.catalog.locate_for_read(object_name, members=members)
        if location.engine_name not in members:
            raise ObjectNotFoundError(
                f"object {object_name!r} lives in engine {location.engine_name!r}, "
                f"which is not reachable through island {self.name!r}"
            )
        return self.catalog.engine(location.engine_name)

    # ------------------------------------------------------------------ query
    @abstractmethod
    def execute(self, query: str) -> Relation:
        """Execute a query in this island's language and return a relation."""

    @abstractmethod
    def can_answer(self, query: str) -> bool:
        """Cheap syntactic test: does this query look like this island's language?"""

    def describe(self) -> dict:
        return {
            "island": self.name,
            "engines": [engine.name for engine in self.member_engines()],
            "queries_executed": self.queries_executed,
        }
