"""The D4M island: associative-array queries over the federation.

D4M offers "a new data model, associative arrays, as an access mechanism for
existing data stores … it contains shims to Accumulo, SciDB and Postgres"
(Section 2.1.1).  The island fetches any object as an
:class:`~repro.d4m.associative_array.AssociativeArray` through the associative
shim and exposes the D4M algebra (subsetting, filtering, linear algebra) plus
a small textual query form used by SCOPE'd cross-island queries::

    ASSOC notes ROWS patient_001,patient_002            -- subset rows
    ASSOC vitals COLS heart_rate* FILTER > 100          -- subset columns, filter values
    ASSOC prescriptions DEGREE ROWS                     -- per-row non-zero counts
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType, infer_type
from repro.core.islands.base import Island
from repro.core.shims import AssociativeShim
from repro.d4m.associative_array import AssociativeArray


_ASSOC_RE = re.compile(
    r"^\s*assoc\s+([A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\s+rows\s+(\S+))?"
    r"(?:\s+cols\s+(\S+))?"
    r"(?:\s+filter\s+(<=|>=|<|>|=)\s*(-?[0-9.]+))?"
    r"(?:\s+(degree)\s+(rows|cols))?\s*$",
    re.IGNORECASE,
)


class D4MIsland(Island):
    """Associative arrays over every shimmed engine."""

    name = "d4m"

    def can_answer(self, query: str) -> bool:
        return bool(_ASSOC_RE.match(query.strip()))

    # ------------------------------------------------------------ programmatic
    def fetch(self, object_name: str) -> AssociativeArray:
        """Fetch any catalogued object as an associative array."""
        self.queries_executed += 1
        engine = self.engine_for_object(object_name)
        return AssociativeShim(engine).fetch_associative(object_name)

    # ----------------------------------------------------------------- textual
    def execute(self, query: str) -> Relation:
        self.queries_executed += 1
        match = _ASSOC_RE.match(query.strip())
        if match is None:
            raise ParseError(f"not a D4M island query: {query!r}")
        object_name, rows, cols, op, literal, degree, degree_axis = match.groups()
        engine = self.engine_for_object(object_name)
        assoc = AssociativeShim(engine).fetch_associative(object_name)
        if rows:
            assoc = assoc.subset_rows(rows.split(","))
        if cols:
            assoc = assoc.subset_cols(cols.split(","))
        if op:
            threshold = float(literal)
            comparators = {
                "<": lambda v: _numeric_or_none(v) is not None and _numeric_or_none(v) < threshold,
                "<=": lambda v: _numeric_or_none(v) is not None and _numeric_or_none(v) <= threshold,
                ">": lambda v: _numeric_or_none(v) is not None and _numeric_or_none(v) > threshold,
                ">=": lambda v: _numeric_or_none(v) is not None and _numeric_or_none(v) >= threshold,
                "=": lambda v: _numeric_or_none(v) == threshold,
            }
            assoc = assoc.filter_values(comparators[op])
        if degree:
            totals = assoc.sum_rows() if degree_axis.lower() == "rows" else assoc.sum_cols()
            schema = Schema([Column("key", DataType.TEXT), Column("degree", DataType.FLOAT)])
            relation = Relation(schema)
            for key in sorted(totals):
                relation.append([key, totals[key]])
            return relation
        return self.to_relation(assoc)

    @staticmethod
    def to_relation(assoc: AssociativeArray) -> Relation:
        """Flatten an associative array to (row, col, value) triples.

        The value column's type is the common type of every stored value; mixed
        numeric/text content degrades to TEXT.
        """
        from repro.common.types import common_type

        value_type: DataType | None = None
        for entry in assoc.entries():
            entry_type = infer_type(entry.value)
            if value_type is None:
                value_type = entry_type
            else:
                try:
                    value_type = common_type(value_type, entry_type)
                except Exception:  # noqa: BLE001 - incompatible types degrade to text
                    value_type = DataType.TEXT
                    break
        if value_type is None:
            value_type = DataType.TEXT
        schema = Schema(
            [Column("row", DataType.TEXT), Column("col", DataType.TEXT), Column("value", value_type)]
        )
        relation = Relation(schema)
        for entry in assoc.entries():
            relation.append([entry.row, entry.col, entry.value])
        return relation


def _numeric_or_none(value) -> float | None:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
