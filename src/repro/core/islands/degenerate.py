"""Degenerate islands: the full functionality of a single storage engine.

An island exposes the *intersection* of its engines' capabilities; anything an
engine can do beyond that intersection is reached through its degenerate
island, which simply forwards native queries to that one engine (Section 2.1).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import UnsupportedOperationError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType, infer_type
from repro.core.catalog import BigDawgCatalog
from repro.core.islands.base import Island
from repro.engines.array.engine import ArrayEngine
from repro.engines.array.storage import StoredArray
from repro.engines.base import Engine
from repro.engines.keyvalue.engine import KeyValueEngine
from repro.engines.relational.engine import RelationalEngine
from repro.engines.streaming.engine import StreamingEngine


class DegenerateIsland(Island):
    """A pass-through island bound to exactly one engine."""

    def __init__(self, catalog: BigDawgCatalog, engine: Engine) -> None:
        super().__init__(catalog)
        self.engine = engine
        self.name = f"degenerate_{engine.name}"

    def member_engines(self) -> list[Engine]:
        return [self.engine]

    def can_answer(self, query: str) -> bool:
        # A degenerate island never claims queries; it must be SCOPEd explicitly.
        return False

    def execute(self, query: str) -> Relation:
        """Run a native query on the bound engine and coerce the result to a relation."""
        self.queries_executed += 1
        result = self.execute_native(query)
        return self._coerce(result)

    def execute_native(self, query: str) -> Any:
        """Run a native query and return the engine's native result object."""
        if isinstance(self.engine, (RelationalEngine, ArrayEngine)):
            return self.engine.execute(query)
        if isinstance(self.engine, KeyValueEngine):
            # Native access for the key-value engine is programmatic; accept a
            # tiny "GET <table> <row>" / "SCAN <table>" language for the demo.
            return self._execute_keyvalue(query)
        if isinstance(self.engine, StreamingEngine):
            return self._execute_streaming(query)
        raise UnsupportedOperationError(
            f"engine {self.engine.name!r} has no textual native interface; "
            "use its Python API through engine()"
        )

    def call(self, fn: Callable[[Engine], Any]) -> Any:
        """Programmatic escape hatch: call arbitrary engine API under the island."""
        self.queries_executed += 1
        return fn(self.engine)

    # ----------------------------------------------------------------- helpers
    def _execute_keyvalue(self, query: str) -> Any:
        parts = query.strip().split()
        if not parts:
            raise UnsupportedOperationError("empty key-value query")
        verb = parts[0].lower()
        if verb == "scan" and len(parts) >= 2:
            return self.engine.scan(parts[1])
        if verb == "get" and len(parts) >= 3:
            return self.engine.get_row(parts[1], parts[2])
        raise UnsupportedOperationError(
            f"unsupported key-value query {query!r}; use 'SCAN <table>' or 'GET <table> <row>'"
        )

    def _execute_streaming(self, query: str) -> Any:
        parts = query.strip().split()
        if len(parts) >= 2 and parts[0].lower() == "stats":
            return self.engine.statistics()
        if len(parts) >= 2 and parts[0].lower() == "export":
            return self.engine.export_relation(parts[1])
        raise UnsupportedOperationError(
            f"unsupported streaming query {query!r}; use 'EXPORT <stream>' or 'STATS <stream>'"
        )

    def _coerce(self, result: Any) -> Relation:
        if isinstance(result, Relation):
            return result
        if isinstance(result, StoredArray):
            columns = [Column(d.name, DataType.INTEGER) for d in result.schema.dimensions]
            columns += [Column(a.name, a.dtype) for a in result.schema.attributes]
            relation = Relation(Schema(columns))
            for coordinates, values in result.iter_cells():
                relation.append(list(coordinates) + [values[a.name] for a in result.schema.attributes])
            return relation
        if isinstance(result, dict):
            schema = Schema([Column("key", DataType.TEXT), Column("value", DataType.TEXT)])
            relation = Relation(schema)
            for key, value in result.items():
                relation.append([str(key), str(value)])
            return relation
        if isinstance(result, list):
            schema = Schema(
                [Column("row", DataType.TEXT), Column("family", DataType.TEXT),
                 Column("qualifier", DataType.TEXT), Column("value", DataType.TEXT)]
            )
            relation = Relation(schema)
            for entry in result:
                relation.append([entry.key.row, entry.key.family, entry.key.qualifier, str(entry.value)])
            return relation
        schema = Schema([Column("value", infer_type(result))])
        relation = Relation(schema)
        relation.append([result])
        return relation
