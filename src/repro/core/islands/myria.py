"""The Myria island: relational algebra extended with iteration.

Myria's programming model is relational algebra plus iteration, with an
optimizer that picks which backend executes each piece (Section 2.1.1).  The
island exposes:

* a programmatic plan API (:class:`MyriaPlan` built from scan / select /
  project / join / group_by steps), and
* ``iterate(...)`` — run a plan repeatedly, feeding each iteration's output
  back in, until a fixpoint or an iteration cap, which is how Myria expresses
  recursive analytics such as reachability.

Backends are chosen per scan by a simple cost rule: prefer the engine that
already stores the object (no movement), breaking ties toward SQL-capable
engines which can evaluate pushed-down predicates natively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import PlanningError
from repro.common.schema import Relation, Row
from repro.core.islands.base import Island
from repro.core.shims import RelationalShim
from repro.engines.base import EngineCapability


@dataclass
class MyriaStep:
    """One relational-algebra step."""

    kind: str  # scan | select | project | join | group_by
    options: dict = field(default_factory=dict)


@dataclass
class MyriaPlan:
    """A linear plan of relational-algebra steps (joins reference a second plan)."""

    steps: list[MyriaStep] = field(default_factory=list)

    # Fluent builders -------------------------------------------------------
    def scan(self, object_name: str) -> "MyriaPlan":
        self.steps.append(MyriaStep("scan", {"object": object_name}))
        return self

    def select(self, predicate: Callable[[Row], bool]) -> "MyriaPlan":
        self.steps.append(MyriaStep("select", {"predicate": predicate}))
        return self

    def project(self, columns: list[str]) -> "MyriaPlan":
        self.steps.append(MyriaStep("project", {"columns": columns}))
        return self

    def join(self, other: "MyriaPlan", left_column: str, right_column: str) -> "MyriaPlan":
        self.steps.append(MyriaStep("join", {"other": other, "left": left_column, "right": right_column}))
        return self

    def group_by(self, keys: list[str], aggregates: dict[str, tuple[str, str]]) -> "MyriaPlan":
        """``aggregates`` maps output name -> (function, column); function in count/sum/avg/min/max."""
        self.steps.append(MyriaStep("group_by", {"keys": keys, "aggregates": aggregates}))
        return self


class MyriaIsland(Island):
    """Relational algebra with iteration over any engine with a relational shim."""

    name = "myria"

    def can_answer(self, query: str) -> bool:
        return False  # Myria queries are programmatic plans, not text.

    def execute(self, query) -> Relation:  # type: ignore[override]
        """Execute a :class:`MyriaPlan` (text queries are not part of this island)."""
        if not isinstance(query, MyriaPlan):
            raise PlanningError("the Myria island executes MyriaPlan objects")
        self.queries_executed += 1
        return self._run(query)

    def iterate(self, plan_fn: Callable[[Relation], MyriaPlan], seed: Relation,
                max_iterations: int = 25) -> tuple[Relation, int]:
        """Iterate-to-fixpoint: repeatedly build and run a plan from the previous result.

        Returns (final relation, iterations executed).  The fixpoint test is
        set equality of row tuples.
        """
        self.queries_executed += 1
        current = seed
        seen = {tuple(sorted(row.values for row in current.rows))}
        for iteration in range(1, max_iterations + 1):
            plan = plan_fn(current)
            nxt = self._run(plan)
            signature = tuple(sorted(row.values for row in nxt.rows))
            if signature in seen:
                return nxt, iteration
            seen.add(signature)
            current = nxt
        return current, max_iterations

    # ----------------------------------------------------------------- engine
    def _scan(self, object_name: str) -> Relation:
        engine = self._choose_backend(object_name)
        return RelationalShim(engine).fetch_relation(object_name)

    def _choose_backend(self, object_name: str):
        """Prefer the engine already holding the object; tie-break toward SQL engines."""
        members = self.member_engines()
        location = self.catalog.locate_for_read(
            object_name, members=[e.name for e in members]
        )
        holders = [e for e in members if e.name.lower() == location.engine_name]
        if holders:
            return holders[0]
        sql_engines = [e for e in members if e.capabilities & EngineCapability.SQL]
        if sql_engines:
            return sql_engines[0]
        if members:
            return members[0]
        return self.catalog.engine(location.engine_name)

    # -------------------------------------------------------------- evaluation
    def _run(self, plan: MyriaPlan) -> Relation:
        current: Relation | None = None
        for step in plan.steps:
            if step.kind == "scan":
                current = self._scan(step.options["object"])
            elif current is None:
                raise PlanningError("a Myria plan must start with a scan")
            elif step.kind == "select":
                predicate = step.options["predicate"]
                filtered = Relation(current.schema)
                filtered.rows.extend(row for row in current.rows if predicate(row))
                current = filtered
            elif step.kind == "project":
                columns = step.options["columns"]
                schema = current.schema.project(columns)
                projected = Relation(schema)
                for row in current.rows:
                    projected.append([row[c] for c in columns])
                current = projected
            elif step.kind == "join":
                current = self._join(current, step)
            elif step.kind == "group_by":
                current = self._group_by(current, step)
            else:
                raise PlanningError(f"unknown Myria step kind {step.kind!r}")
        if current is None:
            raise PlanningError("empty Myria plan")
        return current

    def _join(self, left: Relation, step: MyriaStep) -> Relation:
        right = self._run(step.options["other"])
        left_col, right_col = step.options["left"], step.options["right"]
        joined_schema = left.schema.prefixed("l").concat(right.schema.prefixed("r"))
        result = Relation(joined_schema)
        build: dict = {}
        for row in right.rows:
            build.setdefault(row[right_col], []).append(row)
        for row in left.rows:
            for match in build.get(row[left_col], []):
                result.append(list(row.values) + list(match.values))
        return result

    def _group_by(self, child: Relation, step: MyriaStep) -> Relation:
        from repro.engines.relational.functions import make_aggregate

        keys: list[str] = step.options["keys"]
        aggregates: dict[str, tuple[str, str]] = step.options["aggregates"]
        groups: dict[tuple, dict[str, object]] = {}
        for row in child.rows:
            group_key = tuple(row[k] for k in keys)
            if group_key not in groups:
                groups[group_key] = {
                    name: make_aggregate(fn, count_star=(column == "*"))
                    for name, (fn, column) in aggregates.items()
                }
            for name, (fn, column) in aggregates.items():
                value = 1 if column == "*" else row[column]
                groups[group_key][name].add(value)
        from repro.common.schema import Column, Schema
        from repro.common.types import DataType

        columns = [child.schema.column(k) for k in keys]
        columns += [Column(name, DataType.FLOAT) for name in aggregates]
        schema = Schema(columns)
        result = Relation(schema)
        for group_key, accumulators in groups.items():
            result.append(list(group_key) + [accumulators[name].result() for name in aggregates])
        return result
