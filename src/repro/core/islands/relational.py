"""The relational island: SQL over every engine that has a relational shim.

The island offers the *intersection* of capabilities — plain SQL — over all of
its member engines.  Queries whose tables all live in one SQL-capable engine
are pushed down and executed natively; queries touching objects stored in
non-SQL engines (or spanning engines) are executed by materializing each
referenced object through its relational shim into a scratch relational engine
and running the SQL there.
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError, TransientEngineError
from repro.common.schema import Relation
from repro.core.islands.base import Island
from repro.core.shims import RelationalShim
from repro.engines.base import EngineCapability
from repro.engines.relational.engine import RelationalEngine
from repro.engines.relational.sql.ast import SelectStatement
from repro.engines.relational.sql.parser import parse_sql


class RelationalIsland(Island):
    """SQL over the federation."""

    name = "relational"

    def can_answer(self, query: str) -> bool:
        stripped = query.strip().lower()
        return stripped.startswith(("select", "insert", "update", "delete", "create", "drop"))

    #: Statement prefixes that mutate their target objects — these must be
    #: routed to the primary copy and invalidate replicas afterwards.
    _WRITE_PREFIXES = ("insert", "update", "delete", "drop", "create", "alter")

    def execute(self, query: str) -> Relation:
        self.queries_executed += 1
        tables = self.referenced_tables(query)
        if not tables:
            # Table-free SELECT (constant expressions): run on any SQL engine.
            return self._any_sql_engine().execute(query)
        is_write = query.strip().lower().startswith(self._WRITE_PREFIXES)
        placements = {
            table: self.engine_for_object(table, for_write=is_write)
            for table in tables
        }
        engines = {engine.name for engine in placements.values()}
        # A transient dispatch failure (engine down, connection dropped) is,
        # by the retry contract, raised *before* the engine applied anything
        # — the copies did not diverge, so replicas must stay fresh: a
        # write-failover election needs one to promote.  Any other failure
        # may have half-applied, so over-invalidating stays the safe default.
        failed_before_apply = False
        try:
            if len(engines) == 1:
                only_engine = next(iter(placements.values()))
                if only_engine.capabilities & EngineCapability.SQL:
                    # Single SQL-capable engine: push the whole query down.
                    return only_engine.execute(query)
            # Cross-engine (or non-SQL source): materialize inputs into a scratch engine.
            scratch = RelationalEngine("_relational_island_scratch")
            for table, engine in placements.items():
                relation = RelationalShim(engine).fetch_relation(table)
                scratch.import_relation(table, relation)
            return scratch.execute(query)
        except TransientEngineError:
            failed_before_apply = True
            raise
        finally:
            if is_write and not failed_before_apply:
                for table, engine in placements.items():
                    # Stale-marks the other copies; a no-op without replicas.
                    if self.catalog.replicas(table):
                        self.catalog.note_object_write(table, engine.name)

    # ----------------------------------------------------------------- helpers
    def referenced_tables(self, query: str) -> list[str]:
        """Table names referenced by a SELECT (FROM and JOIN clauses, subqueries included)."""
        try:
            statement = parse_sql(query)
        except ParseError:
            # Fall back to a regex scan for non-SELECT statements.
            return self._regex_tables(query)
        if not isinstance(statement, SelectStatement):
            return self._regex_tables(query)
        tables: list[str] = []

        def visit(select: SelectStatement) -> None:
            refs = [select.from_table] + [join.table for join in select.joins]
            for ref in refs:
                if ref is None:
                    continue
                if ref.subquery is not None:
                    visit(ref.subquery)
                elif ref.name is not None:
                    tables.append(ref.name)

        visit(statement)
        # Preserve order, drop duplicates.
        seen = set()
        ordered = []
        for table in tables:
            if table.lower() not in seen:
                seen.add(table.lower())
                ordered.append(table)
        return ordered

    @staticmethod
    def _regex_tables(query: str) -> list[str]:
        matches = re.findall(r"\b(?:from|join|into|update|table)\s+([A-Za-z_][A-Za-z0-9_]*)",
                             query, flags=re.IGNORECASE)
        seen = set()
        ordered = []
        for table in matches:
            if table.lower() not in seen:
                seen.add(table.lower())
                ordered.append(table)
        return ordered

    def _any_sql_engine(self) -> RelationalEngine:
        for engine in self.member_engines():
            if isinstance(engine, RelationalEngine):
                return engine
        return RelationalEngine("_relational_island_scratch")
