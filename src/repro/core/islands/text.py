"""The text island: keyword and phrase search over text-indexed key-value tables.

Query language (one line per query)::

    SEARCH notes FOR "very sick"
    SEARCH notes FOR "very sick" MIN 3          -- rows with >= 3 matching documents
    SEARCH notes FOR "chest pain" AND "aspirin" -- documents containing both phrases
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.core.islands.base import Island
from repro.core.shims import TextShim


_SEARCH_RE = re.compile(
    r"^\s*search\s+([A-Za-z_][A-Za-z0-9_]*)\s+for\s+(.+?)(?:\s+min\s+(\d+))?\s*$",
    re.IGNORECASE,
)


class TextIsland(Island):
    """Full-text search over the federation's key-value engines."""

    name = "text"

    def can_answer(self, query: str) -> bool:
        return bool(_SEARCH_RE.match(query.strip()))

    def execute(self, query: str) -> Relation:
        self.queries_executed += 1
        match = _SEARCH_RE.match(query.strip())
        if match is None:
            raise ParseError(f"not a text island query: {query!r}")
        table, phrases_text, minimum = match.group(1), match.group(2), match.group(3)
        phrases = [p.strip().strip('"').strip("'") for p in re.split(r"\s+and\s+", phrases_text, flags=re.IGNORECASE)]
        engine = self.engine_for_object(table)
        shim = TextShim(engine)
        if minimum is not None:
            rows = self._rows_with_min(shim, table, phrases, int(minimum))
            schema = Schema([Column("row", DataType.TEXT)])
            relation = Relation(schema)
            for row in rows:
                relation.append([row])
            return relation
        postings = self._search(shim, table, phrases)
        schema = Schema(
            [Column("row", DataType.TEXT), Column("qualifier", DataType.TEXT), Column("count", DataType.INTEGER)]
        )
        relation = Relation(schema)
        for posting in postings:
            relation.append([posting.row, posting.qualifier, posting.count])
        return relation

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _search(shim: TextShim, table: str, phrases: list[str]):
        results = None
        for phrase in phrases:
            postings = {(p.row, p.qualifier): p for p in shim.search_phrase(table, phrase)}
            if results is None:
                results = postings
            else:
                results = {key: posting for key, posting in results.items() if key in postings}
        return sorted((results or {}).values(), key=lambda p: (p.row, p.qualifier))

    @staticmethod
    def _rows_with_min(shim: TextShim, table: str, phrases: list[str], minimum: int) -> list[str]:
        row_sets = []
        for phrase in phrases:
            row_sets.append(set(shim.rows_with_min_documents(table, phrase, minimum)))
        rows = set.intersection(*row_sets) if row_sets else set()
        return sorted(rows)
