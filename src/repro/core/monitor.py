"""Cross-system monitoring and workload-driven data placement.

Section 2.1: "we are investigating cross-system monitoring that will migrate
data objects between storage engines as query workloads change.  We are
building a monitoring system that will re-execute portions of a query workload
on multiple engines, learning which engines excel at which types of queries."

Two pieces implement that here:

* :class:`ExecutionMonitor` — records (query class, object, engine, latency)
  observations, and can *probe* a workload sample by re-executing it on every
  candidate engine through a caller-supplied runner.
* :class:`MigrationAdvisor` — from the monitor's observations, recommends
  moving an object to the engine with the lowest expected latency for the
  object's dominant query class, and can apply the recommendation through the
  CAST migrator.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from statistics import mean
from typing import Callable

from repro.core.cast import CastMigrator
from repro.core.catalog import BigDawgCatalog


@dataclass(frozen=True)
class Observation:
    """One measured query execution."""

    query_class: str  # e.g. "sql_filter", "linear_algebra", "text_search"
    object_name: str
    engine_name: str
    seconds: float


@dataclass
class MigrationRecommendation:
    """Advice to move one object to a better-suited engine."""

    object_name: str
    current_engine: str
    target_engine: str
    query_class: str
    expected_speedup: float

    @property
    def worthwhile(self) -> bool:
        return self.target_engine != self.current_engine and self.expected_speedup > 1.0


class ExecutionMonitor:
    """Accumulates latency observations per (query class, object, engine)."""

    def __init__(self, window: int = 10_000) -> None:
        # Bounded: the runtime feeds one observation per completed query, so
        # an unbounded list would grow forever in a long-lived server.  Old
        # observations age out, which is also what a workload-following
        # advisor wants to learn from.
        self._observations: deque[Observation] = deque(maxlen=window)
        # The runtime records observations from many worker threads at once;
        # one lock keeps appends and snapshot reads consistent.
        self._lock = threading.Lock()

    def record(self, query_class: str, object_name: str, engine_name: str, seconds: float) -> None:
        observation = Observation(
            query_class, object_name.lower(), engine_name.lower(), seconds
        )
        with self._lock:
            self._observations.append(observation)

    def time_and_record(self, query_class: str, object_name: str, engine_name: str,
                        runner: Callable[[], object]) -> object:
        """Run ``runner``, record its latency, and return its result."""
        started = time.perf_counter()
        result = runner()
        self.record(query_class, object_name, engine_name, time.perf_counter() - started)
        return result

    def probe(self, query_class: str, object_name: str,
              runners: dict[str, Callable[[], object]]) -> dict[str, float]:
        """Re-execute one representative query on several engines; record and return latencies."""
        latencies = {}
        for engine_name, runner in runners.items():
            started = time.perf_counter()
            runner()
            elapsed = time.perf_counter() - started
            self.record(query_class, object_name, engine_name, elapsed)
            latencies[engine_name] = elapsed
        return latencies

    # -------------------------------------------------------------- statistics
    @property
    def observations(self) -> list[Observation]:
        with self._lock:
            return list(self._observations)

    def mean_latency(self, query_class: str, object_name: str, engine_name: str) -> float | None:
        samples = [
            o.seconds
            for o in self.observations
            if o.query_class == query_class
            and o.object_name == object_name.lower()
            and o.engine_name == engine_name.lower()
        ]
        return mean(samples) if samples else None

    def dominant_query_class(self, object_name: str) -> str | None:
        """The most frequent query class observed against an object."""
        counts: dict[str, int] = defaultdict(int)
        for o in self.observations:
            if o.object_name == object_name.lower():
                counts[o.query_class] += 1
        if not counts:
            return None
        return max(counts, key=counts.get)

    def best_engine(self, query_class: str, object_name: str) -> tuple[str, float] | None:
        """The engine with the lowest mean latency for a query class on an object."""
        by_engine: dict[str, list[float]] = defaultdict(list)
        for o in self.observations:
            if o.query_class == query_class and o.object_name == object_name.lower():
                by_engine[o.engine_name].append(o.seconds)
        if not by_engine:
            return None
        averaged = {engine: mean(samples) for engine, samples in by_engine.items()}
        best = min(averaged, key=averaged.get)
        return best, averaged[best]


@dataclass
class MigrationAdvisor:
    """Turns monitor observations into (and optionally applies) migrations."""

    catalog: BigDawgCatalog
    monitor: ExecutionMonitor
    migrator: CastMigrator
    applied: list[MigrationRecommendation] = field(default_factory=list)

    def recommend(self, object_name: str) -> MigrationRecommendation | None:
        """Recommend a placement for one object based on its dominant workload."""
        query_class = self.monitor.dominant_query_class(object_name)
        if query_class is None:
            return None
        best = self.monitor.best_engine(query_class, object_name)
        if best is None:
            return None
        best_engine, best_latency = best
        current = self.catalog.locate(object_name).engine_name
        current_latency = self.monitor.mean_latency(query_class, object_name, current)
        if current_latency is None or best_latency <= 0:
            expected_speedup = 1.0
        else:
            expected_speedup = current_latency / best_latency
        return MigrationRecommendation(
            object_name=object_name,
            current_engine=current,
            target_engine=best_engine,
            query_class=query_class,
            expected_speedup=expected_speedup,
        )

    def apply(self, recommendation: MigrationRecommendation, method: str = "binary",
              chunk_size: int | None = None, **cast_options) -> bool:
        """Apply a worthwhile recommendation by casting the object. Returns True if moved.

        Migrations ride the chunked streaming pipeline, so rebalancing a large
        object does not spike memory; ``chunk_size`` tunes the per-chunk row
        budget.
        """
        if not recommendation.worthwhile:
            return False
        self.migrator.cast(
            recommendation.object_name,
            recommendation.target_engine,
            method=method,
            chunk_size=chunk_size,
            drop_source=True,
            **cast_options,
        )
        self.applied.append(recommendation)
        return True

    def rebalance(self, objects: list[str], minimum_speedup: float = 1.5,
                  cast_options: dict | None = None,
                  chunk_size: int | None = None) -> list[MigrationRecommendation]:
        """Recommend-and-apply for a set of objects; returns what was moved."""
        moved = []
        for object_name in objects:
            recommendation = self.recommend(object_name)
            if recommendation is None or recommendation.expected_speedup < minimum_speedup:
                continue
            options = dict(cast_options or {})
            if chunk_size is not None:
                # The explicit argument wins over a chunk_size in cast_options.
                options["chunk_size"] = chunk_size
            if self.apply(recommendation, **options):
                moved.append(recommendation)
        return moved
