"""The BigDAWG cross-island query layer: SCOPE/CAST language, planner, executor."""

from repro.core.query.language import (
    CastSpec,
    CrossIslandQuery,
    ScopedQuery,
    parse_query,
    parse_scope,
)
from repro.core.query.planner import (
    BindingStep,
    CastStep,
    CrossIslandPlanner,
    IslandQueryStep,
    QueryPlan,
)

__all__ = [
    "BindingStep",
    "CastSpec",
    "CastStep",
    "CrossIslandPlanner",
    "CrossIslandQuery",
    "IslandQueryStep",
    "QueryPlan",
    "ScopedQuery",
    "parse_query",
    "parse_scope",
]
