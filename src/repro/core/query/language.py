"""The BigDAWG cross-island query language: SCOPE and CAST.

A BigDAWG query wraps an island query in a *scope* naming the island whose
language and semantics apply, and may contain *CAST* terms that move objects
to an engine of another island before the scoped query runs::

    RELATIONAL(SELECT * FROM CAST(waveform_history, relational) WHERE value > 5)
    ARRAY(aggregate(waveform_history, avg(value)))
    TEXT(SEARCH notes FOR "very sick" MIN 3)
    D4M(ASSOC prescriptions DEGREE ROWS)
    BIGDAWG(RELATIONAL(...))                 -- explicit outer wrapper, optional

Multi-scope queries are sequences of named bindings followed by a final scope;
each binding materializes its result as a temporary table available to later
scopes::

    WITH recent = RELATIONAL(SELECT id FROM patients WHERE age > 65)
    ARRAY(aggregate(waveform_history, avg(value)))
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import ParseError


#: Island keywords accepted as scope names.
SCOPE_NAMES = ("relational", "array", "text", "d4m", "myria", "bigdawg")

_SCOPE_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", re.DOTALL)
_CAST_RE = re.compile(
    r"\bCAST\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*,\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)",
    re.IGNORECASE,
)
_WITH_RE = re.compile(
    r"^\s*WITH\s+([A-Za-z_][A-Za-z0-9_]*)\s*=\s*", re.IGNORECASE
)


@dataclass(frozen=True)
class CastSpec:
    """One CAST(object, island) term found inside a scoped query."""

    object_name: str
    target_island: str
    original_text: str


@dataclass
class ScopedQuery:
    """One scope: the island it addresses, its inner query text, and its casts."""

    island: str
    body: str
    casts: list[CastSpec] = field(default_factory=list)

    @property
    def body_without_casts(self) -> str:
        """The inner query with every CAST(obj, island) replaced by the object name."""
        text = self.body
        for cast in self.casts:
            text = text.replace(cast.original_text, cast.object_name)
        return text


@dataclass
class CrossIslandQuery:
    """A full BigDAWG query: zero or more named bindings plus a final scope."""

    bindings: list[tuple[str, ScopedQuery]] = field(default_factory=list)
    final: ScopedQuery | None = None

    @property
    def scopes(self) -> list[ScopedQuery]:
        out = [scope for _name, scope in self.bindings]
        if self.final is not None:
            out.append(self.final)
        return out


def parse_scope(text: str) -> ScopedQuery:
    """Parse one ``ISLAND( ... )`` block (unwrapping an optional BIGDAWG wrapper)."""
    text = text.strip().rstrip(";")
    match = _SCOPE_RE.match(text)
    if match is None:
        raise ParseError(f"expected a scope such as RELATIONAL(...), got {text[:40]!r}")
    island = match.group(1).lower()
    if island not in SCOPE_NAMES:
        raise ParseError(f"unknown island scope {island!r}; expected one of {SCOPE_NAMES}")
    body, end = _matched_parentheses(text, match.end() - 1)
    if text[end:].strip():
        raise ParseError(f"unexpected trailing input after scope: {text[end:]!r}")
    if island == "bigdawg":
        return parse_scope(body)
    casts = [
        CastSpec(m.group(1), m.group(2).lower(), m.group(0))
        for m in _CAST_RE.finditer(body)
    ]
    return ScopedQuery(island=island, body=body.strip(), casts=casts)


def parse_query(text: str) -> CrossIslandQuery:
    """Parse a full BigDAWG query: optional WITH bindings, then a final scope."""
    remaining = text.strip()
    query = CrossIslandQuery()
    while True:
        match = _WITH_RE.match(remaining)
        if match is None:
            break
        name = match.group(1)
        scope_start = match.end()
        scope_match = _SCOPE_RE.match(remaining[scope_start:])
        if scope_match is None:
            raise ParseError(f"expected a scope after WITH {name} =")
        body, end = _matched_parentheses(remaining[scope_start:], scope_match.end() - 1)
        scope_text = remaining[scope_start : scope_start + end]
        query.bindings.append((name, parse_scope(scope_text)))
        remaining = remaining[scope_start + end :].strip()
    if not remaining:
        raise ParseError("a BigDAWG query needs a final scoped query")
    query.final = parse_scope(remaining)
    return query


def _matched_parentheses(text: str, open_index: int) -> tuple[str, int]:
    """Return (inner text, index just past the matching close paren)."""
    if text[open_index] != "(":
        raise ParseError("internal error: expected an open parenthesis")
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_index + 1 : i], i + 1
    raise ParseError("unbalanced parentheses in BigDAWG query")
