"""Cross-island query planning and execution.

The planner turns a parsed :class:`CrossIslandQuery` into an ordered list of
steps:

1. :class:`CastStep` — for every ``CAST(object, island)``, move the object to
   an engine that is a member of the target island (skipped when the object is
   already reachable there).
2. :class:`BindingStep` — materialize each ``WITH name = SCOPE(...)`` result
   into the relational engine as a temporary table so later scopes can read it.
3. :class:`IslandQueryStep` — run the final scoped query on its island.

Island selection for un-scoped queries: when the user supplies bare query
text, the planner asks each island ``can_answer`` and, if several overlap
(common semantics, Section 2.1), picks the one whose engines already hold the
referenced objects — the automatic-processing-choice behaviour the paper
describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import PlanningError
from repro.common.schema import Relation
from repro.core.query.language import CrossIslandQuery, ScopedQuery, parse_query

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.bigdawg import BigDawg


@dataclass
class CastStep:
    """Move an object so it becomes reachable through the target island."""

    object_name: str
    target_island: str
    target_engine: str
    method: str = "binary"
    chunk_size: int | None = None

    def describe(self) -> str:
        detail = self.method if self.chunk_size is None else f"{self.method}, chunks of {self.chunk_size}"
        return (
            f"CAST {self.object_name} -> engine {self.target_engine} "
            f"(island {self.target_island}, {detail})"
        )


@dataclass
class BindingStep:
    """Materialize a named intermediate result as a relational temp table."""

    name: str
    scope: ScopedQuery

    def describe(self) -> str:
        return f"BIND {self.name} = {self.scope.island.upper()}(...)"


@dataclass
class IslandQueryStep:
    """Run the final island query."""

    scope: ScopedQuery

    def describe(self) -> str:
        return f"EXECUTE on island {self.scope.island.upper()}"


@dataclass
class QueryPlan:
    """The ordered steps plus per-step timings filled in during execution."""

    steps: list = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {step.describe()}" for i, step in enumerate(self.steps))


class CrossIslandPlanner:
    """Builds and executes query plans against a :class:`BigDawg` instance."""

    def __init__(self, bigdawg: "BigDawg") -> None:
        self._bigdawg = bigdawg

    # ------------------------------------------------------------------ plan
    def plan(self, query: CrossIslandQuery | str, cast_method: str = "binary",
             chunk_size: int | None = None) -> QueryPlan:
        if isinstance(query, str):
            query = parse_query(query)
        if query.final is None:
            raise PlanningError("a BigDAWG query needs a final scoped query")
        plan = QueryPlan()
        for name, scope in query.bindings:
            plan.steps.extend(self._cast_steps(scope, cast_method, chunk_size))
            plan.steps.append(BindingStep(name, scope))
        plan.steps.extend(self._cast_steps(query.final, cast_method, chunk_size))
        plan.steps.append(IslandQueryStep(query.final))
        return plan

    def _cast_steps(self, scope: ScopedQuery, cast_method: str = "binary",
                    chunk_size: int | None = None) -> list[CastStep]:
        steps = []
        for cast in scope.casts:
            island = self._bigdawg.island(cast.target_island)
            members = {engine.name.lower() for engine in island.member_engines()}
            location = self._bigdawg.catalog.locate(cast.object_name)
            if location.engine_name in members:  # ObjectLocation normalizes case
                continue  # already reachable through the target island
            target_engine = self._choose_target_engine(cast.target_island)
            steps.append(
                CastStep(cast.object_name, cast.target_island, target_engine,
                         method=cast_method, chunk_size=chunk_size)
            )
        return steps

    def _choose_target_engine(self, island_name: str) -> str:
        island = self._bigdawg.island(island_name)
        members = island.member_engines()
        if not members:
            raise PlanningError(f"island {island_name!r} has no member engines to cast into")
        # Prefer the island's "natural" engine kind: relational -> relational, etc.
        preferred_kind = {
            "relational": "relational",
            "array": "array",
            "text": "keyvalue",
            "d4m": "keyvalue",
            "myria": "relational",
        }.get(island_name.lower())
        for engine in members:
            if engine.kind == preferred_kind:
                return engine.name
        return members[0].name

    # --------------------------------------------------------------- execution
    def execute(self, query: CrossIslandQuery | str, cast_method: str = "binary",
                chunk_size: int | None = None) -> Relation:
        return self.execute_plan(self.plan(query, cast_method=cast_method, chunk_size=chunk_size))

    def execute_plan(self, plan: QueryPlan) -> Relation:
        """Run a plan; cast policy comes from the fields baked into each step."""
        result: Relation | None = None
        for i, step in enumerate(plan.steps):
            started = time.perf_counter()
            if isinstance(step, CastStep):
                cast_options = self._cast_options(step)
                self._bigdawg.migrator.cast(
                    step.object_name,
                    step.target_engine,
                    method=step.method,
                    chunk_size=step.chunk_size,
                    **cast_options,
                )
            elif isinstance(step, BindingStep):
                relation = self._bigdawg.island(step.scope.island).execute(
                    step.scope.body_without_casts
                )
                self._bigdawg.materialize_temporary(step.name, relation)
            elif isinstance(step, IslandQueryStep):
                result = self._bigdawg.island(step.scope.island).execute(
                    step.scope.body_without_casts
                )
            else:  # pragma: no cover - defensive
                raise PlanningError(f"unknown plan step {type(step).__name__}")
            plan.timings[f"{i + 1}. {step.describe()}"] = time.perf_counter() - started
        if result is None:
            raise PlanningError("plan produced no final result")
        return result

    def _cast_options(self, step: CastStep) -> dict:
        """Extra import options needed by particular target engines."""
        engine = self._bigdawg.catalog.engine(step.target_engine)
        if engine.kind == "array":
            # Casting rows into the array engine: use the leading integer columns
            # as dimensions when possible.  The cached schema lookup means
            # planning never exports the source relation just to see columns.
            schema = self._bigdawg.catalog.schema_of(step.object_name)
            from repro.common.types import DataType

            dims = []
            for column in schema.columns:
                if column.dtype is DataType.INTEGER:
                    dims.append(column.name)
                else:
                    break
            if dims and len(dims) < len(schema):
                return {"dimensions": dims[:2]}
        return {}
