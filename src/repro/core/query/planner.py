"""Cross-island query planning and execution.

The planner turns a parsed :class:`CrossIslandQuery` into an ordered list of
steps:

1. :class:`CastStep` — for every ``CAST(object, island)``, move the object to
   an engine that is a member of the target island (skipped when the object is
   already reachable there).
2. :class:`BindingStep` — materialize each ``WITH name = SCOPE(...)`` result
   into the relational engine as a temporary table so later scopes can read it.
3. :class:`IslandQueryStep` — run the final scoped query on its island.

Island selection for un-scoped queries: when the user supplies bare query
text, the planner asks each island ``can_answer`` and, if several overlap
(common semantics, Section 2.1), picks the one whose engines already hold the
referenced objects — the automatic-processing-choice behaviour the paper
describes.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import CastError, PlanningError
from repro.common.schema import Relation
from repro.core.query.language import CrossIslandQuery, ScopedQuery, parse_query
from repro.observability.tracing import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.bigdawg import BigDawg


#: SQL emitted per join type by :func:`render_join_sql`.  RIGHT/FULL OUTER
#: JOIN are first-class here: the relational island executes every shape the
#: engine's planner supports, so cross-island queries can reach them too.
JOIN_SQL = {
    "inner": "JOIN",
    "left": "LEFT OUTER JOIN",
    "right": "RIGHT OUTER JOIN",
    "full": "FULL OUTER JOIN",
    "cross": "CROSS JOIN",
}


def render_join_sql(
    left: str,
    right: str,
    on: "str | tuple[str, str] | None" = None,
    join_type: str = "inner",
    columns: "list[str] | None" = None,
    where: str | None = None,
) -> str:
    """Generate relational-island SQL joining two objects.

    ``on`` is either literal join-condition SQL or a ``(left_column,
    right_column)`` equality pair; ``columns`` defaults to ``*``.  ``left``
    and ``right`` may be bare object names or ``CAST(obj, island)`` terms —
    the island query language treats both as table references.
    """
    key = join_type.lower()
    if key not in JOIN_SQL:
        raise PlanningError(
            f"unknown join type {join_type!r}; expected one of {sorted(JOIN_SQL)}"
        )
    if key == "cross":
        if on is not None:
            raise PlanningError("a CROSS JOIN takes no ON condition")
        condition = ""
    else:
        if on is None:
            raise PlanningError(f"a {key} join needs an ON condition")
        if isinstance(on, tuple):
            left_column, right_column = on
            condition = f" ON {left_column} = {right_column}"
        else:
            condition = f" ON {on}"
    select_list = ", ".join(columns) if columns else "*"
    sql = f"SELECT {select_list} FROM {left} {JOIN_SQL[key]} {right}{condition}"
    if where:
        sql += f" WHERE {where}"
    return sql


@dataclass
class CastStep:
    """Move an object so it becomes reachable through the target island.

    ``source_engine`` names the copy to export from when the planner routed
    around an unhealthy primary — a fresh replica serving the failover path;
    ``None`` means the primary.
    """

    object_name: str
    target_island: str
    target_engine: str
    method: str = "binary"
    chunk_size: int | None = None
    source_engine: str | None = None

    def describe(self) -> str:
        detail = self.method if self.chunk_size is None else f"{self.method}, chunks of {self.chunk_size}"
        if self.source_engine is not None:
            detail += f", from replica on {self.source_engine}"
        return (
            f"CAST {self.object_name} -> engine {self.target_engine} "
            f"(island {self.target_island}, {detail})"
        )


@dataclass
class BindingStep:
    """Materialize a named intermediate result as a relational temp table."""

    name: str
    scope: ScopedQuery

    def describe(self) -> str:
        return f"BIND {self.name} = {self.scope.island.upper()}(...)"


@dataclass
class IslandQueryStep:
    """Run the final island query."""

    scope: ScopedQuery

    def describe(self) -> str:
        return f"EXECUTE on island {self.scope.island.upper()}"


@dataclass
class QueryPlan:
    """The ordered steps plus per-step timings filled in during execution.

    ``dependencies[i]`` holds the indices of the steps that must complete
    before step ``i`` may run.  Serial execution simply runs steps in order
    (the order is always a valid topological sort); the concurrent runtime
    uses the dependency sets to overlap independent steps — e.g. the
    materializations of unrelated WITH bindings.
    """

    steps: list = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    dependencies: list[set[int]] = field(default_factory=list)

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {step.describe()}" for i, step in enumerate(self.steps))

    def step_dependencies(self) -> list[set[int]]:
        """Per-step prerequisite sets, falling back to strictly serial order
        when the plan was built without dependency info."""
        if len(self.dependencies) == len(self.steps):
            return [set(deps) for deps in self.dependencies]
        return [set(range(i)) for i in range(len(self.steps))]


class CrossIslandPlanner:
    """Builds and executes query plans against a :class:`BigDawg` instance."""

    def __init__(self, bigdawg: "BigDawg") -> None:
        self._bigdawg = bigdawg

    # ------------------------------------------------------------------ plan
    def plan(self, query: CrossIslandQuery | str, cast_method: str = "binary",
             chunk_size: int | None = None) -> QueryPlan:
        if isinstance(query, str):
            query = parse_query(query)
        if query.final is None:
            raise PlanningError("a BigDAWG query needs a final scoped query")
        plan = QueryPlan()
        cast_index_by_object: dict[str, int] = {}
        binding_indices: list[int] = []

        def add_step(step, deps: set[int]) -> int:
            plan.steps.append(step)
            plan.dependencies.append(deps)
            return len(plan.steps) - 1

        def add_cast_steps(scope: ScopedQuery) -> set[int]:
            indices: set[int] = set()
            for cast_step in self._cast_steps(scope, cast_method, chunk_size):
                key = cast_step.object_name.lower()
                # Two casts of the same object must not race; chain them.
                deps = {cast_index_by_object[key]} if key in cast_index_by_object else set()
                index = add_step(cast_step, deps)
                cast_index_by_object[key] = index
                indices.add(index)
            return indices

        for name, scope in query.bindings:
            cast_indices = add_cast_steps(scope)
            # A binding may reference any earlier binding by name, so it
            # conservatively waits for them; bindings of the *same* rank
            # (their casts aside) can run concurrently only when the runtime
            # proves independence — here earlier bindings are prerequisites
            # only if they exist.
            deps = cast_indices | self._binding_references(scope, plan, binding_indices)
            binding_indices.append(add_step(BindingStep(name, scope), deps))
        final_casts = add_cast_steps(query.final)
        add_step(IslandQueryStep(query.final), final_casts | set(binding_indices))
        return plan

    @staticmethod
    def _binding_references(scope: ScopedQuery, plan: QueryPlan,
                            binding_indices: list[int]) -> set[int]:
        """Indices of earlier BindingSteps whose names this scope's body mentions."""
        referenced: set[int] = set()
        for index in binding_indices:
            bound_name = plan.steps[index].name
            if re.search(rf"\b{re.escape(bound_name)}\b", scope.body, re.IGNORECASE):
                referenced.add(index)
        return referenced

    def _cast_steps(self, scope: ScopedQuery, cast_method: str = "binary",
                    chunk_size: int | None = None) -> list[CastStep]:
        steps = []
        catalog = self._bigdawg.catalog
        for cast in scope.casts:
            island = self._bigdawg.island(cast.target_island)
            members = {engine.name.lower() for engine in island.member_engines()}
            # Breaker/replica-aware reachability: a cast is needed only when
            # no fresh *healthy* copy is already inside the target island.
            fresh = catalog.fresh_locations(cast.object_name)
            healthy = [
                loc for loc in fresh if catalog.engine_is_healthy(loc.engine_name)
            ]
            if any(loc.engine_name in members for loc in healthy):
                continue  # already reachable through a healthy copy
            if not healthy and any(loc.engine_name in members for loc in fresh):
                # Reachable in principle but every copy is unhealthy — a cast
                # has nothing healthy to read from, so keep the plan as-is
                # and let dispatch-time retry/failover handle it.
                continue
            target_engine = self._choose_target_engine(cast.target_island)
            # Export from a healthy replica when the primary is down.
            primary = catalog.locate(cast.object_name)
            source_engine = None
            if healthy and primary.engine_name not in {
                loc.engine_name for loc in healthy
            }:
                source_engine = healthy[0].engine_name
            steps.append(
                CastStep(cast.object_name, cast.target_island, target_engine,
                         method=cast_method, chunk_size=chunk_size,
                         source_engine=source_engine)
            )
        return steps

    def _choose_target_engine(self, island_name: str) -> str:
        island = self._bigdawg.island(island_name)
        members = island.member_engines()
        if not members:
            raise PlanningError(f"island {island_name!r} has no member engines to cast into")
        # Prefer the island's "natural" engine kind: relational -> relational,
        # etc. — and within each preference tier, a healthy engine over one
        # whose breaker is open.
        catalog = self._bigdawg.catalog
        preferred_kind = {
            "relational": "relational",
            "array": "array",
            "text": "keyvalue",
            "d4m": "keyvalue",
            "myria": "relational",
        }.get(island_name.lower())
        natural = [engine for engine in members if engine.kind == preferred_kind]
        for pool in (natural, members):
            for engine in pool:
                if catalog.engine_is_healthy(engine.name):
                    return engine.name
        return (natural or members)[0].name

    # ------------------------------------------------------------ joins as SQL
    def join_query(
        self,
        left: str,
        right: str,
        on: "str | tuple[str, str] | None" = None,
        join_type: str = "inner",
        columns: "list[str] | None" = None,
        where: str | None = None,
    ) -> str:
        """Generate a full cross-island query joining two catalog objects.

        Either object may live outside the relational island — it is
        wrapped in a ``CAST(obj, relational)`` term, so planning emits the
        migration ahead of the join.  All five join shapes the relational
        engine executes (inner, left/right/full outer, cross) are emitted;
        RIGHT and FULL OUTER are exactly the shapes ROADMAP item (i) asked
        to make reachable cross-island.
        """
        left_ref = self._relational_table_ref(left)
        right_ref = self._relational_table_ref(right)
        body = render_join_sql(
            left_ref, right_ref, on=on, join_type=join_type, columns=columns,
            where=where,
        )
        return f"RELATIONAL({body})"

    def _relational_table_ref(self, object_name: str) -> str:
        """The object name, CAST-wrapped when not reachable relationally."""
        island = self._bigdawg.island("relational")
        members = {engine.name.lower() for engine in island.member_engines()}
        location = self._bigdawg.catalog.locate(object_name)
        if location.engine_name in members:
            return object_name
        return f"CAST({object_name}, relational)"

    def plan_join(
        self,
        left: str,
        right: str,
        on: "str | tuple[str, str] | None" = None,
        join_type: str = "inner",
        columns: "list[str] | None" = None,
        where: str | None = None,
        cast_method: str = "binary",
        chunk_size: int | None = None,
    ) -> QueryPlan:
        query = self.join_query(
            left, right, on=on, join_type=join_type, columns=columns, where=where
        )
        return self.plan(query, cast_method=cast_method, chunk_size=chunk_size)

    def execute_join(
        self,
        left: str,
        right: str,
        on: "str | tuple[str, str] | None" = None,
        join_type: str = "inner",
        columns: "list[str] | None" = None,
        where: str | None = None,
        cast_method: str = "binary",
        chunk_size: int | None = None,
    ) -> Relation:
        plan = self.plan_join(
            left, right, on=on, join_type=join_type, columns=columns, where=where,
            cast_method=cast_method, chunk_size=chunk_size,
        )
        return self.execute_plan(plan)

    # --------------------------------------------------------------- execution
    def execute(self, query: CrossIslandQuery | str, cast_method: str = "binary",
                chunk_size: int | None = None) -> Relation:
        return self.execute_plan(self.plan(query, cast_method=cast_method, chunk_size=chunk_size))

    def start(self, plan: QueryPlan) -> "PlanExecution":
        """Begin executing a plan; the caller drives steps and must ``cleanup``."""
        return PlanExecution(self, plan)

    def execute_plan(self, plan: QueryPlan) -> Relation:
        """Run a plan serially; cast policy comes from the fields baked into
        each step.  WITH-binding temporaries are dropped when the plan
        finishes (the concurrent runtime drives the same :class:`PlanExecution`
        machinery step by step, possibly in parallel)."""
        execution = self.start(plan)
        try:
            for index in range(len(plan.steps)):
                execution.run_step(index)
            return execution.finish()
        finally:
            execution.cleanup()

    def cast_is_noop(self, step: CastStep) -> bool:
        """Whether the cast's object is *already* reachable through the target
        island — e.g. because a concurrent plan (or an advisor migration)
        moved it after this plan was built.  Reachability mirrors
        :meth:`_cast_steps`: a fresh healthy copy counts; when every copy is
        unhealthy, plain freshness does (the cast could not improve things)."""
        island = self._bigdawg.island(step.target_island)
        members = {engine.name.lower() for engine in island.member_engines()}
        catalog = self._bigdawg.catalog
        fresh = catalog.fresh_locations(step.object_name)
        healthy = [loc for loc in fresh if catalog.engine_is_healthy(loc.engine_name)]
        pool = healthy or fresh
        return any(loc.engine_name in members for loc in pool)

    def _cast_options(self, step: CastStep) -> dict:
        """Extra import options needed by particular target engines."""
        engine = self._bigdawg.catalog.engine(step.target_engine)
        if engine.kind == "array":
            # Casting rows into the array engine: use the leading integer columns
            # as dimensions when possible.  The cached schema lookup means
            # planning never exports the source relation just to see columns.
            schema = self._bigdawg.catalog.schema_of(step.object_name)
            from repro.common.types import DataType

            dims = []
            for column in schema.columns:
                if column.dtype is DataType.INTEGER:
                    dims.append(column.name)
                else:
                    break
            if dims and len(dims) < len(schema):
                # All leading integer columns become dimensions: a
                # (signal, sample, window) keyed relation casts into a
                # 3-dimensional array, not a truncated 2-dimensional one.
                return {"dimensions": dims}
        return {}


#: Process-wide counter giving every plan execution a unique namespace for its
#: WITH-binding temporaries (``next`` on :func:`itertools.count` is atomic).
_EXECUTION_IDS = itertools.count(1)


class PlanExecution:
    """One in-flight execution of a :class:`QueryPlan`.

    Responsibilities beyond running steps:

    * **Session-scoped temporaries.**  WITH bindings materialize under a
      per-execution physical name (``name__p<id>``) and are dropped from both
      the engine and the catalog in :meth:`cleanup`, so repeated queries do
      not accumulate state and concurrent plans using the same binding name
      never collide on the shared relational engine.
    * **Run-time cast elision.**  Each :class:`CastStep` re-checks object
      reachability just before running and is skipped when the cast became a
      no-op after planning (another plan already moved the object).
    * **Thread safety.**  ``run_step`` may be called from several threads for
      *disjoint* steps whose dependencies are satisfied; shared bookkeeping is
      guarded by a lock.
    """

    def __init__(self, planner: "CrossIslandPlanner", plan: QueryPlan) -> None:
        self._planner = planner
        self._bigdawg = planner._bigdawg
        self.plan = plan
        self._lock = threading.Lock()
        self._result: Relation | None = None
        self._has_result = False
        namespace = f"p{next(_EXECUTION_IDS)}"
        self._renames = {
            step.name.lower(): f"{step.name}__{namespace}"
            for step in plan.steps
            if isinstance(step, BindingStep)
        }
        self._materialized: list[str] = []
        self.skipped_casts: list[int] = []

    # ------------------------------------------------------------------ steps
    def run_step(self, index: int) -> None:
        step = self.plan.steps[index]
        started = time.perf_counter()
        with get_tracer().span(
            f"step.{type(step).__name__}", kind="step", step=step.describe()
        ):
            if isinstance(step, CastStep):
                self._run_cast(index, step)
            elif isinstance(step, BindingStep):
                relation = self._bigdawg.island(step.scope.island).execute(
                    self._rewrite(step.scope.body_without_casts)
                )
                physical = self._renames[step.name.lower()]
                self._bigdawg.materialize_temporary(physical, relation)
                with self._lock:
                    self._materialized.append(physical)
            elif isinstance(step, IslandQueryStep):
                result = self._bigdawg.island(step.scope.island).execute(
                    self._rewrite(step.scope.body_without_casts)
                )
                with self._lock:
                    self._result = result
                    self._has_result = True
            else:  # pragma: no cover - defensive
                raise PlanningError(f"unknown plan step {type(step).__name__}")
        self.plan.timings[f"{index + 1}. {step.describe()}"] = time.perf_counter() - started

    def _run_cast(self, index: int, step: CastStep) -> None:
        if self._planner.cast_is_noop(step):
            with self._lock:
                self.skipped_casts.append(index)
            return
        try:
            self._bigdawg.migrator.cast(
                step.object_name,
                step.target_engine,
                method=step.method,
                chunk_size=step.chunk_size,
                source_engine=step.source_engine,
                **self._planner._cast_options(step),
            )
        except CastError:
            # Lost a race: another execution moved the object between our
            # no-op check and the cast.  If it is reachable now, that is
            # exactly the state this step wanted.
            if not self._planner.cast_is_noop(step):
                raise
            with self._lock:
                self.skipped_casts.append(index)

    def _rewrite(self, body: str) -> str:
        """Swap logical WITH-binding names for this execution's physical names."""
        for logical, physical in self._renames.items():
            body = re.sub(rf"\b{re.escape(logical)}\b", physical, body, flags=re.IGNORECASE)
        return body

    # ----------------------------------------------------------------- result
    def finish(self) -> Relation:
        with self._lock:
            if not self._has_result or self._result is None:
                raise PlanningError("plan produced no final result")
            return self._result

    def cleanup(self) -> None:
        """Drop every temporary this execution materialized (engine + catalog)."""
        with self._lock:
            materialized, self._materialized = self._materialized, []
        for name in materialized:
            self._bigdawg.drop_temporary(name)
