"""Island semantic probing: finding common sub-islands.

Section 2.1: "when multiple islands implement common functionality with the
same semantics, then BigDAWG can decide which island will do the processing
automatically.  To identify such common sub-islands, we are constructing a
testing system that will probe islands looking for areas of common semantics."

:class:`SemanticProber` runs a battery of *probe cases* — the same logical
question phrased in each island's language — against every island that claims
it can answer, and compares the results.  Islands that agree on all probes of
a functionality group form a *common sub-island* for that functionality, which
the planner may then treat as interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.schema import Relation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.bigdawg import BigDawg


@dataclass
class ProbeCase:
    """One functionality probe: per-island query text and a result normalizer."""

    name: str
    functionality: str  # e.g. "filter", "aggregate", "count"
    island_queries: dict[str, str]
    #: Reduce a Relation to a canonical, comparable value (default: sorted row tuples).
    normalizer: Callable[[Relation], object] | None = None

    def normalize(self, relation: Relation) -> object:
        if self.normalizer is not None:
            return self.normalizer(relation)
        return tuple(sorted(tuple(row.values) for row in relation.rows))


@dataclass
class ProbeResult:
    """The outcome of one probe on one island."""

    case: str
    island: str
    succeeded: bool
    value: object = None
    error: str | None = None


@dataclass
class SemanticProber:
    """Runs probe cases and groups islands by agreeing semantics."""

    bigdawg: "BigDawg"
    results: list[ProbeResult] = field(default_factory=list)

    def run_case(self, case: ProbeCase) -> list[ProbeResult]:
        outcomes = []
        for island_name, query in case.island_queries.items():
            try:
                relation = self.bigdawg.island(island_name).execute(query)
                outcomes.append(
                    ProbeResult(case.name, island_name, True, case.normalize(relation))
                )
            except Exception as exc:  # noqa: BLE001 - probe failures are data
                outcomes.append(ProbeResult(case.name, island_name, False, error=str(exc)))
        self.results.extend(outcomes)
        return outcomes

    def run_all(self, cases: list[ProbeCase]) -> dict[str, list[ProbeResult]]:
        return {case.name: self.run_case(case) for case in cases}

    def common_sub_islands(self, cases: list[ProbeCase]) -> dict[str, list[str]]:
        """Islands that returned identical values for every probe of a functionality.

        Returns ``{functionality: [island, ...]}`` with islands listed only when
        at least two agree (a sub-island of one is not useful to the planner).
        """
        by_functionality: dict[str, dict[str, list[object]]] = {}
        for case in cases:
            outcomes = [r for r in self.results if r.case == case.name]
            if not outcomes:
                outcomes = self.run_case(case)
            for outcome in outcomes:
                if not outcome.succeeded:
                    continue
                by_functionality.setdefault(case.functionality, {}).setdefault(
                    outcome.island, []
                ).append(outcome.value)
        agreements: dict[str, list[str]] = {}
        for functionality, values_by_island in by_functionality.items():
            # Group islands by their full tuple of probe answers.
            signature_groups: dict[object, list[str]] = {}
            for island, values in values_by_island.items():
                signature_groups.setdefault(tuple(values), []).append(island)
            best_group = max(signature_groups.values(), key=len, default=[])
            if len(best_group) >= 2:
                agreements[functionality] = sorted(best_group)
        return agreements
