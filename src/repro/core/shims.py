"""Shims: the connectors between islands and storage engines.

A shim adapts one engine to one island's data model (Figure 1).  Islands never
talk to engines directly; they ask their shims to (a) fetch an object in the
island's model or (b) push an island query down to the engine when the engine
can run it natively.

Three shim families exist, one per island data model:

* :class:`RelationalShim` — object as a :class:`Relation`, native SQL pushdown
  when the engine speaks SQL.
* :class:`ArrayShim` — object as a :class:`StoredArray`, native AFL pushdown
  when the engine is the array engine.
* :class:`AssociativeShim` — object as a D4M :class:`AssociativeArray`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import UnsupportedOperationError
from repro.common.schema import Relation
from repro.d4m.associative_array import AssociativeArray
from repro.engines.array.engine import ArrayEngine
from repro.engines.array.storage import StoredArray
from repro.engines.base import Engine, EngineCapability
from repro.engines.keyvalue.engine import KeyValueEngine
from repro.engines.relational.engine import RelationalEngine
from repro.engines.tiledb.engine import TileDBEngine

if TYPE_CHECKING:  # pragma: no cover
    pass


class Shim:
    """Base shim: wraps one engine for one island."""

    island: str = "abstract"

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def supports_native(self) -> bool:
        """Whether island queries can be pushed down to the engine unchanged."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.engine.name})"


class RelationalShim(Shim):
    """Adapts any engine to the relational island."""

    island = "relational"

    def supports_native(self) -> bool:
        return bool(self.engine.capabilities & EngineCapability.SQL)

    def fetch_relation(self, object_name: str) -> Relation:
        """Fetch an object as a relation, whatever the engine's native model."""
        return self.engine.export_relation(object_name)

    def execute_sql(self, sql: str) -> Relation:
        """Push a SQL query down to the engine (only for SQL-capable engines)."""
        if not self.supports_native():
            raise UnsupportedOperationError(
                f"engine {self.engine.name!r} cannot execute SQL natively"
            )
        return self.engine.execute(sql)  # type: ignore[attr-defined]

    def store_relation(self, object_name: str, relation: Relation, **options) -> None:
        self.engine.import_relation(object_name, relation, **options)


class ArrayShim(Shim):
    """Adapts array-capable engines to the array island."""

    island = "array"

    def supports_native(self) -> bool:
        return isinstance(self.engine, ArrayEngine)

    def fetch_array(self, object_name: str) -> StoredArray:
        """Materialize an object as a StoredArray."""
        if isinstance(self.engine, ArrayEngine):
            return self.engine.array(object_name)
        if isinstance(self.engine, TileDBEngine):
            # Convert a tiled array through its relation form into a dense array.
            scratch = ArrayEngine(f"_scratch_{self.engine.name}")
            relation = self.engine.export_relation(object_name)
            ndim = self.engine.array(object_name).schema.ndim
            dims = [f"d{i}" for i in range(ndim)]
            scratch.import_relation(object_name, relation, dimensions=dims)
            return scratch.array(object_name)
        if not (self.engine.capabilities & EngineCapability.ARRAY):
            raise UnsupportedOperationError(
                f"engine {self.engine.name!r} is not reachable through the array island"
            )
        raise UnsupportedOperationError(
            f"no array conversion implemented for engine {self.engine.name!r}"
        )

    def execute_afl(self, afl: str):
        """Push an AFL query down to a native array engine."""
        if not isinstance(self.engine, ArrayEngine):
            raise UnsupportedOperationError(
                f"engine {self.engine.name!r} cannot execute AFL natively"
            )
        return self.engine.execute(afl)


class TextShim(Shim):
    """Adapts text-search-capable engines to the text island."""

    island = "text"

    def supports_native(self) -> bool:
        return bool(self.engine.capabilities & EngineCapability.TEXT_SEARCH)

    def search_phrase(self, object_name: str, phrase: str):
        if not isinstance(self.engine, KeyValueEngine):
            raise UnsupportedOperationError(
                f"engine {self.engine.name!r} does not support text search"
            )
        return self.engine.text_search(object_name, phrase)

    def rows_with_min_documents(self, object_name: str, phrase: str, minimum: int) -> list[str]:
        if not isinstance(self.engine, KeyValueEngine):
            raise UnsupportedOperationError(
                f"engine {self.engine.name!r} does not support text search"
            )
        return self.engine.rows_with_min_documents(object_name, phrase, minimum)


class AssociativeShim(Shim):
    """Adapts engines to the D4M island's associative-array model."""

    island = "d4m"

    def fetch_associative(self, object_name: str) -> AssociativeArray:
        """Build an associative array from the engine's object.

        * Key-value tables map naturally: row key x (family:qualifier) -> value.
        * Relations use their first column as the row key and remaining columns
          as column keys.
        * Arrays use stringified coordinates.
        """
        if isinstance(self.engine, KeyValueEngine):
            table = self.engine.table(object_name)
            out = AssociativeArray()
            for entry in table.store.scan():
                out.set(entry.key.row, f"{entry.key.family}:{entry.key.qualifier}", entry.value)
            return out
        relation = self.engine.export_relation(object_name)
        names = relation.schema.names
        out = AssociativeArray()
        if isinstance(self.engine, RelationalEngine):
            key_column = names[0]
            for row in relation:
                for column in names[1:]:
                    value = row[column]
                    if value is not None:
                        out.set(str(row[key_column]), column, value)
            return out
        # Array-like engines: last column is the value, the rest are coordinates.
        value_column = names[-1]
        for row in relation:
            row_key = str(row[names[0]])
            col_key = ",".join(str(row[n]) for n in names[1:-1]) or value_column
            out.set(row_key, col_key, row[value_column])
        return out


def shim_for(engine: Engine, island: str) -> Shim:
    """Factory: the right shim class for an engine/island pair."""
    island_key = island.lower()
    if island_key in ("relational", "myria"):
        return RelationalShim(engine)
    if island_key == "array":
        return ArrayShim(engine)
    if island_key == "text":
        return TextShim(engine)
    if island_key == "d4m":
        return AssociativeShim(engine)
    raise UnsupportedOperationError(f"no shim family defined for island {island!r}")
