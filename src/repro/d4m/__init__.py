"""D4M associative arrays: one data model for spreadsheets, matrices and graphs."""

from repro.d4m.associative_array import AssocEntry, AssociativeArray

__all__ = ["AssocEntry", "AssociativeArray"]
