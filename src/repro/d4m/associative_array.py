"""D4M associative arrays.

D4M's data model unifies spreadsheets, matrices and graphs in one structure:
an associative array maps (row key, column key) pairs to values, where keys
are strings and values are numbers or strings (paper, Section 2.1.1).  The
algebra supports filtering, subsetting (by row/column key sets or prefixes),
element-wise addition/multiplication and matrix multiplication — enough for
the D4M island to express its queries over any shimmed engine.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class AssocEntry:
    """One (row, column, value) triple."""

    row: str
    col: str
    value: Any


class AssociativeArray:
    """A sparse two-dimensional map from (row key, column key) to value."""

    def __init__(self, entries: Iterable[tuple[str, str, Any]] | None = None) -> None:
        self._data: dict[tuple[str, str], Any] = {}
        if entries is not None:
            for row, col, value in entries:
                self.set(row, col, value)

    # ------------------------------------------------------------------ basic
    def set(self, row: str, col: str, value: Any) -> None:
        if value is None:
            self._data.pop((str(row), str(col)), None)
        else:
            self._data[(str(row), str(col))] = value

    def get(self, row: str, col: str, default: Any = None) -> Any:
        return self._data.get((str(row), str(col)), default)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        return self._data == other._data

    def entries(self) -> Iterator[AssocEntry]:
        for (row, col), value in sorted(self._data.items()):
            yield AssocEntry(row, col, value)

    @property
    def row_keys(self) -> list[str]:
        return sorted({row for row, _col in self._data})

    @property
    def col_keys(self) -> list[str]:
        return sorted({col for _row, col in self._data})

    def copy(self) -> "AssociativeArray":
        out = AssociativeArray()
        out._data = dict(self._data)
        return out

    def __repr__(self) -> str:
        return f"AssociativeArray({len(self._data)} entries, {len(self.row_keys)}x{len(self.col_keys)})"

    # -------------------------------------------------------------- subsetting
    def subset_rows(self, rows: Iterable[str] | str) -> "AssociativeArray":
        """Keep entries whose row key is in ``rows`` (or starts with a prefix ending in '*')."""
        return self._subset(rows, axis=0)

    def subset_cols(self, cols: Iterable[str] | str) -> "AssociativeArray":
        """Keep entries whose column key is in ``cols`` (or matches a '*' prefix)."""
        return self._subset(cols, axis=1)

    def _subset(self, keys: Iterable[str] | str, axis: int) -> "AssociativeArray":
        if isinstance(keys, str):
            keys = [keys]
        exact: set[str] = set()
        prefixes: list[str] = []
        for key in keys:
            if key.endswith("*"):
                prefixes.append(key[:-1])
            else:
                exact.add(key)

        def matches(key: str) -> bool:
            if key in exact:
                return True
            return any(key.startswith(prefix) for prefix in prefixes)

        out = AssociativeArray()
        for (row, col), value in self._data.items():
            target = row if axis == 0 else col
            if matches(target):
                out.set(row, col, value)
        return out

    def filter_values(self, predicate: Callable[[Any], bool]) -> "AssociativeArray":
        """Keep entries whose value satisfies the predicate."""
        out = AssociativeArray()
        for (row, col), value in self._data.items():
            if predicate(value):
                out.set(row, col, value)
        return out

    # ------------------------------------------------------------ element-wise
    def add(self, other: "AssociativeArray") -> "AssociativeArray":
        """Element-wise sum (union of keys; missing values count as 0)."""
        out = self.copy()
        for (row, col), value in other._data.items():
            existing = out.get(row, col)
            if existing is None:
                out.set(row, col, value)
            else:
                out.set(row, col, self._numeric(existing) + self._numeric(value))
        return out

    def multiply_elementwise(self, other: "AssociativeArray") -> "AssociativeArray":
        """Element-wise product (intersection of keys)."""
        out = AssociativeArray()
        for key, value in self._data.items():
            if key in other._data:
                out.set(key[0], key[1], self._numeric(value) * self._numeric(other._data[key]))
        return out

    def matmul(self, other: "AssociativeArray") -> "AssociativeArray":
        """Associative matrix multiplication: (A @ B)[r, c] = sum_k A[r, k] * B[k, c]."""
        by_col: dict[str, list[tuple[str, Any]]] = defaultdict(list)
        for (row, col), value in other._data.items():
            by_col[row].append((col, value))
        out = AssociativeArray()
        sums: dict[tuple[str, str], float] = defaultdict(float)
        for (row, k), value in self._data.items():
            for col, other_value in by_col.get(k, []):
                sums[(row, col)] += self._numeric(value) * self._numeric(other_value)
        for (row, col), total in sums.items():
            out.set(row, col, total)
        return out

    def transpose(self) -> "AssociativeArray":
        out = AssociativeArray()
        for (row, col), value in self._data.items():
            out.set(col, row, value)
        return out

    # ------------------------------------------------------------- aggregates
    def sum_rows(self) -> dict[str, float]:
        """Sum of values per row key (graph out-degree when values are 1).

        Non-numeric values count as 1, so the row degree of raw (text-valued)
        data is simply its number of entries — D4M's usual degree semantics.
        """
        totals: dict[str, float] = defaultdict(float)
        for (row, _col), value in self._data.items():
            totals[row] += self._numeric_or_one(value)
        return dict(totals)

    def sum_cols(self) -> dict[str, float]:
        """Sum of values per column key (non-numeric values count as 1)."""
        totals: dict[str, float] = defaultdict(float)
        for (_row, col), value in self._data.items():
            totals[col] += self._numeric_or_one(value)
        return dict(totals)

    def nnz(self) -> int:
        """Number of stored (non-null) entries."""
        return len(self._data)

    # ------------------------------------------------------------ conversions
    def to_matrix(self) -> tuple[np.ndarray, list[str], list[str]]:
        """Densify to (matrix, row labels, column labels)."""
        rows = self.row_keys
        cols = self.col_keys
        matrix = np.zeros((len(rows), len(cols)))
        row_index = {key: i for i, key in enumerate(rows)}
        col_index = {key: i for i, key in enumerate(cols)}
        for (row, col), value in self._data.items():
            matrix[row_index[row], col_index[col]] = self._numeric(value)
        return matrix, rows, cols

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, rows: list[str], cols: list[str]) -> "AssociativeArray":
        matrix = np.asarray(matrix)
        if matrix.shape != (len(rows), len(cols)):
            raise SchemaError("matrix shape does not match the provided labels")
        out = cls()
        for i, row in enumerate(rows):
            for j, col in enumerate(cols):
                if matrix[i, j] != 0:
                    out.set(row, col, float(matrix[i, j]))
        return out

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str]]) -> "AssociativeArray":
        """Build a graph adjacency associative array (value 1 per edge, summed for multi-edges)."""
        out = cls()
        for source, target in edges:
            existing = out.get(source, target, 0)
            out.set(source, target, existing + 1)
        return out

    @staticmethod
    def _numeric(value: Any) -> float:
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise SchemaError(f"value {value!r} is not numeric; numeric algebra requires numbers")

    @staticmethod
    def _numeric_or_one(value: Any) -> float:
        if isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool):
            return float(value)
        return 1.0
