"""Storage engines federated by BigDAWG.

Each subpackage is a self-contained engine with its own data model and query
interface, mirroring the backends in the paper:

* :mod:`repro.engines.relational` — PostgreSQL stand-in (SQL over row storage).
* :mod:`repro.engines.array` — SciDB stand-in (chunked multidimensional arrays).
* :mod:`repro.engines.keyvalue` — Accumulo stand-in (sorted key-value + text index).
* :mod:`repro.engines.streaming` — S-Store stand-in (transactional stream processing).
* :mod:`repro.engines.tiledb` — TileDB prototype (dense/sparse tiles).
* :mod:`repro.engines.tupleware` — Tupleware prototype (compiled UDF workflows).
"""

from repro.engines.base import Engine, EngineCapability

__all__ = ["Engine", "EngineCapability"]
