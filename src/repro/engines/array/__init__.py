"""The array engine (SciDB stand-in): chunked multidimensional arrays with AFL operators."""

from repro.engines.array.engine import ArrayEngine
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.array.storage import ChunkSynopsis, StoredArray

__all__ = [
    "ArrayEngine",
    "ArraySchema",
    "Attribute",
    "ChunkSynopsis",
    "Dimension",
    "StoredArray",
]
