"""A small AFL-style query language for the array engine.

The array island accepts textual queries in a functional AFL syntax::

    aggregate(waveforms, avg(value))
    filter(waveforms, value > 0.5)
    between(waveforms, 0, 0, 99, 3)
    subarray(waveforms, 0, 0, 99, 3)
    window(waveforms, value, 8, avg)
    regrid(waveforms, value, 100, max)
    apply(waveforms, scaled, value * 2.0)
    project(waveforms, value)
    scan(waveforms)

Nested calls are supported (the inner call's result feeds the outer call)::

    aggregate(filter(waveforms, value > 0.5), count(value))
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ParseError


@dataclass
class AqlCall:
    """One parsed AFL call: an operator name plus raw argument strings.

    The first argument may itself be a nested :class:`AqlCall`.
    """

    operator: str
    arguments: list[Any] = field(default_factory=list)

    @property
    def source(self) -> "AqlCall | str":
        """The input array: a name or a nested call."""
        if not self.arguments:
            raise ParseError(f"{self.operator} requires at least an array argument")
        return self.arguments[0]

    def argument_strings(self) -> list[str]:
        """All arguments after the source, as stripped strings."""
        return [str(arg).strip() for arg in self.arguments[1:]]


_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def parse_aql(text: str) -> AqlCall:
    """Parse a (possibly nested) AFL-style call."""
    text = text.strip().rstrip(";")
    call, consumed = _parse_call(text, 0)
    if consumed != len(text):
        raise ParseError(f"unexpected trailing input in AFL query: {text[consumed:]!r}", consumed)
    return call


def _parse_call(text: str, start: int) -> tuple[AqlCall, int]:
    match = re.match(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", text[start:])
    if match is None:
        raise ParseError(f"expected an operator call at offset {start}", start)
    operator = match.group(1).lower()
    pos = start + match.end()
    arguments: list[Any] = []
    depth = 1
    current_start = pos
    while pos < len(text):
        ch = text[pos]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                fragment = text[current_start:pos].strip()
                if fragment:
                    arguments.append(_maybe_nested(fragment))
                return AqlCall(operator, arguments), pos + 1
        elif ch == "," and depth == 1:
            fragment = text[current_start:pos].strip()
            if fragment:
                arguments.append(_maybe_nested(fragment))
            current_start = pos + 1
        pos += 1
    raise ParseError("unbalanced parentheses in AFL query", start)


def _maybe_nested(fragment: str) -> Any:
    """If the fragment is itself an operator call over an array, parse it recursively."""
    stripped = fragment.strip()
    match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\(", stripped)
    if match and stripped.endswith(")"):
        operator = match.group(1).lower()
        # Aggregate specifications such as avg(value) stay as plain strings;
        # only array operators are parsed recursively.
        if operator in _ARRAY_OPERATORS:
            call, consumed = _parse_call(stripped, 0)
            if consumed == len(stripped):
                return call
    return stripped


_ARRAY_OPERATORS = {
    "scan", "filter", "between", "subarray", "apply", "project",
    "aggregate", "window", "regrid", "cross_join",
}


def is_valid_identifier(name: str) -> bool:
    """True for a bare array or attribute name."""
    return bool(_NAME_RE.match(name))
