"""The array engine facade: the SciDB stand-in federated by BigDAWG.

Arrays are created from schemas or numpy data, queried either through the
programmatic operator API (:mod:`repro.engines.array.operators`) or through
AFL-style text queries, and exchanged with other engines as relations whose
leading columns are the dimension coordinates.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import (
    DuplicateObjectError,
    ExecutionError,
    ObjectNotFoundError,
    ParseError,
)
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.engines.array import operators as ops
from repro.engines.array.aql import AqlCall, parse_aql
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.array.storage import StoredArray
from repro.common.cancellation import check_cancelled
from repro.engines.base import DEFAULT_CHUNK_ROWS, Engine, EngineCapability, relation_chunks


class ArrayEngine(Engine):
    """An in-process chunked array database."""

    kind = "array"

    def __init__(self, name: str = "scidb") -> None:
        super().__init__(name)
        self._arrays: dict[str, StoredArray] = {}

    # ------------------------------------------------------------- Engine API
    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.ARRAY | EngineCapability.LINEAR_ALGEBRA

    def list_objects(self) -> list[str]:
        return sorted(self._arrays)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._arrays

    def export_relation(self, name: str) -> Relation:
        """Flatten an array to rows: dimension coordinates then attribute values."""
        array = self.array(name)
        columns = [Column(d.name, DataType.INTEGER) for d in array.schema.dimensions]
        columns += [Column(a.name, a.dtype) for a in array.schema.attributes]
        relation = Relation(Schema(columns))
        for coordinates, values in array.iter_cells():
            relation.append(list(coordinates) + [values[a.name] for a in array.schema.attributes])
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        """Build an array from a relation.

        By default the first column becomes the single dimension (its values
        must be integers); remaining columns become attributes.  Pass
        ``dimensions=[...]`` to treat several leading columns as dimensions.
        """
        self.import_chunks(name, relation.schema, [relation], **options)

    def export_schema(self, name: str) -> Schema:
        """The relational schema of a flattened export, from metadata alone."""
        array = self.array(name)
        columns = [Column(d.name, DataType.INTEGER) for d in array.schema.dimensions]
        columns += [Column(a.name, a.dtype) for a in array.schema.attributes]
        return Schema(columns)

    def export_chunks(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """Stream populated cells as bounded chunks of flattened rows."""
        array = self.array(name)
        rows = (
            list(coordinates) + [values[a.name] for a in array.schema.attributes]
            for coordinates, values in array.iter_cells()
        )
        return relation_chunks(self.export_schema(name), rows, chunk_size)

    def import_chunks(self, name: str, schema: Schema, chunks: Iterable[Relation],
                      **options: Any) -> None:
        """Accumulate cells chunk by chunk, then build the array once the
        dimension bounds are known (arrays need their extent up front)."""
        if name.lower() in self._arrays and not options.get("replace", True):
            raise DuplicateObjectError(f"array {name!r} already exists")
        dim_columns: list[str] = options.get("dimensions") or [schema.names[0]]
        chunk_length = int(options.get("chunk_length", 10_000))
        attr_columns = [c for c in schema.columns if c.name not in dim_columns]
        if not attr_columns:
            raise ExecutionError("importing an array requires at least one attribute column")
        cells: list[tuple[tuple[int, ...], dict[str, Any]]] = []
        bounds: list[tuple[int, int]] | None = None
        for chunk in chunks:
            for row in chunk:
                coordinates = tuple(int(row[d]) for d in dim_columns)
                if bounds is None:
                    bounds = [(c, c) for c in coordinates]
                else:
                    bounds = [
                        (min(lo, c), max(hi, c))
                        for (lo, hi), c in zip(bounds, coordinates)
                    ]
                cells.append((coordinates, {c.name: row[c.name] for c in attr_columns}))
        if bounds is None:
            bounds = [(0, 0)] * len(dim_columns)
        dims = [
            Dimension(dim_name, low, high, min(chunk_length, high - low + 1))
            for dim_name, (low, high) in zip(dim_columns, bounds)
        ]
        attributes = [Attribute(c.name, c.dtype) for c in attr_columns]
        stored = StoredArray(ArraySchema(name, dims, attributes))
        for coordinates, values in cells:
            stored.write_cell(coordinates, values)
        self._arrays[name.lower()] = stored

    def drop_object(self, name: str) -> None:
        if name.lower() not in self._arrays:
            raise ObjectNotFoundError(f"array {name!r} does not exist")
        del self._arrays[name.lower()]

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """O(1) rename: re-key the stored array, keeping dimensions intact.

        The export/import fallback would re-derive dimensions from the
        flattened relation; the native rename preserves the array schema
        exactly, which is what lets transactional CAST publish an imported
        array atomically.
        """
        old_key, new_key = old_name.lower(), new_name.lower()
        if old_key == new_key:
            return
        stored = self.array(old_name)
        if new_key in self._arrays and not replace:
            raise DuplicateObjectError(f"array {new_name!r} already exists")
        del self._arrays[old_key]
        stored.schema.name = new_name
        self._arrays[new_key] = stored

    # --------------------------------------------------------------- creation
    def create_array(self, schema: ArraySchema, replace: bool = False) -> StoredArray:
        key = schema.name.lower()
        if key in self._arrays and not replace:
            raise DuplicateObjectError(f"array {schema.name!r} already exists")
        stored = StoredArray(schema)
        self._arrays[key] = stored
        self.bump_write_version()
        return stored

    def load_numpy(self, name: str, data: np.ndarray, attribute: str = "value",
                   chunk_length: int = 10_000, replace: bool = True) -> StoredArray:
        """Create a dense array directly from a numpy ndarray."""
        data = np.asarray(data)
        dims = []
        dim_names = ["i", "j", "k", "l"]
        for axis, size in enumerate(data.shape):
            dims.append(Dimension(dim_names[axis], 0, size - 1, min(chunk_length, size)))
        dtype = DataType.FLOAT if np.issubdtype(data.dtype, np.floating) else DataType.INTEGER
        schema = ArraySchema(name, dims, [Attribute(attribute, dtype)])
        if name.lower() in self._arrays and not replace:
            raise DuplicateObjectError(f"array {name!r} already exists")
        stored = StoredArray(schema)
        stored.buffer(attribute)[...] = data
        stored.present_mask[...] = True
        self._arrays[name.lower()] = stored
        self.bump_write_version()
        return stored

    def register(self, name: str, stored: StoredArray, replace: bool = True) -> None:
        """Register an externally built :class:`StoredArray` under a name."""
        if name.lower() in self._arrays and not replace:
            raise DuplicateObjectError(f"array {name!r} already exists")
        self._arrays[name.lower()] = stored
        self.bump_write_version()

    def array(self, name: str) -> StoredArray:
        key = name.lower()
        if key not in self._arrays:
            raise ObjectNotFoundError(f"array {name!r} does not exist in engine {self.name!r}")
        return self._arrays[key]

    # ------------------------------------------------------------------ query
    def execute(self, afl: str) -> StoredArray | dict[str, float | None] | dict[int, float]:
        """Execute an AFL-style text query.

        Returns a :class:`StoredArray` for array-valued operators, a dict of
        aggregate results for ``aggregate`` and a ``{coordinate: value}`` dict
        for dimension grouping.
        """
        check_cancelled()
        self.queries_executed += 1
        call = parse_aql(afl)
        return self._execute_call(call)

    def _execute_call(self, call: AqlCall) -> Any:
        source = call.source
        if isinstance(source, AqlCall):
            array = self._execute_call(source)
            if not isinstance(array, StoredArray):
                raise ExecutionError(
                    f"nested call {source.operator!r} does not produce an array"
                )
        else:
            array = self.array(str(source))
        args = call.argument_strings()
        operator = call.operator
        if operator == "scan":
            return array
        if operator == "filter":
            if len(args) != 1:
                raise ExecutionError("filter(array, predicate) takes one predicate")
            attribute, predicate = _compile_predicate(args[0], array)
            return ops.filter_array(array, attribute, predicate)
        if operator == "between":
            return ops.between(array, *self._split_box(args, array))
        if operator == "subarray":
            return ops.subarray(array, *self._split_box(args, array))
        if operator == "project":
            return ops.project(array, args)
        if operator == "apply":
            if len(args) != 2:
                raise ExecutionError("apply(array, new_attr, expression) takes two arguments")
            return self._execute_apply(array, args[0], args[1])
        if operator == "aggregate":
            return self._execute_aggregate(array, args)
        if operator == "window":
            if len(args) < 3:
                raise ExecutionError("window(array, attribute, size, function) takes three arguments")
            return ops.window(array, args[0], int(args[1]), args[2],
                              args[3] if len(args) > 3 else None)
        if operator == "regrid":
            if len(args) < 3:
                raise ExecutionError("regrid(array, attribute, block, function) takes three arguments")
            block = tuple(int(a) for a in args[1:-1])
            if len(block) == 1 and array.schema.ndim > 1:
                block = block * array.schema.ndim
            return ops.regrid(array, args[0], block, args[-1])
        raise ExecutionError(f"unknown array operator: {operator!r}")

    # ----------------------------------------------------------------- helpers
    def _split_box(self, args: list[str], array: StoredArray) -> tuple[tuple[int, ...], tuple[int, ...]]:
        ndim = array.schema.ndim
        if len(args) != 2 * ndim:
            raise ExecutionError(
                f"expected {2 * ndim} box coordinates for a {ndim}-dimensional array"
            )
        values = [int(a) for a in args]
        return tuple(values[:ndim]), tuple(values[ndim:])

    def _execute_aggregate(self, array: StoredArray, args: list[str]) -> Any:
        specs = []
        group_dimension = None
        for arg in args:
            match = re.match(r"^([A-Za-z_]+)\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)$", arg)
            if match:
                specs.append((match.group(1).lower(), match.group(2)))
            else:
                group_dimension = arg
        if not specs:
            raise ExecutionError("aggregate requires at least one spec such as avg(value)")
        if group_dimension is not None:
            if len(specs) != 1:
                raise ExecutionError("grouped aggregates support one spec at a time")
            function, attribute = specs[0]
            return ops.aggregate_by_dimension(array, attribute, group_dimension, function)
        results: dict[str, float | None] = {}
        for function, attribute in specs:
            value = ops.aggregate(array, attribute, [function])[function]
            results[f"{function}({attribute})"] = value
        return results

    def _execute_apply(self, array: StoredArray, new_attribute: str, expression: str) -> StoredArray:
        attribute, fn = _compile_arithmetic(expression, array)
        return ops.apply(array, new_attribute, DataType.FLOAT, fn, attribute)


_COMPARISON_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(<=|>=|!=|=|<|>)\s*(-?[0-9]+(?:\.[0-9]+)?)\s*$"
)
_ARITHMETIC_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*([+\-*/])\s*(-?[0-9]+(?:\.[0-9]+)?)\s*$"
)


def _compile_predicate(text: str, array: StoredArray) -> tuple[str, Callable[[np.ndarray], np.ndarray]]:
    """Compile ``attr <op> literal`` into a vectorized mask function."""
    match = _COMPARISON_RE.match(text)
    if match is None:
        raise ParseError(f"unsupported array filter predicate: {text!r}")
    attribute, op, literal_text = match.groups()
    if not array.schema.has_attribute(attribute):
        raise ExecutionError(f"array has no attribute {attribute!r}")
    literal = float(literal_text)
    operations: dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "<": lambda buf: buf < literal,
        "<=": lambda buf: buf <= literal,
        ">": lambda buf: buf > literal,
        ">=": lambda buf: buf >= literal,
        "=": lambda buf: buf == literal,
        "!=": lambda buf: buf != literal,
    }
    return attribute, operations[op]


def _compile_arithmetic(text: str, array: StoredArray) -> tuple[str, Callable[[np.ndarray], np.ndarray]]:
    """Compile ``attr <op> literal`` into a vectorized arithmetic function."""
    match = _ARITHMETIC_RE.match(text)
    if match is None:
        raise ParseError(f"unsupported apply expression: {text!r}")
    attribute, op, literal_text = match.groups()
    if not array.schema.has_attribute(attribute):
        raise ExecutionError(f"array has no attribute {attribute!r}")
    literal = float(literal_text)
    operations: dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "+": lambda buf: np.asarray(buf, dtype=float) + literal,
        "-": lambda buf: np.asarray(buf, dtype=float) - literal,
        "*": lambda buf: np.asarray(buf, dtype=float) * literal,
        "/": lambda buf: np.asarray(buf, dtype=float) / literal,
    }
    return attribute, operations[op]
