"""Linear-algebra operations over stored arrays.

The paper motivates array databases with complex analytics whose inner loops
are matrix operations (Section 2.4).  These helpers operate directly on the
engine's numpy buffers, which is exactly the "array DBMS coupled to a linear
algebra package" configuration the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SchemaError
from repro.common.types import DataType
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.array.storage import StoredArray


def to_matrix(array: StoredArray, attribute: str) -> np.ndarray:
    """Return one attribute of a 1- or 2-dimensional array as a dense matrix."""
    if array.schema.ndim > 2:
        raise SchemaError("matrix operations require a 1- or 2-dimensional array")
    return np.asarray(array.buffer(attribute), dtype=float)


def from_matrix(name: str, matrix: np.ndarray, attribute: str = "value",
                chunk_length: int = 1000) -> StoredArray:
    """Wrap a dense numpy matrix (1-D or 2-D) as a stored array."""
    matrix = np.atleast_1d(np.asarray(matrix, dtype=float))
    dims = []
    dim_names = ["i", "j", "k"]
    for axis, size in enumerate(matrix.shape):
        dims.append(Dimension(dim_names[axis], 0, size - 1, min(chunk_length, size)))
    schema = ArraySchema(name, dims, [Attribute(attribute, DataType.FLOAT)])
    stored = StoredArray(schema)
    stored.buffer(attribute)[...] = matrix
    stored.present_mask[...] = True
    return stored


def multiply(left: StoredArray, right: StoredArray, attribute: str = "value",
             name: str = "product") -> StoredArray:
    """Matrix multiplication of two 2-D arrays (or matrix-vector)."""
    a = to_matrix(left, left.schema.attributes[0].name if not left.schema.has_attribute(attribute) else attribute)
    b = to_matrix(right, right.schema.attributes[0].name if not right.schema.has_attribute(attribute) else attribute)
    product = a @ b
    return from_matrix(name, product)


def transpose(array: StoredArray, attribute: str = "value", name: str = "transposed") -> StoredArray:
    """Transpose a 2-D array."""
    return from_matrix(name, to_matrix(array, attribute).T)


def covariance(array: StoredArray, attribute: str = "value", name: str = "covariance") -> StoredArray:
    """Covariance matrix of a (samples x features) 2-D array."""
    matrix = to_matrix(array, attribute)
    if matrix.ndim != 2:
        raise SchemaError("covariance requires a 2-dimensional array")
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    cov = centered.T @ centered / max(1, matrix.shape[0] - 1)
    return from_matrix(name, cov)


def svd(array: StoredArray, attribute: str = "value") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Singular value decomposition of a 2-D array's attribute."""
    matrix = to_matrix(array, attribute)
    return np.linalg.svd(matrix, full_matrices=False)


def power_iteration(array: StoredArray, attribute: str = "value",
                    iterations: int = 100, tolerance: float = 1e-9) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue/eigenvector of a square 2-D array via power iteration."""
    matrix = to_matrix(array, attribute)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SchemaError("power iteration requires a square matrix")
    vector = np.ones(matrix.shape[0]) / np.sqrt(matrix.shape[0])
    eigenvalue = 0.0
    for _ in range(iterations):
        product = matrix @ vector
        norm = np.linalg.norm(product)
        if norm == 0:
            return 0.0, vector
        new_vector = product / norm
        new_eigenvalue = float(new_vector @ matrix @ new_vector)
        if abs(new_eigenvalue - eigenvalue) < tolerance:
            return new_eigenvalue, new_vector
        vector, eigenvalue = new_vector, new_eigenvalue
    return eigenvalue, vector


def fft_magnitudes(array: StoredArray, attribute: str = "value") -> np.ndarray:
    """Magnitude spectrum of a 1-D signal attribute (rfft)."""
    signal = np.asarray(array.buffer(attribute), dtype=float).ravel()
    return np.abs(np.fft.rfft(signal))
