"""Array operators in the style of SciDB's AFL: filter, between, subarray,
apply, aggregate, window aggregates and regrid.

Each operator takes a :class:`StoredArray` (plus parameters) and returns a new
:class:`StoredArray`, so operators compose exactly as AFL expressions do.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.common.errors import ExecutionError, SchemaError, UnsupportedOperationError
from repro.common.types import DataType
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.array.storage import StoredArray


_AGGREGATIONS: dict[str, Callable[[np.ndarray], float]] = {
    "count": lambda values: float(values.size),
    "sum": lambda values: float(values.sum()),
    "avg": lambda values: float(values.mean()),
    "min": lambda values: float(values.min()),
    "max": lambda values: float(values.max()),
    "stddev": lambda values: float(values.std(ddof=1)) if values.size > 1 else 0.0,
    "var": lambda values: float(values.var(ddof=1)) if values.size > 1 else 0.0,
}


def aggregate_names() -> set[str]:
    return set(_AGGREGATIONS)


def filter_array(array: StoredArray, attribute: str, predicate: Callable[[np.ndarray], np.ndarray]) -> StoredArray:
    """Keep only the cells where ``predicate`` over one attribute's values holds.

    ``predicate`` receives the whole attribute buffer and must return a boolean
    mask of the same shape (vectorized filtering, as an array engine would do).
    """
    buffer = array.buffer(attribute)
    mask = predicate(buffer)
    if mask.shape != buffer.shape:
        raise ExecutionError("filter predicate must return a mask of the array's shape")
    result = StoredArray(array.schema)
    keep = mask & array.present_mask
    for attr in array.schema.attributes:
        target = result.buffer(attr.name)
        source = array.buffer(attr.name)
        target[keep] = source[keep]
    result.present_mask[:] = keep
    return result


def between(array: StoredArray, low: tuple[int, ...], high: tuple[int, ...]) -> StoredArray:
    """Keep cells whose coordinates fall inside the inclusive box [low, high].

    The result keeps the original dimension space (like AFL ``between``).
    """
    _validate_box(array.schema, low, high)
    result = StoredArray(array.schema)
    low_idx = array.schema.coordinates_to_indexes(low)
    high_idx = array.schema.coordinates_to_indexes(high)
    slices = tuple(slice(lo, hi + 1) for lo, hi in zip(low_idx, high_idx))
    box_mask = np.zeros(array.schema.shape, dtype=bool)
    box_mask[slices] = True
    keep = box_mask & array.present_mask
    for attr in array.schema.attributes:
        result.buffer(attr.name)[keep] = array.buffer(attr.name)[keep]
    result.present_mask[:] = keep
    return result


def subarray(array: StoredArray, low: tuple[int, ...], high: tuple[int, ...], name: str | None = None) -> StoredArray:
    """Extract the box [low, high] into a new, smaller array re-origined at 0."""
    _validate_box(array.schema, low, high)
    new_dims = []
    for lo, hi, dim in zip(low, high, array.schema.dimensions):
        length = hi - lo + 1
        new_dims.append(Dimension(dim.name, 0, length - 1, min(dim.chunk_length, length)))
    new_schema = ArraySchema(name or f"{array.schema.name}_sub", new_dims, array.schema.attributes)
    result = StoredArray(new_schema)
    low_idx = array.schema.coordinates_to_indexes(low)
    high_idx = array.schema.coordinates_to_indexes(high)
    slices = tuple(slice(lo, hi + 1) for lo, hi in zip(low_idx, high_idx))
    for attr in array.schema.attributes:
        result.buffer(attr.name)[...] = array.buffer(attr.name)[slices]
    result.present_mask[...] = array.present_mask[slices]
    return result


def apply(array: StoredArray, new_attribute: str, dtype: DataType,
          fn: Callable[..., np.ndarray], *inputs: str) -> StoredArray:
    """Add a computed attribute: ``fn`` receives the input attribute buffers."""
    if array.schema.has_attribute(new_attribute):
        raise SchemaError(f"attribute {new_attribute!r} already exists")
    new_schema = ArraySchema(
        array.schema.name,
        array.schema.dimensions,
        array.schema.attributes + [Attribute(new_attribute, dtype)],
    )
    result = StoredArray(new_schema)
    for attr in array.schema.attributes:
        result.buffer(attr.name)[...] = array.buffer(attr.name)
    buffers = [array.buffer(name) for name in inputs]
    computed = fn(*buffers)
    if np.shape(computed) != array.schema.shape:
        raise ExecutionError("apply function must return an array of the input shape")
    result.buffer(new_attribute)[...] = computed
    result.present_mask[...] = array.present_mask
    return result


def project(array: StoredArray, attributes: list[str]) -> StoredArray:
    """Keep only the named attributes."""
    kept = [array.schema.attribute(a) for a in attributes]
    new_schema = ArraySchema(array.schema.name, array.schema.dimensions, kept)
    result = StoredArray(new_schema)
    for attr in kept:
        result.buffer(attr.name)[...] = array.buffer(attr.name)
    result.present_mask[...] = array.present_mask
    return result


def aggregate(array: StoredArray, attribute: str, functions: list[str]) -> dict[str, float | None]:
    """Full-array aggregate of one attribute over populated cells."""
    values = array.buffer(attribute)[array.present_mask]
    results: dict[str, float | None] = {}
    for fn in functions:
        key = fn.lower()
        if key not in _AGGREGATIONS:
            raise UnsupportedOperationError(f"unknown aggregate {fn!r}")
        results[key] = _AGGREGATIONS[key](values) if values.size else None
    return results


def aggregate_by_dimension(
    array: StoredArray, attribute: str, dimension: str, function: str
) -> dict[int, float]:
    """Group-by one dimension: aggregate the attribute along all other dimensions."""
    key = function.lower()
    if key not in _AGGREGATIONS:
        raise UnsupportedOperationError(f"unknown aggregate {function!r}")
    dim_index = array.schema.dimension_index(dimension)
    dim = array.schema.dimensions[dim_index]
    buffer = array.buffer(attribute)
    mask = array.present_mask
    results: dict[int, float] = {}
    for offset in range(dim.length):
        slicer: list[Any] = [slice(None)] * array.schema.ndim
        slicer[dim_index] = offset
        values = buffer[tuple(slicer)][mask[tuple(slicer)]]
        if values.size:
            results[dim.start + offset] = _AGGREGATIONS[key](values)
    return results


def window(array: StoredArray, attribute: str, window_size: int, function: str,
           dimension: str | None = None) -> StoredArray:
    """Sliding-window aggregate along one dimension (defaults to the first).

    Produces a new single-attribute array of the same shape whose cell value is
    the aggregate of the trailing ``window_size`` cells along the dimension.
    """
    key = function.lower()
    if key not in _AGGREGATIONS:
        raise UnsupportedOperationError(f"unknown aggregate {function!r}")
    if window_size <= 0:
        raise ExecutionError("window size must be positive")
    dim_index = 0 if dimension is None else array.schema.dimension_index(dimension)
    buffer = np.asarray(array.buffer(attribute), dtype=float)
    out_name = f"{key}_{attribute}"
    new_schema = ArraySchema(
        f"{array.schema.name}_window",
        array.schema.dimensions,
        [Attribute(out_name, DataType.FLOAT)],
    )
    result = StoredArray(new_schema)
    moved = np.moveaxis(buffer, dim_index, -1)
    out = np.empty_like(moved)
    length = moved.shape[-1]
    # Trailing-window aggregate via cumulative sums for sum/avg/count; generic loop otherwise.
    if key in ("sum", "avg", "count"):
        cumsum = np.cumsum(moved, axis=-1)
        windowed_sum = cumsum.copy()
        windowed_sum[..., window_size:] = cumsum[..., window_size:] - cumsum[..., :-window_size]
        counts = np.minimum(np.arange(1, length + 1), window_size)
        if key == "sum":
            out = windowed_sum
        elif key == "count":
            out = np.broadcast_to(counts.astype(float), moved.shape).copy()
        else:
            out = windowed_sum / counts
    else:
        for i in range(length):
            lo = max(0, i - window_size + 1)
            out[..., i] = _apply_along(moved[..., lo : i + 1], key)
    result.buffer(out_name)[...] = np.moveaxis(out, -1, dim_index)
    result.present_mask[...] = array.present_mask
    return result


def _apply_along(block: np.ndarray, key: str) -> np.ndarray:
    if key == "min":
        return block.min(axis=-1)
    if key == "max":
        return block.max(axis=-1)
    if key == "stddev":
        return block.std(axis=-1, ddof=1) if block.shape[-1] > 1 else np.zeros(block.shape[:-1])
    if key == "var":
        return block.var(axis=-1, ddof=1) if block.shape[-1] > 1 else np.zeros(block.shape[:-1])
    raise UnsupportedOperationError(f"window aggregate {key!r} not supported")


def regrid(array: StoredArray, attribute: str, block_sizes: tuple[int, ...], function: str) -> StoredArray:
    """Downsample: partition the array into blocks and aggregate each block to one cell.

    This is the operation behind ScalaR's multi-resolution browsing.
    """
    key = function.lower()
    if key not in _AGGREGATIONS:
        raise UnsupportedOperationError(f"unknown aggregate {function!r}")
    if len(block_sizes) != array.schema.ndim:
        raise SchemaError("one block size per dimension is required")
    new_dims = []
    for size, dim in zip(block_sizes, array.schema.dimensions):
        if size <= 0:
            raise SchemaError("block sizes must be positive")
        new_length = (dim.length + size - 1) // size
        new_dims.append(Dimension(dim.name, 0, new_length - 1, max(1, min(dim.chunk_length, new_length))))
    out_name = f"{key}_{attribute}"
    new_schema = ArraySchema(
        f"{array.schema.name}_regrid", new_dims, [Attribute(out_name, DataType.FLOAT)]
    )
    result = StoredArray(new_schema)
    buffer = np.asarray(array.buffer(attribute), dtype=float)
    mask = array.present_mask
    out_shape = tuple(d.length for d in new_dims)
    out = np.zeros(out_shape)
    out_present = np.zeros(out_shape, dtype=bool)
    for block_index in np.ndindex(*out_shape):
        slices = tuple(
            slice(i * size, min((i + 1) * size, dim.length))
            for i, size, dim in zip(block_index, block_sizes, array.schema.dimensions)
        )
        values = buffer[slices][mask[slices]]
        if values.size:
            out[block_index] = _AGGREGATIONS[key](values)
            out_present[block_index] = True
    result.buffer(out_name)[...] = out
    result.present_mask[...] = out_present
    return result


def cross_join(left: StoredArray, right: StoredArray, name: str | None = None) -> StoredArray:
    """Join two arrays with identical dimension spaces, concatenating attributes."""
    if left.schema.shape != right.schema.shape:
        raise SchemaError("cross_join requires arrays with identical shapes")
    attributes = list(left.schema.attributes)
    for attr in right.schema.attributes:
        if left.schema.has_attribute(attr.name):
            attr = Attribute(f"{attr.name}_right", attr.dtype, attr.nullable)
        attributes.append(attr)
    schema = ArraySchema(name or f"{left.schema.name}_join", left.schema.dimensions, attributes)
    result = StoredArray(schema)
    for attr in left.schema.attributes:
        result.buffer(attr.name)[...] = left.buffer(attr.name)
    for original, renamed in zip(right.schema.attributes, attributes[len(left.schema.attributes):]):
        result.buffer(renamed.name)[...] = right.buffer(original.name)
    result.present_mask[...] = left.present_mask & right.present_mask
    return result


def _validate_box(schema: ArraySchema, low: tuple[int, ...], high: tuple[int, ...]) -> None:
    if len(low) != schema.ndim or len(high) != schema.ndim:
        raise SchemaError("box bounds must have one coordinate per dimension")
    for lo, hi, dim in zip(low, high, schema.dimensions):
        if lo > hi:
            raise SchemaError(f"box bound {lo} > {hi} on dimension {dim.name!r}")
