"""Array schemas: dimensions, attributes and chunking, as in SciDB.

An array is declared over integer dimensions (each with a start, end and
chunk length) and carries one or more named, typed attributes.  Cells are
addressed by dimension coordinates; each attribute stores one value per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import SchemaError
from repro.common.types import DataType, parse_type


@dataclass(frozen=True)
class Dimension:
    """One array dimension: a named integer range split into chunks."""

    name: str
    start: int
    end: int
    chunk_length: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchemaError(f"dimension {self.name!r}: end {self.end} < start {self.start}")
        if self.chunk_length <= 0:
            raise SchemaError(f"dimension {self.name!r}: chunk length must be positive")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    @property
    def chunk_count(self) -> int:
        return (self.length + self.chunk_length - 1) // self.chunk_length

    def chunk_of(self, coordinate: int) -> int:
        """Index of the chunk containing a coordinate."""
        if not self.start <= coordinate <= self.end:
            raise SchemaError(
                f"coordinate {coordinate} outside dimension {self.name!r} "
                f"[{self.start}, {self.end}]"
            )
        return (coordinate - self.start) // self.chunk_length

    def chunk_bounds(self, chunk_index: int) -> tuple[int, int]:
        """Inclusive (low, high) coordinates covered by one chunk."""
        low = self.start + chunk_index * self.chunk_length
        high = min(low + self.chunk_length - 1, self.end)
        return low, high


@dataclass(frozen=True)
class Attribute:
    """One array attribute: a named, typed value stored in every cell."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", parse_type(self.dtype))


class ArraySchema:
    """The shape of an array: dimensions plus attributes."""

    def __init__(
        self,
        name: str,
        dimensions: list[Dimension],
        attributes: list[Attribute],
    ) -> None:
        if not dimensions:
            raise SchemaError("an array needs at least one dimension")
        if not attributes:
            raise SchemaError("an array needs at least one attribute")
        dim_names = [d.name.lower() for d in dimensions]
        attr_names = [a.name.lower() for a in attributes]
        if len(set(dim_names)) != len(dim_names):
            raise SchemaError("duplicate dimension names")
        if len(set(attr_names)) != len(attr_names):
            raise SchemaError("duplicate attribute names")
        if set(dim_names) & set(attr_names):
            raise SchemaError("dimension and attribute names must not collide")
        self.name = name
        self.dimensions = list(dimensions)
        self.attributes = list(attributes)

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.length for d in self.dimensions)

    @property
    def cell_count(self) -> int:
        count = 1
        for d in self.dimensions:
            count *= d.length
        return count

    @property
    def ndim(self) -> int:
        return len(self.dimensions)

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name.lower() == name.lower():
                return d
        raise SchemaError(f"no such dimension: {name!r}")

    def dimension_index(self, name: str) -> int:
        for i, d in enumerate(self.dimensions):
            if d.name.lower() == name.lower():
                return i
        raise SchemaError(f"no such dimension: {name!r}")

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name.lower() == name.lower():
                return a
        raise SchemaError(f"no such attribute: {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name.lower() == name.lower() for a in self.attributes)

    def coordinates_to_indexes(self, coordinates: tuple[int, ...]) -> tuple[int, ...]:
        """Translate dimension coordinates to zero-based numpy indexes."""
        if len(coordinates) != self.ndim:
            raise SchemaError(
                f"expected {self.ndim} coordinates, got {len(coordinates)}"
            )
        indexes = []
        for coord, dim in zip(coordinates, self.dimensions):
            if not dim.start <= coord <= dim.end:
                raise SchemaError(
                    f"coordinate {coord} outside dimension {dim.name!r} "
                    f"[{dim.start}, {dim.end}]"
                )
            indexes.append(coord - dim.start)
        return tuple(indexes)

    def chunks(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all chunk index tuples in row-major order."""

        def recurse(prefix: tuple[int, ...], remaining: list[Dimension]) -> Iterator[tuple[int, ...]]:
            if not remaining:
                yield prefix
                return
            head, *tail = remaining
            for i in range(head.chunk_count):
                yield from recurse(prefix + (i,), tail)

        yield from recurse((), self.dimensions)

    def chunk_slices(self, chunk: tuple[int, ...]) -> tuple[slice, ...]:
        """Numpy slices (zero-based) covering one chunk."""
        slices = []
        for index, dim in zip(chunk, self.dimensions):
            low, high = dim.chunk_bounds(index)
            slices.append(slice(low - dim.start, high - dim.start + 1))
        return tuple(slices)

    def rename(self, name: str) -> "ArraySchema":
        return ArraySchema(name, self.dimensions, self.attributes)

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{d.name}={d.start}:{d.end},{d.chunk_length}" for d in self.dimensions
        )
        attrs = ", ".join(f"{a.name}:{a.dtype}" for a in self.attributes)
        return f"<{self.name}[{dims}]({attrs})>"
