"""Chunked array storage backed by numpy, with per-chunk synopses.

Each attribute of an array is stored as one dense numpy array covering the
whole dimension space, plus a validity mask for empty cells.  Chunk metadata
(min / max / sum / count per chunk) is maintained lazily; it is what the
Searchlight exploration system and the ScalaR browser read as a *synopsis* —
a small structure that answers aggregate questions without touching the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.common.errors import SchemaError, UnsupportedOperationError
from repro.common.types import DataType
from repro.engines.array.schema import ArraySchema


_NUMPY_DTYPES = {
    DataType.INTEGER: np.int64,
    DataType.FLOAT: np.float64,
    DataType.BOOLEAN: np.bool_,
    DataType.TEXT: object,
    DataType.TIMESTAMP: np.float64,
}


@dataclass
class ChunkSynopsis:
    """Aggregate summary of one chunk of one attribute."""

    chunk: tuple[int, ...]
    count: int
    minimum: float | None
    maximum: float | None
    total: float | None

    @property
    def mean(self) -> float | None:
        if not self.count or self.total is None:
            return None
        return self.total / self.count


class StoredArray:
    """One array's data: a dense numpy buffer per attribute plus an empty-cell mask."""

    def __init__(self, schema: ArraySchema) -> None:
        self.schema = schema
        self._buffers: dict[str, np.ndarray] = {}
        for attribute in schema.attributes:
            dtype = _NUMPY_DTYPES[attribute.dtype]
            if attribute.dtype is DataType.TEXT:
                self._buffers[attribute.name.lower()] = np.empty(schema.shape, dtype=object)
            else:
                self._buffers[attribute.name.lower()] = np.zeros(schema.shape, dtype=dtype)
        self._present = np.zeros(schema.shape, dtype=np.bool_)
        self._synopsis_dirty = True
        self._synopses: dict[str, list[ChunkSynopsis]] = {}

    # ------------------------------------------------------------------ access
    def buffer(self, attribute: str) -> np.ndarray:
        key = attribute.lower()
        if key not in self._buffers:
            raise SchemaError(f"array {self.schema.name!r} has no attribute {attribute!r}")
        return self._buffers[key]

    @property
    def present_mask(self) -> np.ndarray:
        return self._present

    @property
    def populated_cells(self) -> int:
        return int(self._present.sum())

    def write_cell(self, coordinates: tuple[int, ...], values: dict[str, Any]) -> None:
        """Write one cell's attribute values at the given dimension coordinates."""
        indexes = self.schema.coordinates_to_indexes(coordinates)
        for name, value in values.items():
            self.buffer(name)[indexes] = value
        self._present[indexes] = True
        self._synopsis_dirty = True

    def read_cell(self, coordinates: tuple[int, ...]) -> dict[str, Any] | None:
        """Read one cell; returns None for an empty cell."""
        indexes = self.schema.coordinates_to_indexes(coordinates)
        if not self._present[indexes]:
            return None
        return {a.name: self._buffers[a.name.lower()][indexes].item()
                if hasattr(self._buffers[a.name.lower()][indexes], "item")
                else self._buffers[a.name.lower()][indexes]
                for a in self.schema.attributes}

    def write_block(self, attribute: str, start: tuple[int, ...], block: np.ndarray) -> None:
        """Bulk write a dense block of one attribute starting at ``start`` coordinates."""
        indexes = self.schema.coordinates_to_indexes(start)
        slices = tuple(
            slice(idx, idx + size) for idx, size in zip(indexes, block.shape)
        )
        target = self.buffer(attribute)
        if any(s.stop > dim for s, dim in zip(slices, target.shape)):
            raise SchemaError("block extends beyond the array bounds")
        target[slices] = block
        self._present[slices] = True
        self._synopsis_dirty = True

    def read_block(self, attribute: str, low: tuple[int, ...], high: tuple[int, ...]) -> np.ndarray:
        """Read the dense block of one attribute between inclusive coordinate bounds."""
        low_idx = self.schema.coordinates_to_indexes(low)
        high_idx = self.schema.coordinates_to_indexes(high)
        slices = tuple(slice(lo, hi + 1) for lo, hi in zip(low_idx, high_idx))
        return self.buffer(attribute)[slices]

    def iter_cells(self) -> Iterator[tuple[tuple[int, ...], dict[str, Any]]]:
        """Yield (coordinates, values) for every populated cell, row-major."""
        coords = np.argwhere(self._present)
        offsets = [d.start for d in self.schema.dimensions]
        for idx in coords:
            coordinates = tuple(int(i) + off for i, off in zip(idx, offsets))
            values = {}
            for attribute in self.schema.attributes:
                raw = self._buffers[attribute.name.lower()][tuple(idx)]
                values[attribute.name] = raw.item() if hasattr(raw, "item") else raw
            yield coordinates, values

    # ---------------------------------------------------------------- synopsis
    def synopsis(self, attribute: str) -> list[ChunkSynopsis]:
        """Per-chunk aggregate summaries for one attribute (rebuilt lazily)."""
        attr = self.schema.attribute(attribute)
        if attr.dtype is DataType.TEXT:
            raise UnsupportedOperationError("synopses are only defined for numeric attributes")
        if self._synopsis_dirty or attribute.lower() not in self._synopses:
            self._rebuild_synopsis(attribute)
        return self._synopses[attribute.lower()]

    def _rebuild_synopsis(self, attribute: str) -> None:
        buffer = self.buffer(attribute)
        synopses = []
        for chunk in self.schema.chunks():
            slices = self.schema.chunk_slices(chunk)
            mask = self._present[slices]
            values = buffer[slices][mask]
            if values.size:
                synopses.append(
                    ChunkSynopsis(
                        chunk=chunk,
                        count=int(values.size),
                        minimum=float(values.min()),
                        maximum=float(values.max()),
                        total=float(values.sum()),
                    )
                )
            else:
                synopses.append(ChunkSynopsis(chunk=chunk, count=0, minimum=None, maximum=None, total=None))
        self._synopses[attribute.lower()] = synopses
        self._synopsis_dirty = False

    # ------------------------------------------------------------------ stats
    def statistics(self) -> dict[str, Any]:
        return {
            "name": self.schema.name,
            "shape": self.schema.shape,
            "populated_cells": self.populated_cells,
            "attributes": [a.name for a in self.schema.attributes],
            "chunk_count": sum(1 for _ in self.schema.chunks()),
        }
