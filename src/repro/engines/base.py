"""The engine interface the BigDAWG shims program against.

An engine owns data objects (tables, arrays, streams, key-value tables) and
executes queries in its native language.  The only thing BigDAWG requires of
an engine is the small surface in :class:`Engine`: enumerate objects, export
an object as a relation (all at once or as bounded chunks), import a relation
as a new object (likewise chunked), and report which capabilities it has so
the planner can route subqueries.

The chunked half of the surface — :meth:`Engine.export_schema`,
:meth:`Engine.export_chunks` and :meth:`Engine.import_chunks` — is what the
streaming CAST pipeline uses so that a cross-engine move never materializes
the whole object on the wire.  The base class provides full-relation
fallbacks, so an engine only has to implement ``export_relation`` /
``import_relation`` to participate; engines with native chunk support
override the chunked methods to avoid the full copy.
"""

from __future__ import annotations

import enum
import functools
import itertools
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.common.cancellation import check_cancelled
from repro.common.schema import ColumnarRelation, Relation, Row, Schema

#: Default number of rows per chunk on the streaming CAST path.
DEFAULT_CHUNK_ROWS = 8192


def relation_chunks(schema: Schema, rows: Iterable[Any], chunk_size: int,
                    validate: bool = True) -> Iterator[Relation]:
    """Group a row stream into relations of at most ``chunk_size`` rows.

    The single home of the chunk-boundary logic every exporter shares.
    ``rows`` yields value sequences (coerced through the schema when
    ``validate`` is True) or ready-made :class:`Row` objects (pass
    ``validate=False`` when the rows are already schema-typed, e.g. straight
    from an engine's own storage).  Raises eagerly on a non-positive
    ``chunk_size``; yields nothing for an empty stream.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    def generate() -> Iterator[Relation]:
        chunk = Relation(schema)
        for row in rows:
            if validate:
                chunk.append(row)
            else:
                chunk.rows.append(row if isinstance(row, Row) else Row(schema, row))
            if len(chunk) >= chunk_size:
                check_cancelled()  # chunk boundary: cancelled exports stop here
                yield chunk
                chunk = Relation(schema)
        if len(chunk):
            yield chunk

    return generate()


def columnar_relation_chunks(schema: Schema, value_rows: Iterable[Sequence[Any]],
                             chunk_size: int) -> Iterator[Relation]:
    """Group a stream of value tuples into columnar-backed relation chunks.

    The columnar sibling of :func:`relation_chunks`: each emitted chunk is a
    :class:`~repro.common.schema.ColumnarRelation`, so a consumer that reads
    columns (the binary codec's columnar layout) never triggers per-row
    ``Row`` construction, while row-oriented consumers materialize lazily.
    ``value_rows`` must already be schema-typed (engine-native storage).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    def generate() -> Iterator[Relation]:
        pending: list[Sequence[Any]] = []
        for values in value_rows:
            pending.append(values)
            if len(pending) >= chunk_size:
                check_cancelled()  # chunk boundary: cancelled exports stop here
                yield ColumnarRelation.from_value_rows(schema, pending)
                pending = []
        if pending:
            yield ColumnarRelation.from_value_rows(schema, pending)

    return generate()


class EngineCapability(enum.Flag):
    """Feature flags the cross-island planner uses to route subqueries."""

    NONE = 0
    SQL = enum.auto()
    ARRAY = enum.auto()
    KEY_VALUE = enum.auto()
    TEXT_SEARCH = enum.auto()
    STREAMING = enum.auto()
    LINEAR_ALGEBRA = enum.auto()
    UDF = enum.auto()
    TRANSACTIONS = enum.auto()


def _bumps_write_version(method: Callable) -> Callable:
    """Wrap a mutating engine method so it advances the engine's write version.

    The bump happens in a ``finally`` block: a failed mutation may still have
    partially changed engine state, and over-invalidating the result cache is
    always safe while under-invalidating never is.
    """

    @functools.wraps(method)
    def wrapper(self: "Engine", *args: Any, **kwargs: Any) -> Any:
        try:
            return method(self, *args, **kwargs)
        finally:
            self.bump_write_version()

    wrapper._bumps_write_version = True  # type: ignore[attr-defined]
    return wrapper


#: Engine-interface methods that mutate stored objects.  Subclass overrides of
#: these are wrapped automatically so every mutation — including ones made by
#: engines added later — advances ``write_version`` without each engine having
#: to remember to do it.  Engine-*native* mutation entry points (SQL DML, kv
#: ``put``, array loads) sit outside this interface and call
#: :meth:`Engine.bump_write_version` explicitly.
_MUTATOR_NAMES = ("import_relation", "import_chunks", "drop_object", "rename_object")


class Engine(ABC):
    """Abstract storage engine federated by BigDAWG."""

    #: Symbolic engine kind, e.g. "relational", "array"; used by the catalog.
    kind: str = "abstract"

    #: Ephemeral engines hold only per-execution scratch state (e.g. the
    #: polystore's temp-table engine); the result cache excludes them from its
    #: state fingerprint because no cacheable query can observe their contents.
    ephemeral: bool = False

    #: How many write idempotency tokens an engine remembers (FIFO).
    WRITE_TOKEN_MEMORY = 1024

    def __init__(self, name: str) -> None:
        self.name = name
        #: Count of native queries executed; used by the monitor and tests.
        self.queries_executed = 0
        #: Monotonically increasing counter advanced by every mutating call;
        #: the runtime's result cache fingerprints engine state with it.
        self._write_version = 0
        self._write_version_lock = threading.Lock()
        # Idempotency tokens of journaled writes this engine applied, in
        # arrival order so the memory stays bounded.  Crash recovery asks
        # ``has_write_token`` to tell "applied but the commit record is
        # missing" (roll forward) from "never reached the engine" (roll
        # back).
        self._write_tokens: list[str] = []
        self._write_token_set: set[str] = set()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for name in _MUTATOR_NAMES:
            method = cls.__dict__.get(name)
            if method is not None and not getattr(method, "_bumps_write_version", False):
                setattr(cls, name, _bumps_write_version(method))

    # --------------------------------------------------------- write versioning
    @property
    def write_version(self) -> int:
        """The engine's current mutation counter (see :meth:`bump_write_version`)."""
        return self._write_version

    def bump_write_version(self) -> int:
        """Advance the mutation counter; returns the new version.

        Import/drop overrides are bumped automatically; engines must call this
        from any *native* mutation path (DDL/DML, ``put``, loads) as well.
        """
        with self._write_version_lock:
            self._write_version += 1
            return self._write_version

    def note_write_token(self, token: str) -> None:
        """Remember that a journaled write with this idempotency token landed.

        The scheduler stamps the token right after a journaled DML dispatch
        succeeds; memory is bounded to :attr:`WRITE_TOKEN_MEMORY` tokens
        (oldest first out), far beyond the handful of in-flight intents a
        crash can leave behind.
        """
        with self._write_version_lock:
            if token in self._write_token_set:
                return
            self._write_tokens.append(token)
            self._write_token_set.add(token)
            while len(self._write_tokens) > self.WRITE_TOKEN_MEMORY:
                self._write_token_set.discard(self._write_tokens.pop(0))

    def has_write_token(self, token: str) -> bool:
        """Whether a journaled write with this token was applied here."""
        with self._write_version_lock:
            return token in self._write_token_set

    @property
    @abstractmethod
    def capabilities(self) -> EngineCapability:
        """Capabilities this engine offers."""

    @abstractmethod
    def list_objects(self) -> list[str]:
        """Names of all data objects stored in this engine."""

    @abstractmethod
    def has_object(self, name: str) -> bool:
        """Whether the engine stores an object with this name."""

    @abstractmethod
    def export_relation(self, name: str) -> Relation:
        """Export a stored object as a relation (the CAST egress path)."""

    @abstractmethod
    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        """Create (or replace) an object from a relation (the CAST ingress path)."""

    @abstractmethod
    def drop_object(self, name: str) -> None:
        """Remove an object."""

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """Rename an object in place, replacing any object at ``new_name``.

        The commit primitive of transactional CAST: the migrator imports
        into a shadow name and publishes the finished object with one
        rename, so a consumer can never observe (or be left with) a
        half-imported object under the real name.  The fallback copies
        through export/import; engines with dict-keyed storage override it
        with an O(1) key move.
        """
        if old_name.lower() == new_name.lower():
            return
        if not replace and self.has_object(new_name):
            from repro.common.errors import DuplicateObjectError

            raise DuplicateObjectError(
                f"object {new_name!r} already exists in engine {self.name!r}"
            )
        self.import_relation(new_name, self.export_relation(old_name))
        self.drop_object(old_name)

    # ------------------------------------------------------- chunked CAST path
    def export_schema(self, name: str) -> Schema:
        """The relational schema an export of ``name`` would have.

        The fallback exports the whole object just to read its schema; engines
        override this with a metadata-only lookup so planning a CAST is cheap.
        """
        return self.export_relation(name).schema

    def export_chunks(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """Export an object as a stream of relations of at most ``chunk_size`` rows.

        The fallback materializes the full relation and slices it; engines with
        an incremental scan override this to bound memory.  Yields nothing for
        an empty object.
        """
        relation = self.export_relation(name)
        return relation_chunks(relation.schema, relation.rows, chunk_size, validate=False)

    def export_stream(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS
                      ) -> tuple[Schema, Iterator[Relation]]:
        """Schema plus chunk stream in one call — the CAST egress entry point.

        Dispatches to ``export_schema``/``export_chunks`` whenever a subclass
        overrides them, so native chunk or metadata paths are always
        honoured.  An engine overriding only ``export_chunks`` gets its
        schema from the first chunk rather than the full-export schema
        fallback, preserving the override's memory bound.  Only for
        pure-fallback engines does it materialize the relation *once* and
        derive both from it (calling the two fallbacks separately would
        export twice).
        """
        cls = type(self)
        if cls.export_schema is not Engine.export_schema:
            return self.export_schema(name), self.export_chunks(name, chunk_size)
        if cls.export_chunks is not Engine.export_chunks:
            chunks = self.export_chunks(name, chunk_size)
            first = next(chunks, None)
            if first is not None:
                return first.schema, itertools.chain([first], chunks)
            # Empty stream: the object has no rows, so the schema fallback's
            # full export is cheap here.
            return self.export_relation(name).schema, iter(())
        relation = self.export_relation(name)
        return relation.schema, relation_chunks(
            relation.schema, relation.rows, chunk_size, validate=False
        )

    def import_chunks(self, name: str, schema: Schema, chunks: Iterable[Relation],
                      **options: Any) -> None:
        """Create (or replace) an object from a stream of relation chunks.

        The fallback concatenates the chunks and delegates to
        ``import_relation``; engines that can append incrementally override
        this so only one decoded chunk is held at a time.
        """
        combined = Relation(schema)
        for chunk in chunks:
            combined.rows.extend(chunk.rows)
        self.import_relation(name, combined, **options)

    def describe(self) -> dict[str, Any]:
        """Human-readable summary used by EXPLAIN output and the demo."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objects": self.list_objects(),
            "capabilities": str(self.capabilities),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
