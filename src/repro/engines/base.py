"""The engine interface the BigDAWG shims program against.

An engine owns data objects (tables, arrays, streams, key-value tables) and
executes queries in its native language.  The only thing BigDAWG requires of
an engine is the small surface in :class:`Engine`: enumerate objects, export
an object as a relation, import a relation as a new object, and report which
capabilities it has so the planner can route subqueries.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any

from repro.common.schema import Relation


class EngineCapability(enum.Flag):
    """Feature flags the cross-island planner uses to route subqueries."""

    NONE = 0
    SQL = enum.auto()
    ARRAY = enum.auto()
    KEY_VALUE = enum.auto()
    TEXT_SEARCH = enum.auto()
    STREAMING = enum.auto()
    LINEAR_ALGEBRA = enum.auto()
    UDF = enum.auto()
    TRANSACTIONS = enum.auto()


class Engine(ABC):
    """Abstract storage engine federated by BigDAWG."""

    #: Symbolic engine kind, e.g. "relational", "array"; used by the catalog.
    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        self.name = name
        #: Count of native queries executed; used by the monitor and tests.
        self.queries_executed = 0

    @property
    @abstractmethod
    def capabilities(self) -> EngineCapability:
        """Capabilities this engine offers."""

    @abstractmethod
    def list_objects(self) -> list[str]:
        """Names of all data objects stored in this engine."""

    @abstractmethod
    def has_object(self, name: str) -> bool:
        """Whether the engine stores an object with this name."""

    @abstractmethod
    def export_relation(self, name: str) -> Relation:
        """Export a stored object as a relation (the CAST egress path)."""

    @abstractmethod
    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        """Create (or replace) an object from a relation (the CAST ingress path)."""

    @abstractmethod
    def drop_object(self, name: str) -> None:
        """Remove an object."""

    def describe(self) -> dict[str, Any]:
        """Human-readable summary used by EXPLAIN output and the demo."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objects": self.list_objects(),
            "capabilities": str(self.capabilities),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
