"""The key-value engine (Accumulo stand-in): sorted KV store, iterators, text index."""

from repro.engines.keyvalue.engine import KeyValueEngine, KeyValueTable
from repro.engines.keyvalue.iterators import (
    CombiningIterator,
    CountingCombiner,
    FamilyFilterIterator,
    FilterIterator,
    ScanIterator,
    SummingCombiner,
    ValueRegexIterator,
    VersioningIterator,
)
from repro.engines.keyvalue.store import Entry, Key, ScanRange, SortedKeyValueStore
from repro.engines.keyvalue.text_index import InvertedTextIndex, Posting, tokenize

__all__ = [
    "CombiningIterator",
    "CountingCombiner",
    "Entry",
    "FamilyFilterIterator",
    "FilterIterator",
    "InvertedTextIndex",
    "Key",
    "KeyValueEngine",
    "KeyValueTable",
    "Posting",
    "ScanIterator",
    "ScanRange",
    "SortedKeyValueStore",
    "SummingCombiner",
    "ValueRegexIterator",
    "VersioningIterator",
    "tokenize",
]
