"""The key-value engine facade: the Accumulo stand-in federated by BigDAWG.

Tables are sorted key-value stores with optional full-text indexing of their
values, scanned through server-side iterator stacks and split into tablets.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.common.cancellation import check_cancelled
from repro.common.errors import DuplicateObjectError, ObjectNotFoundError, TypeMismatchError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType, common_type, infer_type
from repro.engines.base import DEFAULT_CHUNK_ROWS, Engine, EngineCapability, relation_chunks
from repro.engines.keyvalue.iterators import ScanIterator, apply_stack
from repro.engines.keyvalue.store import Entry, ScanRange, SortedKeyValueStore
from repro.engines.keyvalue.tablet import TabletManager
from repro.engines.keyvalue.text_index import InvertedTextIndex, Posting


class KeyValueTable:
    """One Accumulo-style table: sorted store + tablets + optional text index."""

    def __init__(self, name: str, text_indexed: bool = False, split_threshold: int = 100_000) -> None:
        self.name = name
        self.store = SortedKeyValueStore()
        self.tablets = TabletManager(name, split_threshold=split_threshold)
        self.text_index: InvertedTextIndex | None = InvertedTextIndex() if text_indexed else None
        #: Widest type observed across stored values, maintained on put so
        #: exports can type the value column without rescanning the store.
        self.value_type: DataType | None = None
        self._typed_mutations = 0

    def put(self, row: str, family: str = "", qualifier: str = "", value: Any = None) -> Entry:
        entry = self.store.put(row, family, qualifier, value)
        # Account for exactly this mutation; incrementing (rather than syncing
        # to store.mutations) keeps earlier out-of-band changes detectable.
        self._typed_mutations += 1
        if value is not None:
            self.value_type = self._widen(self.value_type, value)
        if self.text_index is not None and isinstance(value, str):
            self.text_index.add_document(row, f"{family}:{qualifier}", value)
        self.tablets.maybe_split(self.store)
        return entry

    def export_value_type(self) -> DataType | None:
        """The widest type across all stored values, None for an empty table.

        The store counts its mutations, so a mismatch with the mutations this
        table has accounted for means entries were written or removed behind
        the table's back; only then is a rescan needed — otherwise this is an
        O(1) lookup.  The rescan starts from scratch rather than the cached
        type, so the type can narrow again after out-of-band deletions.
        """
        if self.store.mutations != self._typed_mutations:
            value_type: DataType | None = None
            for entry in self.store.scan():
                if entry.value is None:
                    continue
                value_type = self._widen(value_type, entry.value)
                if value_type is DataType.TEXT:
                    break  # TEXT absorbs everything; no point scanning further
            self.value_type = value_type
            self._typed_mutations = self.store.mutations
        return self.value_type

    @staticmethod
    def _widen(current: DataType | None, value: Any) -> DataType:
        try:
            inferred = infer_type(value)
            return inferred if current is None else common_type(current, inferred)
        except TypeMismatchError:
            # Unclassifiable or incompatible values (bytes, containers,
            # timestamp+number mixes) still store fine; export as TEXT.
            return DataType.TEXT

    def scan(self, scan_range: ScanRange | None = None,
             iterators: list[ScanIterator] | None = None) -> list[Entry]:
        entries = self.store.scan(scan_range)
        if iterators:
            return list(apply_stack(entries, iterators))
        return list(entries)


class KeyValueEngine(Engine):
    """An in-process sorted key-value store with text search."""

    kind = "keyvalue"

    def __init__(self, name: str = "accumulo") -> None:
        super().__init__(name)
        self._tables: dict[str, KeyValueTable] = {}

    # ------------------------------------------------------------- Engine API
    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.KEY_VALUE | EngineCapability.TEXT_SEARCH

    def list_objects(self) -> list[str]:
        return sorted(self._tables)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._tables

    def export_relation(self, name: str) -> Relation:
        """Flatten a key-value table to (row, family, qualifier, value) rows."""
        table = self.table(name)
        relation = Relation(self.export_schema(name))
        for entry in table.store.scan():
            relation.append([entry.key.row, entry.key.family, entry.key.qualifier, entry.value])
        return relation

    def export_schema(self, name: str) -> Schema:
        """The flattened export schema, widening the value column to a type
        every stored cell can coerce to (e.g. INTEGER + FLOAT -> FLOAT).

        The table maintains the widened type on write, so this is normally a
        metadata lookup; it falls back to a merge scan only when entries were
        written behind the table's back (directly into the store).
        """
        value_type = self.table(name).export_value_type()
        if value_type is None:
            value_type = DataType.TEXT
        return Schema(
            [
                Column("row", DataType.TEXT),
                Column("family", DataType.TEXT),
                Column("qualifier", DataType.TEXT),
                Column("value", value_type),
            ]
        )

    def export_chunks(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """Stream the sorted scan as bounded chunks of flattened entries."""
        table = self.table(name)
        rows = (
            [entry.key.row, entry.key.family, entry.key.qualifier, entry.value]
            for entry in table.store.scan()
        )
        return relation_chunks(self.export_schema(name), rows, chunk_size)

    def import_chunks(self, name: str, schema: Schema, chunks: Iterable[Relation],
                      **options: Any) -> None:
        """Write cells chunk by chunk; the sorted store appends incrementally."""
        if name.lower() in self._tables and not options.get("replace", True):
            raise DuplicateObjectError(f"key-value table {name!r} already exists")
        table = KeyValueTable(name, text_indexed=bool(options.get("text_indexed", False)))
        names = schema.names
        row_column = options.get("row_column", names[0])
        for chunk in chunks:
            for row in chunk:
                row_key = str(row[row_column])
                for column in names:
                    if column == row_column:
                        continue
                    table.put(row_key, "attr", column, row[column])
        self._tables[name.lower()] = table

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        """Create a table from a relation.

        The first column becomes the row key; remaining columns become
        (family="attr", qualifier=column name) cells.
        """
        self.import_chunks(name, relation.schema, [relation], **options)

    def drop_object(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise ObjectNotFoundError(f"key-value table {name!r} does not exist")
        del self._tables[name.lower()]

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """O(1) rename: re-key the table (the CAST commit primitive)."""
        old_key, new_key = old_name.lower(), new_name.lower()
        if old_key == new_key:
            return
        table = self.table(old_name)
        if new_key in self._tables and not replace:
            raise DuplicateObjectError(f"key-value table {new_name!r} already exists")
        del self._tables[old_key]
        table.name = new_name
        table.tablets.table = new_name
        for tablet in table.tablets.tablets:
            tablet.table = new_name
        self._tables[new_key] = table

    # ----------------------------------------------------------------- tables
    def create_table(self, name: str, text_indexed: bool = False,
                     split_threshold: int = 100_000, replace: bool = False) -> KeyValueTable:
        key = name.lower()
        if key in self._tables and not replace:
            raise DuplicateObjectError(f"key-value table {name!r} already exists")
        table = KeyValueTable(name, text_indexed, split_threshold)
        self._tables[key] = table
        self.bump_write_version()
        return table

    def table(self, name: str) -> KeyValueTable:
        key = name.lower()
        if key not in self._tables:
            raise ObjectNotFoundError(f"key-value table {name!r} does not exist in {self.name!r}")
        return self._tables[key]

    # ------------------------------------------------------------------ access
    def put(self, table_name: str, row: str, family: str = "", qualifier: str = "",
            value: Any = None) -> Entry:
        entry = self.table(table_name).put(row, family, qualifier, value)
        self.bump_write_version()
        return entry

    def put_many(self, table_name: str, entries: Iterable[tuple[str, str, str, Any]]) -> int:
        table = self.table(table_name)
        count = 0
        for row, family, qualifier, value in entries:
            table.put(row, family, qualifier, value)
            count += 1
        self.bump_write_version()
        return count

    def scan(self, table_name: str, scan_range: ScanRange | None = None,
             iterators: list[ScanIterator] | None = None) -> list[Entry]:
        check_cancelled()
        self.queries_executed += 1
        return self.table(table_name).scan(scan_range, iterators)

    def get_row(self, table_name: str, row: str) -> dict[str, Any]:
        """All cells of a row as ``{family:qualifier: value}``."""
        check_cancelled()
        self.queries_executed += 1
        return {
            f"{e.key.family}:{e.key.qualifier}": e.value
            for e in self.table(table_name).store.get_row(row)
        }

    # ------------------------------------------------------------- text search
    def text_search(self, table_name: str, phrase: str) -> list[Posting]:
        """Documents in the table containing a phrase."""
        self.queries_executed += 1
        index = self._require_text_index(table_name)
        return index.search_phrase(phrase)

    def rows_with_min_documents(self, table_name: str, phrase: str, minimum: int) -> list[str]:
        """Rows with at least ``minimum`` documents containing the phrase."""
        self.queries_executed += 1
        index = self._require_text_index(table_name)
        return index.rows_with_min_documents(phrase, minimum)

    def _require_text_index(self, table_name: str) -> InvertedTextIndex:
        table = self.table(table_name)
        if table.text_index is None:
            raise ObjectNotFoundError(f"table {table_name!r} was not created with text_indexed=True")
        return table.text_index
