"""Server-side iterators, Accumulo's mechanism for pushing work to the tablet server.

An iterator wraps a stream of :class:`Entry` objects and transforms it.  The
engine composes a stack of them for every scan, so filtering, version trimming
and combining happen close to the data rather than on the client.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.engines.keyvalue.store import Entry, Key


class ScanIterator:
    """Base class: an identity pass over the entry stream."""

    def apply(self, entries: Iterable[Entry]) -> Iterator[Entry]:
        yield from entries


class VersioningIterator(ScanIterator):
    """Keep only the newest ``max_versions`` versions of each (row, family, qualifier)."""

    def __init__(self, max_versions: int = 1) -> None:
        if max_versions < 1:
            raise ValueError("max_versions must be at least 1")
        self._max_versions = max_versions

    def apply(self, entries: Iterable[Entry]) -> Iterator[Entry]:
        current_cell: tuple[str, str, str] | None = None
        emitted = 0
        for entry in entries:
            cell = (entry.key.row, entry.key.family, entry.key.qualifier)
            if cell != current_cell:
                current_cell = cell
                emitted = 0
            if emitted < self._max_versions:
                emitted += 1
                yield entry


class FilterIterator(ScanIterator):
    """Keep entries satisfying an arbitrary predicate over the entry."""

    def __init__(self, predicate: Callable[[Entry], bool]) -> None:
        self._predicate = predicate

    def apply(self, entries: Iterable[Entry]) -> Iterator[Entry]:
        for entry in entries:
            if self._predicate(entry):
                yield entry


class FamilyFilterIterator(FilterIterator):
    """Keep entries from the given column families."""

    def __init__(self, families: Iterable[str]) -> None:
        allowed = set(families)
        super().__init__(lambda entry: entry.key.family in allowed)


class ValueRegexIterator(FilterIterator):
    """Keep entries whose value (as text) matches a regular expression."""

    def __init__(self, pattern: str) -> None:
        import re

        compiled = re.compile(pattern)
        super().__init__(lambda entry: bool(compiled.search(str(entry.value))))


class CombiningIterator(ScanIterator):
    """Combine all versions/qualifiers of a cell group into one entry.

    ``key_fn`` chooses the grouping granularity (by default per row+family+qualifier);
    ``combine`` folds the values.
    """

    def __init__(
        self,
        combine: Callable[[list[Any]], Any],
        key_fn: Callable[[Key], tuple] | None = None,
    ) -> None:
        self._combine = combine
        self._key_fn = key_fn or (lambda key: (key.row, key.family, key.qualifier))

    def apply(self, entries: Iterable[Entry]) -> Iterator[Entry]:
        current: tuple | None = None
        bucket: list[Entry] = []
        for entry in entries:
            group = self._key_fn(entry.key)
            if group != current and bucket:
                yield self._emit(bucket)
                bucket = []
            current = group
            bucket.append(entry)
        if bucket:
            yield self._emit(bucket)

    def _emit(self, bucket: list[Entry]) -> Entry:
        combined = self._combine([entry.value for entry in bucket])
        return Entry(bucket[0].key, combined)


class SummingCombiner(CombiningIterator):
    """Sum numeric values per cell group (Accumulo's SummingCombiner)."""

    def __init__(self, key_fn: Callable[[Key], tuple] | None = None) -> None:
        super().__init__(lambda values: sum(float(v) for v in values), key_fn)


class CountingCombiner(CombiningIterator):
    """Count entries per cell group."""

    def __init__(self, key_fn: Callable[[Key], tuple] | None = None) -> None:
        super().__init__(lambda values: len(values), key_fn)


def apply_stack(entries: Iterable[Entry], iterators: list[ScanIterator]) -> Iterator[Entry]:
    """Thread the entry stream through a stack of iterators, in order."""
    stream: Iterable[Entry] = entries
    for iterator in iterators:
        stream = iterator.apply(stream)
    yield from stream
