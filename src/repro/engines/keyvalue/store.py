"""A sorted key-value store in the style of Apache Accumulo.

Entries are keyed by (row, column family, column qualifier, timestamp) and
kept in sorted order, so range scans over rows are cheap.  The store supports
multiple versions per key; reads go through a stack of *server-side iterators*
(:mod:`repro.engines.keyvalue.iterators`) exactly as Accumulo scans do.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True, order=True)
class Key:
    """An Accumulo-style key.  Ordering: row, family, qualifier, then newest first."""

    row: str
    family: str = ""
    qualifier: str = ""
    timestamp: int = 0

    def sort_key(self) -> tuple:
        # Timestamps sort descending so the newest version of a cell comes first.
        return (self.row, self.family, self.qualifier, -self.timestamp)


@dataclass(frozen=True)
class Entry:
    """One key/value pair."""

    key: Key
    value: Any

    @property
    def row(self) -> str:
        return self.key.row


@dataclass
class ScanRange:
    """A half-open scan range over rows ([start_row, end_row]); None is unbounded."""

    start_row: str | None = None
    end_row: str | None = None
    families: tuple[str, ...] = field(default_factory=tuple)

    def contains(self, key: Key) -> bool:
        if self.start_row is not None and key.row < self.start_row:
            return False
        if self.end_row is not None and key.row > self.end_row:
            return False
        if self.families and key.family not in self.families:
            return False
        return True


class SortedKeyValueStore:
    """The sorted map behind one Accumulo table."""

    def __init__(self) -> None:
        self._sort_keys: list[tuple] = []
        self._entries: list[Entry] = []
        self._timestamp_counter = itertools.count(1)
        #: Monotone count of completed mutations (puts and deletions), so
        #: callers can cheaply detect that the store changed under them.
        self.mutations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, row: str, family: str = "", qualifier: str = "", value: Any = None,
            timestamp: int | None = None) -> Entry:
        """Insert one entry; a missing timestamp gets the next logical tick."""
        if timestamp is None:
            timestamp = next(self._timestamp_counter)
        key = Key(row, family, qualifier, timestamp)
        entry = Entry(key, value)
        sort_key = key.sort_key()
        index = bisect.bisect_left(self._sort_keys, sort_key)
        self._sort_keys.insert(index, sort_key)
        self._entries.insert(index, entry)
        self.mutations += 1
        return entry

    def put_many(self, entries: Iterable[tuple[str, str, str, Any]]) -> int:
        """Bulk insert (row, family, qualifier, value) tuples. Returns the count."""
        count = 0
        for row, family, qualifier, value in entries:
            self.put(row, family, qualifier, value)
            count += 1
        return count

    def delete(self, row: str, family: str | None = None, qualifier: str | None = None) -> int:
        """Delete all versions matching the given key parts. Returns entries removed."""
        kept_keys: list[tuple] = []
        kept_entries: list[Entry] = []
        removed = 0
        for sort_key, entry in zip(self._sort_keys, self._entries):
            key = entry.key
            matches = key.row == row
            if family is not None:
                matches = matches and key.family == family
            if qualifier is not None:
                matches = matches and key.qualifier == qualifier
            if matches:
                removed += 1
            else:
                kept_keys.append(sort_key)
                kept_entries.append(entry)
        self._sort_keys = kept_keys
        self._entries = kept_entries
        self.mutations += removed
        return removed

    def scan(self, scan_range: ScanRange | None = None) -> Iterator[Entry]:
        """Yield entries in key order, bounded by an optional range."""
        if scan_range is None or scan_range.start_row is None:
            start_index = 0
        else:
            start_index = bisect.bisect_left(self._sort_keys, (scan_range.start_row,))
        for entry in self._entries[start_index:]:
            if scan_range is not None:
                if scan_range.end_row is not None and entry.key.row > scan_range.end_row:
                    return
                if not scan_range.contains(entry.key):
                    continue
            yield entry

    def get_row(self, row: str) -> list[Entry]:
        """All entries for one row."""
        return list(self.scan(ScanRange(start_row=row, end_row=row)))

    def row_count(self) -> int:
        """Number of distinct rows."""
        return len({entry.key.row for entry in self._entries})

    def rows(self) -> list[str]:
        """Distinct rows in sorted order."""
        seen = []
        last = None
        for entry in self._entries:
            if entry.key.row != last:
                seen.append(entry.key.row)
                last = entry.key.row
        return seen

    def split_point(self) -> str | None:
        """The median row — where a tablet would split."""
        rows = self.rows()
        if len(rows) < 2:
            return None
        return rows[len(rows) // 2]
