"""Tablet management: how a key-value table is split across servers.

Accumulo splits each table into *tablets* by row ranges and balances them
across tablet servers.  The polystore does not need real distribution, but
tablet boundaries matter for the D4M island's scan planning and for the
engine's statistics, so we model the split/merge/assignment lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.engines.keyvalue.store import ScanRange, SortedKeyValueStore


@dataclass
class Tablet:
    """One contiguous row range of a table."""

    table: str
    start_row: str | None  # inclusive; None = unbounded low
    end_row: str | None  # inclusive; None = unbounded high
    server: str = "tserver-0"

    def contains_row(self, row: str) -> bool:
        if self.start_row is not None and row < self.start_row:
            return False
        if self.end_row is not None and row > self.end_row:
            return False
        return True

    def to_scan_range(self) -> ScanRange:
        return ScanRange(start_row=self.start_row, end_row=self.end_row)


@dataclass
class TabletManager:
    """Tracks the tablets of one table and splits them when they grow too large."""

    table: str
    split_threshold: int = 100_000
    servers: list[str] = field(default_factory=lambda: ["tserver-0", "tserver-1"])
    tablets: list[Tablet] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tablets:
            self.tablets = [Tablet(self.table, None, None, self.servers[0])]

    def tablet_for_row(self, row: str) -> Tablet:
        for tablet in self.tablets:
            if tablet.contains_row(row):
                return tablet
        raise ExecutionError(f"no tablet covers row {row!r} — tablet map is inconsistent")

    def maybe_split(self, store: SortedKeyValueStore) -> bool:
        """Split the largest tablet at the store's median row if it exceeds the threshold.

        Returns True when a split happened.
        """
        if len(store) < self.split_threshold * len(self.tablets):
            return False
        split_row = store.split_point()
        if split_row is None:
            return False
        # Find the tablet containing the split row and divide it there.
        target = self.tablet_for_row(split_row)
        if target.start_row == split_row:
            return False
        index = self.tablets.index(target)
        left = Tablet(self.table, target.start_row, split_row, target.server)
        right = Tablet(
            self.table,
            split_row + "\x00",
            target.end_row,
            self.servers[(index + 1) % len(self.servers)],
        )
        self.tablets[index : index + 1] = [left, right]
        return True

    def balance(self) -> dict[str, int]:
        """Round-robin tablets across servers; returns tablets per server."""
        counts: dict[str, int] = {server: 0 for server in self.servers}
        for i, tablet in enumerate(self.tablets):
            tablet.server = self.servers[i % len(self.servers)]
            counts[tablet.server] += 1
        return counts
