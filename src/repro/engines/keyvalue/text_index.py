"""An inverted text index over key-value entries.

The MIMIC II demo stores doctors' and nurses' notes in the key-value engine
and runs keyword queries such as *"patients with at least three reports saying
'very sick'"* (Section 1.1).  This index maps terms to the (row, qualifier)
cells containing them and supports AND / OR / phrase queries plus per-row
occurrence counting — the primitive the text island builds on.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass


_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Common English stop words excluded from the index.
STOP_WORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on or that the to was were will with".split()
)


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens with stop words removed."""
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOP_WORDS]


@dataclass(frozen=True)
class Posting:
    """One occurrence list entry: a document (row, qualifier) and its term count."""

    row: str
    qualifier: str
    count: int


class InvertedTextIndex:
    """Term → postings index with boolean and phrase search."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[tuple[str, str], int]] = defaultdict(dict)
        self._documents: dict[tuple[str, str], str] = {}
        #: Normalized (tokenized, space-joined) text per document, computed
        #: once at index time so phrase search never re-tokenizes documents.
        self._normalized: dict[tuple[str, str], str] = {}

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def add_document(self, row: str, qualifier: str, text: str) -> None:
        """Index one document (e.g. one clinical note)."""
        doc_key = (row, qualifier)
        self._documents[doc_key] = text
        tokens = tokenize(text)
        self._normalized[doc_key] = " ".join(tokens)
        for term, count in Counter(tokens).items():
            self._postings[term][doc_key] = count

    def remove_row(self, row: str) -> int:
        """Drop all documents belonging to a row. Returns documents removed."""
        doomed = [key for key in self._documents if key[0] == row]
        for key in doomed:
            del self._documents[key]
            self._normalized.pop(key, None)
        for postings in self._postings.values():
            for key in doomed:
                postings.pop(key, None)
        return len(doomed)

    # ------------------------------------------------------------------ search
    def search_term(self, term: str) -> list[Posting]:
        """Documents containing a single term."""
        normalized = tokenize(term)
        if not normalized:
            return []
        postings = self._postings.get(normalized[0], {})
        return [Posting(row, qualifier, count) for (row, qualifier), count in sorted(postings.items())]

    def search_all(self, terms: list[str]) -> list[Posting]:
        """Documents containing every term (AND). Count is the minimum term count."""
        return [
            Posting(key[0], key[1], count)
            for key, count in sorted(self._search_all_counts(terms).items())
        ]

    def _search_all_counts(self, terms: list[str]) -> dict[tuple[str, str], int]:
        """AND-intersection as {document: min term count}, unordered.

        Drives the intersection from the rarest term's posting list and
        probes the others by dict lookup — no set materialization, no
        re-tokenization per candidate.
        """
        # Normalize the query terms once, not once per candidate document.
        normalized = [tokens[0] for tokens in (tokenize(t) for t in terms) if tokens]
        if not normalized:
            return {}
        posting_maps = [self._postings.get(term, {}) for term in normalized]
        smallest = min(posting_maps, key=len)
        out: dict[tuple[str, str], int] = {}
        for key, count in smallest.items():
            lowest = count
            for postings in posting_maps:
                other = postings.get(key)
                if other is None:
                    lowest = None
                    break
                if other < lowest:
                    lowest = other
            if lowest is not None:
                out[key] = lowest
        return out

    def search_any(self, terms: list[str]) -> list[Posting]:
        """Documents containing at least one term (OR). Count is the total."""
        totals: dict[tuple[str, str], int] = defaultdict(int)
        for term in terms:
            normalized = tokenize(term)
            if not normalized:
                continue
            for key, count in self._postings.get(normalized[0], {}).items():
                totals[key] += count
        return [Posting(row, qualifier, count) for (row, qualifier), count in sorted(totals.items())]

    def search_phrase(self, phrase: str) -> list[Posting]:
        """Documents containing the exact phrase (post-filtered on normalized text)."""
        return [
            Posting(key[0], key[1], count)
            for key, count in sorted(self._phrase_counts(phrase).items())
        ]

    def _phrase_counts(self, phrase: str) -> dict[tuple[str, str], int]:
        """Phrase occurrence counts per document, unordered."""
        tokens = tokenize(phrase)
        needle = " ".join(tokens)
        normalized = self._normalized
        out: dict[tuple[str, str], int] = {}
        for key in self._search_all_counts(tokens):
            occurrences = normalized[key].count(needle)
            if occurrences:
                out[key] = occurrences
        return out

    def rows_with_min_documents(self, phrase: str, minimum: int) -> list[str]:
        """Rows (patients) with at least ``minimum`` documents containing the phrase.

        This is the exact shape of the demo's text-analysis query.
        """
        per_row: dict[str, int] = defaultdict(int)
        for row, _qualifier in self._phrase_counts(phrase):
            per_row[row] += 1
        return sorted(row for row, count in per_row.items() if count >= minimum)

    def document(self, row: str, qualifier: str) -> str | None:
        """Fetch the raw text of one indexed document."""
        return self._documents.get((row, qualifier))
