"""The relational engine (PostgreSQL stand-in): SQL over row-oriented heap tables."""

from repro.engines.relational.btree import BTreeIndex
from repro.engines.relational.engine import RelationalEngine
from repro.engines.relational.storage import HeapTable

__all__ = ["BTreeIndex", "HeapTable", "RelationalEngine"]
