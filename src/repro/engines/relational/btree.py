"""An in-memory B+tree used for secondary indexes in the relational engine.

Keys are arbitrary comparable Python tuples (so composite indexes work) and
values are lists of row identifiers.  The tree supports point lookups, range
scans and ordered iteration — everything the planner needs to turn an
equality or range predicate into an index scan instead of a sequential scan.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Node:
    """A B+tree node. Leaf nodes hold (key, [row_ids]); internal nodes hold children."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []
        self.values: list[list[int]] = []
        self.next_leaf: _Node | None = None


class BTreeIndex:
    """A B+tree mapping keys to lists of row ids.

    Parameters
    ----------
    order:
        Maximum number of keys per node before it splits.
    unique:
        When True, inserting a duplicate key raises ``ValueError``.
    """

    def __init__(self, order: int = 64, unique: bool = False) -> None:
        if order < 4:
            raise ValueError("B+tree order must be at least 4")
        self._order = order
        self._unique = unique
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        """Number of (key, row_id) pairs stored."""
        return self._size

    # ------------------------------------------------------------------ insert
    def insert(self, key: Any, row_id: int) -> None:
        """Insert one key → row_id mapping, splitting nodes as necessary."""
        root = self._root
        result = self._insert(root, key, row_id)
        if result is not None:
            separator, new_node = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [root, new_node]
            self._root = new_root

    def _insert(self, node: _Node, key: Any, row_id: int) -> tuple[Any, _Node] | None:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if self._unique:
                    raise ValueError(f"duplicate key in unique index: {key!r}")
                node.values[idx].append(row_id)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [row_id])
            self._size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, row_id)
        if result is not None:
            separator, new_child = result
            node.keys.insert(idx, separator)
            node.children.insert(idx + 1, new_child)
            if len(node.keys) > self._order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sibling = _Node(is_leaf=True)
        sibling.keys = node.keys[mid:]
        sibling.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        sibling.next_leaf = node.next_leaf
        node.next_leaf = sibling
        return sibling.keys[0], sibling

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        sibling = _Node(is_leaf=False)
        sibling.keys = node.keys[mid + 1 :]
        sibling.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, sibling

    # ------------------------------------------------------------------ delete
    def delete(self, key: Any, row_id: int) -> bool:
        """Remove one key → row_id mapping. Returns True if something was removed.

        Underfull nodes are left as-is (lazy deletion); lookups stay correct and
        the tree is rebuilt on bulk reload, which matches how the engine uses it.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        try:
            leaf.values[idx].remove(row_id)
        except ValueError:
            return False
        if not leaf.values[idx]:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    # ------------------------------------------------------------------ lookup
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key: Any) -> list[int]:
        """Return all row ids stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """Yield (key, row_id) pairs with keys in [low, high], in key order.

        ``None`` bounds are open on that side.
        """
        if low is not None:
            leaf = self._find_leaf(low)
        else:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            leaf = node
        while leaf is not None:
            for key, row_ids in zip(leaf.keys, leaf.values):
                if low is not None:
                    if key < low or (key == low and not include_low):
                        continue
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                for row_id in row_ids:
                    yield key, row_id
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[Any, int]]:
        """Yield every (key, row_id) pair in key order."""
        return self.range_scan()

    def keys(self) -> Iterator[Any]:
        """Yield distinct keys in order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from node.keys
            node = node.next_leaf

    def height(self) -> int:
        """Tree height (1 for a single leaf); exposed for tests."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height
