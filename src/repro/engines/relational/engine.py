"""The relational engine facade: the PostgreSQL stand-in federated by BigDAWG.

Usage::

    engine = RelationalEngine("postgres")
    engine.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    engine.execute("INSERT INTO patients VALUES (1, 64)")
    result = engine.execute("SELECT count(*) FROM patients WHERE age > 60")
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, Sequence

from repro.common.cancellation import check_cancelled
from repro.common.errors import (
    DuplicateObjectError,
    ExecutionError,
    ObjectNotFoundError,
)
from repro.common.expressions import compile_predicate
from repro.common.parallel import (
    PARALLELISM_AUTO,
    TaskContext,
    WorkerCredits,
    partition_count_for,
    resolve_parallelism,
)
from repro.common.schema import Column, Relation, Row, Schema, TableDefinition
from repro.engines.base import (
    DEFAULT_CHUNK_ROWS,
    Engine,
    EngineCapability,
    columnar_relation_chunks,
)
from repro.engines.relational.executor import Executor
from repro.engines.relational.optimizer import Optimizer
from repro.observability.profile import PlanProfiler, SlowQueryLog
from repro.engines.relational.planner import (
    JoinNode,
    LogicalPlan,
    Planner,
    TableStatisticsProvider,
)
from repro.engines.relational.statistics import StatisticsCatalog, TableStats
from repro.engines.relational.vectorized import BatchExecutor
from repro.engines.relational.sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.engines.relational.sql.parser import parse_sql
from repro.engines.relational.storage import HeapTable
from repro.engines.relational.transactions import Transaction, TransactionManager


#: Valid values for :attr:`RelationalEngine.execution_mode`.
EXECUTION_MODES = ("vectorized", "row")


class RelationalEngine(Engine, TableStatisticsProvider):
    """An in-process SQL engine over row-oriented heap tables.

    SELECT statements run on one of two executors, selected by
    ``execution_mode``:

    * ``"vectorized"`` (default) — the columnar batch pipeline with one-time
      expression compilation (:mod:`repro.engines.relational.vectorized`);
    * ``"row"`` — the classic row-at-a-time volcano executor.

    Both return identical results; the knob exists so benchmarks (and the
    runtime's metrics) can compare the two paths.
    """

    kind = "relational"

    def __init__(self, name: str = "postgres", execution_mode: str = "vectorized") -> None:
        super().__init__(name)
        self._tables: dict[str, HeapTable] = {}
        self._planner = Planner(self)
        self._executor = Executor(self)
        self._batch_executor = BatchExecutor(self, row_executor=self._executor)
        self._transactions = TransactionManager(self)
        self._execution_mode = "vectorized"
        self.execution_mode = execution_mode
        #: Table/column statistics (row counts, NDV, null fractions, widths)
        #: maintained incrementally on DML and read by the optimizer pass.
        self.statistics = StatisticsCatalog(self)
        #: Whether SELECT plans run through the statistics-driven optimizer
        #: (projection pushdown, byte-based build side, conjunct ordering).
        #: Off, plans execute exactly as the rule-based planner built them —
        #: the baseline the wide-join benchmark measures against.
        self.optimizer_enabled = True
        #: Whether grouped aggregation streams batches through the shared
        #: incremental key dictionary (peak memory O(batch + groups)); off,
        #: the legacy path materializes the whole input as one block.
        self.streaming_groupby = True
        #: SELECTs served per executor path, for the runtime's metrics.
        self.executions_by_mode: dict[str, int] = {mode: 0 for mode in EXECUTION_MODES}
        #: Row-executor fallbacks taken by the batch pipeline, keyed by the
        #: reason string EXPLAIN shows (e.g. "non-equi join"); surfaced by
        #: the runtime as ``relational_fallback_reasons``.
        self.fallback_reasons: dict[str, int] = {}
        #: Total columns the optimizer pruned below joins/aggregates, and
        #: grouped-aggregation executions per path ("stream" vs "block" vs
        #: per-row), for the runtime's metrics snapshot.
        self.columns_pruned = 0
        self.groupby_paths: dict[str, int] = {}
        #: Largest resident row footprint (batch + groups) any streaming
        #: group-by reached — or the whole block size when the block path
        #: runs, which is exactly what the CI memory guard watches for.
        self.peak_groupby_resident_rows = 0
        #: Intra-query worker count: ``"auto"`` (core count, capped) or an
        #: explicit integer ≥ 1.  1 keeps the pipeline fully serial.
        self._parallelism: int | str = PARALLELISM_AUTO
        #: Fleet-wide extra-worker budget, installed by the runtime so one
        #: big query cannot starve the many-client path (None standalone).
        self.task_credits: WorkerCredits | None = None
        #: Build-side memory budget in (estimated) bytes for hash joins;
        #: None disables the budget.  Over budget, the join switches to the
        #: radix-partitioned spill path instead of pinning the build block.
        self.join_memory_budget: int | None = None
        #: Fan-out of the spill path's radix partitioning (and its recursion).
        self.join_spill_partitions = 8
        #: Parallel-pipeline observability, surfaced by the runtime metrics:
        #: scan morsels executed, build partitions spilled to disk, the
        #: largest estimated resident build-side footprint, and columns
        #: dropped from group-by representative rows.
        self.morsels_executed = 0
        self.partitions_spilled = 0
        self.peak_build_bytes = 0
        self.representative_columns_pruned = 0
        #: SELECTs slower than ``slow_queries.threshold_s`` are logged here
        #: with their SQL and wall time (free until a threshold is set).
        self.slow_queries = SlowQueryLog()

    def record_fallback(self, reason: str) -> None:
        """Count one batch-pipeline fallback to the row executor."""
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def record_groupby(self, path: str, peak_rows: int) -> None:
        """Count one grouped aggregation by path and track peak resident rows."""
        self.groupby_paths[path] = self.groupby_paths.get(path, 0) + 1
        if peak_rows > self.peak_groupby_resident_rows:
            self.peak_groupby_resident_rows = peak_rows

    def record_morsels(self, count: int) -> None:
        """Count scan morsels (bounded ColumnBatches) emitted into pipelines."""
        self.morsels_executed += count

    def record_spill(self, partitions: int) -> None:
        """Count join build partitions written to temp files."""
        self.partitions_spilled += partitions

    def record_build_bytes(self, nbytes: int) -> None:
        """Track the largest estimated resident join build footprint."""
        if nbytes > self.peak_build_bytes:
            self.peak_build_bytes = nbytes

    def record_representative_prune(self, count: int) -> None:
        """Count columns dropped from group-by representative rows."""
        self.representative_columns_pruned += count

    @property
    def execution_mode(self) -> str:
        """Which executor serves SELECTs: ``"vectorized"`` or ``"row"``."""
        return self._execution_mode

    @execution_mode.setter
    def execution_mode(self, mode: str) -> None:
        if mode not in EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {EXECUTION_MODES}, got {mode!r}"
            )
        self._execution_mode = mode

    @property
    def parallelism(self) -> int | str:
        """Intra-query workers: ``"auto"`` or an explicit integer ≥ 1."""
        return self._parallelism

    @parallelism.setter
    def parallelism(self, value: int | str) -> None:
        resolve_parallelism(value)  # validates
        self._parallelism = value

    def effective_parallelism(self) -> int:
        """The concrete worker count ``parallelism`` resolves to right now."""
        return resolve_parallelism(self._parallelism)

    def task_context(self) -> TaskContext:
        """A per-query :class:`TaskContext` honoring the parallelism knob.

        When the runtime installed :attr:`task_credits`, extra workers are
        borrowed non-blockingly from the fleet-wide budget and returned on
        ``close()`` — under concurrent client load a query gets fewer (or
        zero) extra workers and degrades toward serial execution.
        """
        workers = self.effective_parallelism()
        if workers <= 1:
            return TaskContext(1)
        credits = self.task_credits
        if credits is None:
            return TaskContext(workers)
        extra = credits.acquire_up_to(workers - 1)
        if extra == 0:
            return TaskContext(1)
        return TaskContext(extra + 1, on_close=lambda: credits.release(extra))

    # ------------------------------------------------------------- Engine API
    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.SQL | EngineCapability.TRANSACTIONS

    def list_objects(self) -> list[str]:
        return sorted(self._tables)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._tables

    def export_relation(self, name: str) -> Relation:
        table = self.table(name)
        relation = Relation(table.schema)
        for _row_id, values in table.scan():
            relation.rows.append(Row(table.schema, values))
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        self.import_chunks(name, relation.schema, [relation], **options)

    def drop_object(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise ObjectNotFoundError(f"table {name!r} does not exist")
        del self._tables[key]
        self.statistics.invalidate(name)

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """O(1) rename: re-key the heap table (the CAST commit primitive)."""
        old_key, new_key = old_name.lower(), new_name.lower()
        if old_key == new_key:
            return
        table = self.table(old_name)
        if new_key in self._tables and not replace:
            raise DuplicateObjectError(f"table {new_name!r} already exists")
        del self._tables[old_key]
        table.name = new_name
        self._tables[new_key] = table
        self.statistics.invalidate(old_name)
        self.statistics.invalidate(new_name)

    def export_schema(self, name: str) -> Schema:
        return self.table(name).schema

    def export_chunks(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """Stream the table scan as bounded *columnar* chunks.

        Each chunk is a :class:`~repro.common.schema.ColumnarRelation` built
        straight from the heap table's value tuples — no per-row ``Row``
        objects — so a CAST whose codec reads columns (the binary columnar
        layout) moves data from storage to the wire zero-conversion.
        """
        table = self.table(name)
        return columnar_relation_chunks(table.schema, table.scan_values(), chunk_size)

    def import_chunks(self, name: str, schema: Schema, chunks: Iterable[Relation],
                      **options: Any) -> None:
        """Build the destination table one chunk at a time, then publish it."""
        primary_key = options.get("primary_key", ())
        replace = options.get("replace", True)
        key = name.lower()
        if key in self._tables and not replace:
            raise DuplicateObjectError(f"table {name!r} already exists")
        table = HeapTable(name, schema, primary_key)
        for chunk in chunks:
            for row in chunk:
                table.insert(row.values)
        self._tables[key] = table
        self.statistics.invalidate(name)

    # -------------------------------------------------------------- statistics
    def table(self, name: str) -> HeapTable:
        key = name.lower()
        if key not in self._tables:
            raise ObjectNotFoundError(f"table {name!r} does not exist in engine {self.name!r}")
        return self._tables[key]

    def table_row_count(self, table: str) -> int:
        return self.table(table).row_count

    def table_indexes(self, table: str) -> dict[str, tuple[str, ...]]:
        return self.table(table).indexes()

    def table_columns(self, table: str) -> list[str]:
        return self.table(table).schema.names

    def table_stats(self, table: str) -> TableStats | None:
        """Full table statistics for the optimizer (lazily analyzed)."""
        return self.statistics.table_stats(table)

    # ------------------------------------------------------------------ DDL/DML
    def create_table(
        self,
        name: str,
        schema: Schema,
        primary_key: Sequence[str] = (),
        if_not_exists: bool = False,
    ) -> TableDefinition:
        """Create a table from a schema object (programmatic path, used by loaders)."""
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return TableDefinition(name, schema, tuple(primary_key), self.name)
            raise DuplicateObjectError(f"table {name!r} already exists")
        self._tables[key] = HeapTable(name, schema, primary_key)
        self.statistics.invalidate(name)
        self.bump_write_version()
        return TableDefinition(name, schema, tuple(primary_key), self.name)

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        table = self.table(table_name)
        txn = self._transactions.active_transaction
        count = 0
        for values in rows:
            row_id = table.insert(values)
            if txn is not None:
                txn.record_insert(table_name, row_id)
            count += 1
        self.statistics.note_mutation(table_name, count)
        self.bump_write_version()
        return count

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str], unique: bool = False
    ) -> None:
        self.table(table_name).create_index(index_name, columns, unique)
        self.bump_write_version()

    # ------------------------------------------------------------------ query
    def execute(self, sql: str) -> Relation:
        """Parse, plan and execute one SQL statement.

        DDL and DML statements return a one-column relation with the affected
        row count; SELECT returns its result set.
        """
        check_cancelled()
        statement = parse_sql(sql)
        if self.slow_queries.enabled and isinstance(statement, SelectStatement):
            started = time.perf_counter()
            result = self.execute_statement(statement)
            self.slow_queries.observe(
                sql, time.perf_counter() - started,
                engine=self.name, mode=self._execution_mode,
            )
            return result
        return self.execute_statement(statement)

    def execute_statement(self, statement: Statement) -> Relation:
        self.queries_executed += 1
        if isinstance(statement, SelectStatement):
            plan = self._optimized_plan(statement)
            mode = self._execution_mode
            self.executions_by_mode[mode] += 1
            if mode == "vectorized":
                return self._batch_executor.execute(plan)
            return self._executor.execute(plan)
        # Everything below is DDL or DML: advance the write version so cached
        # results depending on this engine's state are invalidated.
        self.bump_write_version()
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateIndexStatement):
            self.create_index(statement.index, statement.table, statement.columns, statement.unique)
            return self._count_relation(0)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        raise ExecutionError(f"unsupported statement type: {type(statement).__name__}")

    def plan(self, sql: str) -> LogicalPlan:
        """The (optimized) logical plan a SELECT would execute — the hook
        benchmarks and tests use to inspect pruning and build-side choices.
        Inspection only: the ``columns_pruned`` metric counts executed
        queries, not plans looked at."""
        statement = parse_sql(sql)
        if not isinstance(statement, SelectStatement):
            raise ExecutionError("only SELECT statements are planned")
        return self._optimized_plan(statement, record=False)

    def _optimized_plan(
        self, statement: SelectStatement, record: bool = True
    ) -> LogicalPlan:
        plan = self._planner.plan_select(statement)
        if not self.optimizer_enabled:
            return plan
        result = Optimizer(self).optimize(plan)
        if record:
            self.columns_pruned += result.columns_pruned
        return result.plan

    def explain(self, sql: str, analyze: bool = False) -> str:
        """Return the optimized plan for a SELECT statement as indented text.

        The first line reports the engine's execution mode and the second a
        ``Stats(...)`` summary of every referenced table (live row count and
        estimated bytes from the statistics layer).  In vectorized mode
        every operator is tagged ``[vectorized]`` or — when it falls back to
        the row executor — ``[row: <reason>]``; optimizer-inserted prunes
        render as ``Project(kept...) [pruned: a,b,c]``.

        With ``analyze=True`` the query is actually executed and every
        operator is additionally annotated with its estimated vs. actual
        row count, batch count and wall time — ``(estimated=N rows,
        actual=M rows, batches=B, time=X.XXXms)`` — followed by a
        ``Total(...)`` footer, in the spirit of ``EXPLAIN ANALYZE``.
        """
        statement = parse_sql(sql)
        if not isinstance(statement, SelectStatement):
            raise ExecutionError("EXPLAIN is only supported for SELECT statements")
        plan = self._planner.plan_select(statement)
        tables: list[str] = []
        if self.optimizer_enabled:
            result = Optimizer(self).optimize(plan)
            plan, tables = result.plan, result.tables
        header = f"ExecutionMode({self._execution_mode})"
        stats_line = self._stats_line(tables)
        if stats_line:
            header = f"{header}\n{stats_line}"
        workers = self.effective_parallelism()
        header = (
            f"{header}\nParallel(workers={workers}, "
            f"partitions={partition_count_for(workers)})"
        )
        profiler: PlanProfiler | None = None
        total_s: float | None = None
        result_rows: int | None = None
        if analyze:
            profiler = PlanProfiler(plan, estimator=self.estimated_plan_rows)
            mode = self._execution_mode
            self._batch_executor.profiler = profiler
            self._executor.profiler = profiler
            started = time.perf_counter()
            try:
                if mode == "vectorized":
                    result = self._batch_executor.execute(plan)
                else:
                    result = self._executor.execute(plan)
            finally:
                self._batch_executor.profiler = None
                self._executor.profiler = None
            total_s = time.perf_counter() - started
            result_rows = len(result.rows)
            self.queries_executed += 1
            self.executions_by_mode[mode] += 1

        def annotate(node):
            parts: list[str] = []
            if self._execution_mode == "vectorized":
                reason = BatchExecutor.fallback_reason(node)
                if reason is not None:
                    parts.append(f"[row: {reason}]")
                else:
                    tag = "[vectorized]"
                    if isinstance(node, JoinNode) and self.join_memory_budget is not None:
                        build = (
                            node.left
                            if node.join_type == "inner" and node.build_side != "right"
                            else node.right
                        )
                        estimate = self.estimated_plan_bytes(build)
                        if estimate is not None and estimate > self.join_memory_budget:
                            tag = f"{tag} [spill]"
                    parts.append(tag)
            if profiler is not None:
                parts.append(profiler.annotation(node))
            return " ".join(parts)

        if self._execution_mode == "vectorized" or profiler is not None:
            text = header + "\n" + plan.explain(annotate=annotate)
        else:
            text = header + "\n" + plan.explain()
        if total_s is not None:
            text = (
                f"{text.rstrip()}\n"
                f"Total(rows={result_rows}, time={total_s * 1000:.3f}ms)\n"
            )
        return text

    def estimated_plan_rows(self, plan) -> int | None:
        """Estimated output row count of a plan subtree, or None if unknown.

        Same facade pattern as :meth:`estimated_plan_bytes` — EXPLAIN
        ANALYZE uses it to print estimated vs. actual cardinality per
        operator without importing the optimizer.
        """
        try:
            return Optimizer(self)._estimate_rows(plan)
        except Exception:
            return None

    def estimated_plan_bytes(self, plan) -> int | None:
        """Estimated materialized bytes of a plan subtree, or None if unknown.

        Thin facade over the optimizer's cardinality model so the executor's
        join memory budget can consult statistics without importing the
        optimizer directly.
        """
        try:
            return Optimizer(self)._estimate_bytes(plan)
        except Exception:
            return None

    def _stats_line(self, tables: list[str]) -> str | None:
        """The EXPLAIN ``Stats(...)`` line for the referenced base tables."""
        parts = []
        for table in tables:
            stats = self.statistics.table_stats(table)
            if stats is None:
                continue
            parts.append(
                f"{table}: rows={stats.row_count}, bytes~{stats.estimated_bytes}"
            )
        if not parts:
            return None
        return f"Stats({'; '.join(parts)})"

    # ----------------------------------------------------------------- private
    def _execute_create_table(self, statement: CreateTableStatement) -> Relation:
        columns = [Column(c.name, c.dtype, c.nullable) for c in statement.columns]
        primary_key = tuple(c.name for c in statement.columns if c.primary_key)
        self.create_table(
            statement.table, Schema(columns), primary_key, statement.if_not_exists
        )
        return self._count_relation(0)

    def _execute_drop_table(self, statement: DropTableStatement) -> Relation:
        key = statement.table.lower()
        if key not in self._tables:
            if statement.if_exists:
                return self._count_relation(0)
            raise ObjectNotFoundError(f"table {statement.table!r} does not exist")
        del self._tables[key]
        self.statistics.invalidate(statement.table)
        return self._count_relation(0)

    def _execute_insert(self, statement: InsertStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        count = 0
        for expressions in statement.rows:
            literal_values = [expr.evaluate(None) if _is_constant(expr) else None for expr in expressions]
            if statement.columns:
                values = [None] * len(table.schema)
                for column, value in zip(statement.columns, literal_values):
                    values[table.schema.index_of(column)] = value
            else:
                values = literal_values
            row_id = table.insert(values)
            if txn is not None:
                txn.record_insert(statement.table, row_id)
            count += 1
        self.statistics.note_mutation(statement.table, count)
        return self._count_relation(count)

    def _execute_update(self, statement: UpdateStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        matching = table.apply_filter_values(
            compile_predicate(statement.where, table.schema)
        )
        assignments = [
            (table.schema.index_of(column), expression.compile(table.schema))
            for column, expression in statement.assignments.items()
        ]
        for row_id in matching:
            old = table.get(row_id)
            new_values = list(old)
            for index, expression in assignments:
                new_values[index] = expression(old)
            if txn is not None:
                txn.record_update(statement.table, row_id, old)
            table.update(row_id, new_values)
        self.statistics.note_mutation(statement.table, len(matching))
        return self._count_relation(len(matching))

    def _execute_delete(self, statement: DeleteStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        matching = table.apply_filter_values(
            compile_predicate(statement.where, table.schema)
        )
        for row_id in matching:
            if txn is not None:
                txn.record_delete(statement.table, row_id, table.get(row_id))
            table.delete(row_id)
        self.statistics.note_mutation(statement.table, len(matching))
        return self._count_relation(len(matching))

    @staticmethod
    def _count_relation(count: int) -> Relation:
        schema = Schema([Column("affected_rows", "integer")])
        relation = Relation(schema)
        relation.append([count])
        return relation

    # ------------------------------------------------------------ transactions
    def begin(self) -> Transaction:
        """Start a transaction; use as a context manager for commit/rollback."""
        return self._transactions.begin()

    def _finish_transaction(self, txn: Transaction) -> None:
        self._transactions.finish(txn)


def _is_constant(expr: Any) -> bool:
    """INSERT values must be constant-foldable (no column references)."""
    return not expr.referenced_columns()
