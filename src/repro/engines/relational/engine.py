"""The relational engine facade: the PostgreSQL stand-in federated by BigDAWG.

Usage::

    engine = RelationalEngine("postgres")
    engine.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    engine.execute("INSERT INTO patients VALUES (1, 64)")
    result = engine.execute("SELECT count(*) FROM patients WHERE age > 60")
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import (
    DuplicateObjectError,
    ExecutionError,
    ObjectNotFoundError,
)
from repro.common.expressions import evaluate_predicate
from repro.common.schema import Column, Relation, Row, Schema, TableDefinition
from repro.engines.base import DEFAULT_CHUNK_ROWS, Engine, EngineCapability, relation_chunks
from repro.engines.relational.executor import Executor
from repro.engines.relational.planner import Planner, TableStatisticsProvider
from repro.engines.relational.sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.engines.relational.sql.parser import parse_sql
from repro.engines.relational.storage import HeapTable
from repro.engines.relational.transactions import Transaction, TransactionManager


class RelationalEngine(Engine, TableStatisticsProvider):
    """An in-process SQL engine over row-oriented heap tables."""

    kind = "relational"

    def __init__(self, name: str = "postgres") -> None:
        super().__init__(name)
        self._tables: dict[str, HeapTable] = {}
        self._planner = Planner(self)
        self._executor = Executor(self)
        self._transactions = TransactionManager(self)

    # ------------------------------------------------------------- Engine API
    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.SQL | EngineCapability.TRANSACTIONS

    def list_objects(self) -> list[str]:
        return sorted(self._tables)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._tables

    def export_relation(self, name: str) -> Relation:
        table = self.table(name)
        relation = Relation(table.schema)
        for _row_id, values in table.scan():
            relation.rows.append(Row(table.schema, values))
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        self.import_chunks(name, relation.schema, [relation], **options)

    def drop_object(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise ObjectNotFoundError(f"table {name!r} does not exist")
        del self._tables[key]

    def export_schema(self, name: str) -> Schema:
        return self.table(name).schema

    def export_chunks(self, name: str, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Relation]:
        """Stream the table scan as bounded chunks without a full-relation copy."""
        table = self.table(name)
        rows = (Row(table.schema, values) for _row_id, values in table.scan())
        return relation_chunks(table.schema, rows, chunk_size, validate=False)

    def import_chunks(self, name: str, schema: Schema, chunks: Iterable[Relation],
                      **options: Any) -> None:
        """Build the destination table one chunk at a time, then publish it."""
        primary_key = options.get("primary_key", ())
        replace = options.get("replace", True)
        key = name.lower()
        if key in self._tables and not replace:
            raise DuplicateObjectError(f"table {name!r} already exists")
        table = HeapTable(name, schema, primary_key)
        for chunk in chunks:
            for row in chunk:
                table.insert(row.values)
        self._tables[key] = table

    # -------------------------------------------------------------- statistics
    def table(self, name: str) -> HeapTable:
        key = name.lower()
        if key not in self._tables:
            raise ObjectNotFoundError(f"table {name!r} does not exist in engine {self.name!r}")
        return self._tables[key]

    def table_row_count(self, table: str) -> int:
        return self.table(table).row_count

    def table_indexes(self, table: str) -> dict[str, tuple[str, ...]]:
        return self.table(table).indexes()

    def table_columns(self, table: str) -> list[str]:
        return self.table(table).schema.names

    # ------------------------------------------------------------------ DDL/DML
    def create_table(
        self,
        name: str,
        schema: Schema,
        primary_key: Sequence[str] = (),
        if_not_exists: bool = False,
    ) -> TableDefinition:
        """Create a table from a schema object (programmatic path, used by loaders)."""
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return TableDefinition(name, schema, tuple(primary_key), self.name)
            raise DuplicateObjectError(f"table {name!r} already exists")
        self._tables[key] = HeapTable(name, schema, primary_key)
        self.bump_write_version()
        return TableDefinition(name, schema, tuple(primary_key), self.name)

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        table = self.table(table_name)
        txn = self._transactions.active_transaction
        count = 0
        for values in rows:
            row_id = table.insert(values)
            if txn is not None:
                txn.record_insert(table_name, row_id)
            count += 1
        self.bump_write_version()
        return count

    def create_index(
        self, index_name: str, table_name: str, columns: Sequence[str], unique: bool = False
    ) -> None:
        self.table(table_name).create_index(index_name, columns, unique)
        self.bump_write_version()

    # ------------------------------------------------------------------ query
    def execute(self, sql: str) -> Relation:
        """Parse, plan and execute one SQL statement.

        DDL and DML statements return a one-column relation with the affected
        row count; SELECT returns its result set.
        """
        statement = parse_sql(sql)
        return self.execute_statement(statement)

    def execute_statement(self, statement: Statement) -> Relation:
        self.queries_executed += 1
        if isinstance(statement, SelectStatement):
            plan = self._planner.plan_select(statement)
            return self._executor.execute(plan)
        # Everything below is DDL or DML: advance the write version so cached
        # results depending on this engine's state are invalidated.
        self.bump_write_version()
        if isinstance(statement, CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateIndexStatement):
            self.create_index(statement.index, statement.table, statement.columns, statement.unique)
            return self._count_relation(0)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        raise ExecutionError(f"unsupported statement type: {type(statement).__name__}")

    def explain(self, sql: str) -> str:
        """Return the optimized plan for a SELECT statement as indented text."""
        statement = parse_sql(sql)
        if not isinstance(statement, SelectStatement):
            raise ExecutionError("EXPLAIN is only supported for SELECT statements")
        plan = self._planner.plan_select(statement)
        return plan.explain()

    # ----------------------------------------------------------------- private
    def _execute_create_table(self, statement: CreateTableStatement) -> Relation:
        columns = [Column(c.name, c.dtype, c.nullable) for c in statement.columns]
        primary_key = tuple(c.name for c in statement.columns if c.primary_key)
        self.create_table(
            statement.table, Schema(columns), primary_key, statement.if_not_exists
        )
        return self._count_relation(0)

    def _execute_drop_table(self, statement: DropTableStatement) -> Relation:
        key = statement.table.lower()
        if key not in self._tables:
            if statement.if_exists:
                return self._count_relation(0)
            raise ObjectNotFoundError(f"table {statement.table!r} does not exist")
        del self._tables[key]
        return self._count_relation(0)

    def _execute_insert(self, statement: InsertStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        count = 0
        for expressions in statement.rows:
            literal_values = [expr.evaluate(None) if _is_constant(expr) else None for expr in expressions]
            if statement.columns:
                values = [None] * len(table.schema)
                for column, value in zip(statement.columns, literal_values):
                    values[table.schema.index_of(column)] = value
            else:
                values = literal_values
            row_id = table.insert(values)
            if txn is not None:
                txn.record_insert(statement.table, row_id)
            count += 1
        return self._count_relation(count)

    def _execute_update(self, statement: UpdateStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        matching = table.apply_filter(
            lambda row: evaluate_predicate(statement.where, row)
        )
        for row_id in matching:
            old = table.get(row_id)
            row = Row(table.schema, old)
            new_values = list(old)
            for column, expression in statement.assignments.items():
                new_values[table.schema.index_of(column)] = expression.evaluate(row)
            if txn is not None:
                txn.record_update(statement.table, row_id, old)
            table.update(row_id, new_values)
        return self._count_relation(len(matching))

    def _execute_delete(self, statement: DeleteStatement) -> Relation:
        table = self.table(statement.table)
        txn = self._transactions.active_transaction
        matching = table.apply_filter(
            lambda row: evaluate_predicate(statement.where, row)
        )
        for row_id in matching:
            if txn is not None:
                txn.record_delete(statement.table, row_id, table.get(row_id))
            table.delete(row_id)
        return self._count_relation(len(matching))

    @staticmethod
    def _count_relation(count: int) -> Relation:
        schema = Schema([Column("affected_rows", "integer")])
        relation = Relation(schema)
        relation.append([count])
        return relation

    # ------------------------------------------------------------ transactions
    def begin(self) -> Transaction:
        """Start a transaction; use as a context manager for commit/rollback."""
        return self._transactions.begin()

    def _finish_transaction(self, txn: Transaction) -> None:
        self._transactions.finish(txn)


def _is_constant(expr: Any) -> bool:
    """INSERT values must be constant-foldable (no column references)."""
    return not expr.referenced_columns()
