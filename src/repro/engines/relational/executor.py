"""Physical execution of logical plans (volcano / iterator style, materialized).

Each ``_execute_*`` method consumes its children's output relations and
produces a new relation.  This keeps the engine simple while preserving the
cost structure the benchmarks care about: sequential scans touch every row,
index scans touch only matching rows, hash joins build on the smaller side.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.common.errors import ExecutionError
from repro.common.expressions import ColumnRef, Expression, evaluate_predicate
from repro.common.schema import Column, Relation, Row, Schema
from repro.common.types import DataType, infer_type
from repro.engines.relational.functions import make_aggregate
from repro.engines.relational.planner import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    PruneNode,
    ScanNode,
    SortNode,
    SubqueryNode,
)
from repro.engines.relational.sql.ast import SelectItem

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.relational.engine import RelationalEngine


_DUAL_SCHEMA = Schema([Column("__dual__", DataType.INTEGER)])


class Executor:
    """Executes logical plans against a :class:`RelationalEngine`'s storage."""

    def __init__(self, engine: "RelationalEngine") -> None:
        self._engine = engine
        #: Installed by ``RelationalEngine.explain(analyze=True)`` for the
        #: duration of one query; None skips profiling entirely.
        self.profiler = None

    def execute(self, plan: LogicalPlan) -> Relation:
        profiler = self.profiler
        if profiler is None:
            return self._dispatch(plan)
        entry = profiler.entry(plan)
        if entry is None:
            return self._dispatch(plan)
        # Inclusive time: the row executor materializes bottom-up, so each
        # node's elapsed time covers its whole subtree (children record
        # their own smaller inclusive totals as the recursion returns).
        started = time.perf_counter()
        relation = self._dispatch(plan)
        entry.record(len(relation.rows), time.perf_counter() - started, mode="row")
        return relation

    def _dispatch(self, plan: LogicalPlan) -> Relation:
        if isinstance(plan, ScanNode):
            return self._execute_scan(plan)
        if isinstance(plan, IndexScanNode):
            return self._execute_index_scan(plan)
        if isinstance(plan, SubqueryNode):
            return self._execute_subquery(plan)
        if isinstance(plan, FilterNode):
            return self._execute_filter(plan)
        if isinstance(plan, JoinNode):
            return self._execute_join(plan)
        if isinstance(plan, AggregateNode):
            return self._execute_aggregate(plan)
        if isinstance(plan, ProjectNode):
            return self._execute_project(plan)
        if isinstance(plan, PruneNode):
            return self._execute_prune(plan)
        if isinstance(plan, SortNode):
            return self._execute_sort(plan)
        if isinstance(plan, LimitNode):
            return self._execute_limit(plan)
        raise ExecutionError(f"unknown plan node: {type(plan).__name__}")

    # ------------------------------------------------------------------ scans
    def _execute_scan(self, node: ScanNode) -> Relation:
        if node.table == "__dual__":
            relation = Relation(_DUAL_SCHEMA)
            relation.append([0])
            return relation
        table = self._engine.table(node.table)
        schema = self._qualified_schema(table.schema, node.alias or node.table)
        relation = Relation(schema)
        if node.predicate is None:
            # No predicate: bulk-wrap the stored tuples, skipping the
            # per-row generator and predicate machinery entirely.
            relation.rows.extend(Row(schema, values) for values in table.scan_values())
            return relation
        for values in table.scan_values():
            row = Row(schema, values)
            if evaluate_predicate(node.predicate, row):
                relation.rows.append(row)
        return relation

    def _execute_index_scan(self, node: IndexScanNode) -> Relation:
        table = self._engine.table(node.table)
        schema = self._qualified_schema(table.schema, node.alias or node.table)
        relation = Relation(schema)
        if node.equals is not None:
            matches = table.index_lookup(node.index_name, node.equals)
        else:
            matches = list(
                table.index_range(
                    node.index_name,
                    low=node.low,
                    high=node.high,
                    include_low=node.include_low,
                    include_high=node.include_high,
                )
            )
        for _row_id, values in matches:
            row = Row(schema, values)
            if node.residual is None or evaluate_predicate(node.residual, row):
                relation.rows.append(row)
        return relation

    def _execute_subquery(self, node: SubqueryNode) -> Relation:
        inner = self.execute(node.plan)
        schema = self._qualified_schema(inner.schema, node.alias)
        result = Relation(schema)
        for row in inner:
            result.rows.append(Row(schema, row.values))
        return result

    @staticmethod
    def _qualified_schema(schema: Schema, qualifier: str) -> Schema:
        """Expose both bare and table-qualified column names via suffix matching."""
        # Column.matches already supports "t.col" vs "col"; keep bare names but
        # prefix them with the qualifier so self-joins stay unambiguous.
        names = schema.names
        if any("." in n for n in names):
            return schema
        return Schema(
            [Column(f"{qualifier}.{c.name}", c.dtype, c.nullable) for c in schema]
        )

    # ---------------------------------------------------------------- operators
    def _execute_filter(self, node: FilterNode) -> Relation:
        child = self.execute(node.child)
        result = Relation(child.schema)
        for row in child:
            if evaluate_predicate(node.predicate, row):
                result.rows.append(row)
        return result

    def _execute_join(self, node: JoinNode) -> Relation:
        left = self.execute(node.left)
        right = self.execute(node.right)
        joined_schema = left.schema.concat(right.schema)
        if node.strategy == "hash" and node.condition is not None:
            keys = self._equi_join_keys(node.condition, left.schema, right.schema)
            if keys:
                return self._hash_join(node, left, right, joined_schema, keys)
        # Nested loop (cross joins and non-equi conditions, all join types).
        result = Relation(joined_schema)
        track_right = node.join_type in ("right", "full")
        right_matched = [False] * len(right.rows) if track_right else None
        for left_row in left:
            matched = False
            for r_index, right_row in enumerate(right.rows):
                candidate = Row(joined_schema, left_row.values + right_row.values)
                if node.condition is None or evaluate_predicate(node.condition, candidate):
                    result.rows.append(candidate)
                    matched = True
                    if right_matched is not None:
                        right_matched[r_index] = True
            if node.join_type in ("left", "full") and not matched:
                padding = tuple([None] * len(right.schema))
                result.rows.append(Row(joined_schema, left_row.values + padding))
        if right_matched is not None:
            padding = tuple([None] * len(left.schema))
            for r_index, right_row in enumerate(right.rows):
                if not right_matched[r_index]:
                    result.rows.append(Row(joined_schema, padding + right_row.values))
        return result

    def _hash_join(
        self,
        node: JoinNode,
        left: Relation,
        right: Relation,
        joined_schema: Schema,
        keys: list[tuple[str, str]],
    ) -> Relation:
        result = Relation(joined_schema)
        left_cols = [pair[0] for pair in keys]
        right_cols = [pair[1] for pair in keys]
        # Honor the planner's build-side hint; outer joins always build on
        # the right so the probe (and therefore the output) stays left-major.
        build_on_left = node.join_type == "inner" and node.build_side != "right"
        if build_on_left:
            build_rel, build_cols = left, left_cols
            probe_rel, probe_cols = right, right_cols
        else:
            build_rel, build_cols = right, right_cols
            probe_rel, probe_cols = left, left_cols
        build: dict[tuple, list[tuple[int, Row]]] = {}
        for index, row in enumerate(build_rel.rows):
            key = tuple(row[c] for c in build_cols)
            build.setdefault(key, []).append((index, row))
        track_build = node.join_type in ("right", "full")
        build_matched = [False] * len(build_rel.rows) if track_build else None
        pad_probe = node.join_type in ("left", "full")
        build_padding = tuple([None] * len(build_rel.schema))
        for probe_row in probe_rel:
            key = tuple(probe_row[c] for c in probe_cols)
            matched = False
            for index, build_row in build.get(key, ()):
                if build_on_left:
                    values = build_row.values + probe_row.values
                else:
                    values = probe_row.values + build_row.values
                candidate = Row(joined_schema, values)
                if node.condition is None or evaluate_predicate(node.condition, candidate):
                    result.rows.append(candidate)
                    matched = True
                    if build_matched is not None:
                        build_matched[index] = True
            if pad_probe and not matched:
                result.rows.append(
                    Row(joined_schema, probe_row.values + build_padding)
                )
        if build_matched is not None:
            probe_padding = tuple([None] * len(probe_rel.schema))
            for index, build_row in enumerate(build_rel.rows):
                if not build_matched[index]:
                    result.rows.append(
                        Row(joined_schema, probe_padding + build_row.values)
                    )
        return result

    @staticmethod
    def _equi_join_keys(
        condition: Expression, left_schema: Schema, right_schema: Schema
    ) -> list[tuple[str, str]]:
        """Extract (left column, right column) pairs from equality conjuncts."""
        keys, _residual = Executor.split_join_condition(condition, left_schema, right_schema)
        return keys

    @staticmethod
    def split_join_condition(
        condition: Expression, left_schema: Schema, right_schema: Schema
    ) -> tuple[list[tuple[str, str]], list[Expression]]:
        """Split a join condition into equi-key pairs and residual conjuncts.

        The key pairs are ``(left column, right column)`` equality conjuncts
        usable for hashing/key-encoding; everything else (non-equi conjuncts,
        same-side equalities) is returned as residual predicates the join
        must still evaluate per candidate.  Shared by both executors so the
        two paths agree on what "the join key" means.
        """
        from repro.common.expressions import BinaryOp, split_conjuncts

        keys: list[tuple[str, str]] = []
        residual: list[Expression] = []
        for conjunct in split_conjuncts(condition):
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op in ("=", "==")
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                a, b = conjunct.left.name, conjunct.right.name
                if left_schema.has_column(a) and right_schema.has_column(b):
                    keys.append((a, b))
                    continue
                if left_schema.has_column(b) and right_schema.has_column(a):
                    keys.append((b, a))
                    continue
            residual.append(conjunct)
        return keys, residual

    def _execute_prune(self, node: PruneNode) -> Relation:
        """Optimizer-inserted narrowing: keep only the named columns."""
        child = self.execute(node.child)
        indices = [child.schema.index_of(name) for name in node.columns]
        schema = child.schema.project(node.columns)
        result = Relation(schema)
        result.rows.extend(
            Row(schema, tuple(row.values[i] for i in indices)) for row in child.rows
        )
        return result

    def _execute_project(self, node: ProjectNode) -> Relation:
        child = self.execute(node.child)
        columns: list[Column] = []
        for item in node.items:
            if item.star:
                columns.extend(child.schema.columns)
            else:
                dtype = self._expression_type(item.expression, child)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(self._dedupe(columns))
        result = Relation(schema)
        seen: set[tuple] = set()
        for row in child:
            values: list[Any] = []
            for item in node.items:
                if item.star:
                    values.extend(row.values)
                else:
                    values.append(item.expression.evaluate(row))
            candidate = tuple(values)
            if node.distinct:
                if candidate in seen:
                    continue
                seen.add(candidate)
            result.rows.append(Row(schema, candidate))
        return result

    def _execute_aggregate(self, node: AggregateNode) -> Relation:
        child = self.execute(node.child)
        group_exprs = node.group_by
        groups: dict[tuple, dict[int, Any]] = {}
        group_rows: dict[tuple, Row] = {}
        having_items = getattr(node, "having_items", [])
        agg_items = [(i, item) for i, item in enumerate(node.items) if item.aggregate]
        agg_items += [
            (len(node.items) + j, item) for j, item in enumerate(having_items)
        ]
        for row in child:
            key = tuple(expr.evaluate(row) for expr in group_exprs)
            if key not in groups:
                groups[key] = {
                    i: make_aggregate(
                        item.aggregate,
                        count_star=(item.expression is None),
                        distinct=item.distinct,
                    )
                    for i, item in agg_items
                }
                group_rows[key] = row
            for i, item in agg_items:
                value = 1 if item.expression is None else item.expression.evaluate(row)
                groups[key][i].add(value)
        # A global aggregate over zero rows still yields one output row.
        if not groups and not group_exprs:
            groups[()] = {
                i: make_aggregate(
                    item.aggregate,
                    count_star=(item.expression is None),
                    distinct=item.distinct,
                )
                for i, item in agg_items
            }
            group_rows[()] = None  # type: ignore[assignment]

        columns = []
        for item in node.items:
            if item.aggregate:
                dtype = DataType.FLOAT if item.aggregate in ("avg", "stddev") else DataType.FLOAT
                if item.aggregate == "count":
                    dtype = DataType.INTEGER
                columns.append(Column(item.output_name, dtype))
            else:
                dtype = self._expression_type(item.expression, child)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(self._dedupe(columns))
        having_schema = self._having_schema(schema, node.items, having_items)
        result = Relation(schema)
        for key, accumulators in groups.items():
            values: list[Any] = []
            representative = group_rows[key]
            for i, item in enumerate(node.items):
                if item.aggregate:
                    values.append(accumulators[i].result())
                else:
                    if representative is None:
                        values.append(None)
                    else:
                        values.append(item.expression.evaluate(representative))
            out_row = Row(schema, tuple(values))
            if node.having is not None:
                # HAVING may reference aggregate outputs either by alias or by
                # their canonical rendering, e.g. "count(*)"; expose both,
                # then append HAVING-only aggregates (computed but not output).
                having_values = tuple(
                    accumulators[len(node.items) + j].result()
                    for j in range(len(having_items))
                )
                having_row = Row(
                    having_schema, tuple(values) + tuple(values) + having_values
                )
                if not evaluate_predicate(node.having, having_row):
                    continue
            result.rows.append(out_row)
        return result

    @staticmethod
    def _having_schema(schema: Schema, items: list, having_items: list = ()) -> Schema:
        """Schema exposing output columns twice (alias and canonical name),
        plus trailing columns for HAVING-only aggregates."""
        canonical = []
        used = {c.name.lower() for c in schema.columns}
        for i, item in enumerate(items):
            if item.aggregate:
                inner = "*" if item.expression is None else item.expression.to_sql()
                name = f"{item.aggregate}({inner})"
            else:
                name = item.output_name
            if name.lower() in used:
                name = f"__having_{i}__"
            used.add(name.lower())
            canonical.append(Column(name, schema.columns[min(i, len(schema.columns) - 1)].dtype))
        for j, item in enumerate(having_items):
            inner = "*" if item.expression is None else item.expression.to_sql()
            name = f"{item.aggregate}({inner})"
            if name.lower() in used:
                name = f"__having_only_{j}__"
            used.add(name.lower())
            dtype = DataType.INTEGER if item.aggregate == "count" else DataType.FLOAT
            canonical.append(Column(name, dtype))
        return Schema(list(schema.columns) + canonical)

    def _execute_sort(self, node: SortNode) -> Relation:
        child = self.execute(node.child)

        def sort_key(row: Row) -> tuple:
            parts = []
            for item in node.order_by:
                value = item.expression.evaluate(row)
                parts.append((value is None, value))
            return tuple(parts)

        # Python's sort is stable, so apply keys right-to-left for mixed directions.
        rows = list(child.rows)
        for item in reversed(node.order_by):
            def key(row: Row, item=item) -> tuple:
                value = item.expression.evaluate(row)
                return (value is None, value)

            rows.sort(key=key, reverse=item.descending)
        result = Relation(child.schema)
        result.rows.extend(rows)
        return result

    def _execute_limit(self, node: LimitNode) -> Relation:
        child = self.execute(node.child)
        start = node.offset or 0
        end = None if node.limit is None else start + node.limit
        result = Relation(child.schema)
        result.rows.extend(child.rows[start:end])
        return result

    # ------------------------------------------------------------------ helpers
    def _expression_type(self, expression: Expression | None, child: Relation) -> DataType:
        if expression is None:
            return DataType.INTEGER
        if isinstance(expression, ColumnRef) and child.schema.has_column(expression.name):
            return child.schema.column(expression.name).dtype
        if child.rows:
            try:
                return infer_type(expression.evaluate(child.rows[0]))
            except Exception:  # noqa: BLE001 - fall back to float
                return DataType.FLOAT
        return DataType.FLOAT

    @staticmethod
    def _dedupe(columns: list[Column]) -> list[Column]:
        seen: dict[str, int] = {}
        out = []
        for col in columns:
            key = col.name.lower()
            if key in seen:
                seen[key] += 1
                out.append(col.with_name(f"{col.name}_{seen[key]}"))
            else:
                seen[key] = 0
                out.append(col)
        return out


def make_select_items(names: list[str]) -> list[SelectItem]:
    """Convenience: build plain column SelectItems from names (used by shims)."""
    return [SelectItem(expression=ColumnRef(name)) for name in names]
