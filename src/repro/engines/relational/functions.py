"""Aggregate function implementations for the relational engine."""

from __future__ import annotations

import math
from typing import Any

from repro.common.errors import ExecutionError


class Aggregate:
    """Incremental aggregate accumulator (one instance per group per aggregate)."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def load(self, *state: Any) -> None:
        """Seed the accumulator with partial state (the vectorized streaming
        group-by hands over mid-stream through this when it degrades to the
        per-row path).  Non-distinct accumulators only."""
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(*) or COUNT(expr); NULLs are skipped when counting an expression."""

    def __init__(self, count_nulls: bool = False, distinct: bool = False) -> None:
        self._count = 0
        self._count_nulls = count_nulls
        self._distinct = distinct
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None and not self._count_nulls:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def result(self) -> int:
        return self._count

    def load(self, count: int) -> None:
        self._count = count


class SumAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total: float | int | None = None
        self._distinct = distinct
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total = value if self._total is None else self._total + value

    def result(self) -> Any:
        return self._total

    def load(self, total: Any) -> None:
        self._total = total


class AvgAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total = 0.0
        self._count = 0
        self._distinct = distinct
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += value
        self._count += 1

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._total / self._count

    def load(self, total: float, count: int) -> None:
        self._total = total
        self._count = count


class MinAggregate(Aggregate):
    def __init__(self, **_kwargs: Any) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def result(self) -> Any:
        return self._value

    def load(self, value: Any) -> None:
        self._value = value


class MaxAggregate(Aggregate):
    def __init__(self, **_kwargs: Any) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def result(self) -> Any:
        return self._value

    def load(self, value: Any) -> None:
        self._value = value


class StddevAggregate(Aggregate):
    """Sample standard deviation via Welford's online algorithm."""

    def __init__(self, **_kwargs: Any) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def result(self) -> float | None:
        if self._count < 2:
            return None
        return math.sqrt(self._m2 / (self._count - 1))


_AGGREGATE_FACTORIES = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "avg": AvgAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "stddev": StddevAggregate,
}


def make_aggregate(name: str, count_star: bool = False, distinct: bool = False) -> Aggregate:
    """Create an accumulator for an aggregate function by name."""
    key = name.lower()
    if key not in _AGGREGATE_FACTORIES:
        raise ExecutionError(f"unknown aggregate function: {name!r}")
    if key == "count":
        return CountAggregate(count_nulls=count_star, distinct=distinct)
    return _AGGREGATE_FACTORIES[key](distinct=distinct)


def aggregate_names() -> set[str]:
    return set(_AGGREGATE_FACTORIES)
