"""Memory-budgeted partitioned (grace/hybrid) hash join with disk spill.

When a join's build side exceeds the engine's ``join_memory_budget``, the
vectorized executor hands both inputs to :func:`partitioned_spill_join`
instead of materializing the build block.  Keys are encoded through an
insertion-ordered dictionary (the row executor's Python ``==``/``hash``
semantics), radix-partitioned with
:func:`~repro.common.keycodes.partition_codes`, and streamed to per-
partition temp files.  Each partition is then joined independently — a
partition whose build run still exceeds the budget re-partitions
recursively, following the hybrid hash join design (arXiv:2112.02480) of
degrading gracefully rather than OOMing.

Output order is the exact in-memory order: every emitted row is tagged with
its global probe row id (matched rows and left/full pads alike live in
exactly one partition run, each run ascending by id), so a K-way merge by id
reproduces the probe-major emission of the in-memory join byte for byte.
Unmatched build rows (right/full) merge the same way by global build row id
into the trailing null-padded batches.
"""

from __future__ import annotations

import heapq
import pickle
import tempfile
from typing import Any, Callable, Iterator

import numpy as np

from repro.common.cancellation import current_token
from repro.common.keycodes import partition_codes
from repro.common.schema import ColumnBatch, Schema
from repro.common.schema import object_view as _object_view
from repro.observability.tracing import get_tracer

#: Recursion floor: partitions smaller than this join in memory even when
#: their estimate still exceeds the budget (they cannot shrink much further).
_MIN_RECURSE_ROWS = 64
_MAX_RECURSE_DEPTH = 3


def approx_batch_bytes(batch: ColumnBatch) -> int:
    """O(1) resident-size estimate for budget checks (per-cell flat cost)."""
    return len(batch) * 16 * max(1, len(batch.columns))


def _approx_run_bytes(rows: int, columns: int) -> int:
    return rows * 16 * max(1, columns)


class IncrementalJoinKeyEncoder:
    """Insertion-ordered dict join-key encoder for the spill path.

    Unlike :class:`~repro.common.keycodes.JoinKeyTable`, which wants the
    whole build side at once, this encoder grows batch by batch, so the
    build stream can be partitioned to disk without being materialized.
    Key equality is Python ``==``/``hash`` (``1 == 1.0 == True``), the row
    executor's semantics; NULL in any key column never matches (code -1).
    """

    def __init__(self) -> None:
        self._map: dict[Any, int] = {}

    def encode(self, key_columns: list, n: int, fit: bool) -> np.ndarray:
        codes = np.empty(n, dtype=np.int64)
        mapping = self._map
        if len(key_columns) == 1:
            column = key_columns[0]
            for idx in range(n):
                value = column[idx]
                if value is None:
                    codes[idx] = -1
                elif fit:
                    codes[idx] = mapping.setdefault(value, len(mapping))
                else:
                    codes[idx] = mapping.get(value, -1)
        else:
            for idx in range(n):
                values = tuple(column[idx] for column in key_columns)
                if any(value is None for value in values):
                    codes[idx] = -1
                elif fit:
                    codes[idx] = mapping.setdefault(values, len(mapping))
                else:
                    codes[idx] = mapping.get(values, -1)
        return codes


class SpillRun:
    """Append-only spill stream of (ids, codes, columns) chunks on temp disk.

    ``ids`` are global row ids, strictly ascending across a run's lifetime
    (chunks are appended in stream order), which is what lets the final
    merge reproduce in-memory output order without a sort.
    """

    def __init__(self) -> None:
        self._file = tempfile.TemporaryFile()
        self.rows = 0
        self.columns = 0

    def append(
        self, ids: list[int], codes: list[int] | None, columns: list[list]
    ) -> None:
        if not ids:
            return
        self.rows += len(ids)
        self.columns = len(columns)
        pickle.dump((ids, codes, columns), self._file, protocol=pickle.HIGHEST_PROTOCOL)

    def __len__(self) -> int:
        return self.rows

    @property
    def bytes_estimate(self) -> int:
        return _approx_run_bytes(self.rows, self.columns)

    def read_chunks(self) -> Iterator[tuple[list[int], list[int] | None, list[list]]]:
        self._file.seek(0)
        while True:
            try:
                yield pickle.load(self._file)
            except EOFError:
                return

    def close(self) -> None:
        self._file.close()


class _RunCursor:
    """Streaming read position over one spill run, ascending by id."""

    def __init__(self, run: SpillRun) -> None:
        self._chunks = run.read_chunks()
        self._ids: np.ndarray = np.zeros(0, dtype=np.int64)
        self._cols: list[list] = []
        self._pos = 0
        self._advance()

    def _advance(self) -> None:
        while self._pos >= len(self._ids):
            try:
                ids, _codes, cols = next(self._chunks)
            except StopIteration:
                self._ids = np.zeros(0, dtype=np.int64)
                self._cols = []
                self._pos = 0
                self.exhausted = True
                return
            self._ids = np.asarray(ids, dtype=np.int64)
            self._cols = cols
            self._pos = 0
        self.exhausted = False

    @property
    def head(self) -> int:
        return int(self._ids[self._pos])

    def take_upto(self, bound: int | None, sink: list[list]) -> int:
        """Move every buffered row with id < bound (all rows if None) into
        ``sink`` (one list per output column); returns rows taken."""
        taken = 0
        while not self.exhausted:
            if bound is None:
                end = len(self._ids)
            else:
                end = int(np.searchsorted(self._ids, bound))
            if end <= self._pos:
                break
            for out, col in zip(sink, self._cols):
                out.extend(col[self._pos : end])
            taken += end - self._pos
            self._pos = end
            self._advance()
        return taken


def _merge_runs(
    runs: list[SpillRun], n_columns: int, batch_rows: int
) -> Iterator[list[list]]:
    """K-way merge of id-disjoint ascending runs; yields column-list chunks
    of at most ``batch_rows`` rows, globally ascending by id."""
    cursors = []
    for run in runs:
        cursor = _RunCursor(run)
        if not cursor.exhausted:
            cursors.append(cursor)
    heap = [(cursor.head, idx) for idx, cursor in enumerate(cursors)]
    heapq.heapify(heap)
    buffer: list[list] = [[] for _ in range(n_columns)]
    buffered = 0
    while heap:
        _, idx = heapq.heappop(heap)
        cursor = cursors[idx]
        bound = heap[0][0] if heap else None
        buffered += cursor.take_upto(bound, buffer)
        if not cursor.exhausted:
            heapq.heappush(heap, (cursor.head, idx))
        while buffered >= batch_rows:
            yield [col[:batch_rows] for col in buffer]
            buffer = [col[batch_rows:] for col in buffer]
            buffered -= batch_rows
    if buffered:
        yield buffer


def partitioned_spill_join(
    *,
    joined_schema: Schema,
    build_schema: Schema,
    probe_schema: Schema,
    build_batches: Iterator[ColumnBatch],
    probe_batches: Iterator[ColumnBatch],
    build_key_idx: list[int],
    probe_key_idx: list[int],
    residual: Callable[[tuple], bool] | None,
    build_on_left: bool,
    pad_probe: bool,
    track_build: bool,
    batch_rows: int,
    budget: int | None,
    partitions: int,
    engine: Any = None,
) -> Iterator[ColumnBatch]:
    """Run a hash join without ever materializing the full build side.

    See the module docstring for the algorithm; this generator owns every
    temp file it creates and closes them as soon as their phase completes.
    """
    record_spill = getattr(engine, "record_spill", None) or (lambda n: None)
    record_build_bytes = getattr(engine, "record_build_bytes", None) or (lambda n: None)
    n_build = len(build_schema.columns)
    n_probe = len(probe_schema.columns)
    n_out = len(joined_schema.columns)
    encoder = IncrementalJoinKeyEncoder()

    token = current_token()

    # Every spill run the join can own is reachable from these bindings, and
    # all of them are closed by the single ``finally`` at the bottom — so a
    # cancellation raised at any batch boundary, even while the inputs are
    # still being partitioned, leaks no temp files.
    build_runs = [SpillRun() for _ in range(partitions)]
    null_build = SpillRun() if track_build else None
    probe_runs = [SpillRun() for _ in range(partitions)]
    pad_run = SpillRun() if pad_probe else None
    out_runs: list[SpillRun] = []
    unmatched_runs: list[SpillRun] = []

    def _partition_inputs() -> None:
        # --------------------------------------------- partition the build side
        build_total = 0
        for batch in build_batches:
            if token is not None:
                token.check()
            n = len(batch)
            if n == 0:
                continue
            codes = encoder.encode(
                [batch.columns[i] for i in build_key_idx], n, fit=True
            )
            for p, rows in enumerate(partition_codes(codes, partitions)):
                if rows.size:
                    gathered = batch.gather(rows)
                    build_runs[p].append(
                        (build_total + rows).tolist(),
                        codes[rows].tolist(),
                        gathered.columns,
                    )
            if null_build is not None:
                null_rows = np.flatnonzero(codes < 0)
                if null_rows.size:
                    gathered = batch.gather(null_rows)
                    null_build.append(
                        (build_total + null_rows).tolist(), None, gathered.columns
                    )
            build_total += n
        record_spill(sum(1 for run in build_runs if len(run)))

        # --------------------------------------------- partition the probe side
        probe_total = 0
        for batch in probe_batches:
            if token is not None:
                token.check()
            n = len(batch)
            if n == 0:
                continue
            codes = encoder.encode(
                [batch.columns[i] for i in probe_key_idx], n, fit=False
            )
            for p, rows in enumerate(partition_codes(codes, partitions)):
                if rows.size:
                    gathered = batch.gather(rows)
                    probe_runs[p].append(
                        (probe_total + rows).tolist(),
                        codes[rows].tolist(),
                        gathered.columns,
                    )
            if pad_run is not None:
                # NULL or never-seen keys cannot match any partition: emit
                # their pads directly, already in final output column order.
                misses = np.flatnonzero(codes < 0)
                if misses.size:
                    gathered = batch.gather(misses)
                    pad_cols = [[None] * int(misses.size) for _ in range(n_build)]
                    ordered = (
                        pad_cols + gathered.columns
                        if build_on_left
                        else gathered.columns + pad_cols
                    )
                    pad_run.append((probe_total + misses).tolist(), None, ordered)
            probe_total += n

    # ---------------------------------------------------- per-partition joining
    def process(build_run: SpillRun, probe_run: SpillRun, depth: int) -> None:
        tracer = get_tracer()
        if token is not None:
            token.check()
        try:
            if (
                budget is not None
                and build_run.bytes_estimate > budget
                and depth < _MAX_RECURSE_DEPTH
                and len(build_run) > _MIN_RECURSE_ROWS
            ):
                with tracer.span(
                    "join.spill_repartition", kind="operator",
                    depth=depth, build_rows=len(build_run),
                ):
                    _recurse(build_run, probe_run, depth)
                return
            with tracer.span(
                "join.spill_leaf", kind="operator", depth=depth,
                build_rows=len(build_run), probe_rows=len(probe_run),
            ):
                _process_leaf(build_run, probe_run)
        finally:
            build_run.close()
            probe_run.close()

    def _recurse(build_run: SpillRun, probe_run: SpillRun, depth: int) -> None:
        # Codes congruent mod ``partitions**(depth+1)`` landed together; the
        # next digit of the radix splits them further without reloading more
        # than one chunk at a time.
        divisor = partitions ** (depth + 1)
        sub_build = [SpillRun() for _ in range(partitions)]
        sub_probe = [SpillRun() for _ in range(partitions)]
        try:
            for run, subs in ((build_run, sub_build), (probe_run, sub_probe)):
                for ids, codes, cols in run.read_chunks():
                    arr = np.asarray(codes, dtype=np.int64)
                    ids_arr = np.asarray(ids, dtype=np.int64)
                    sub_pid = (arr // divisor) % partitions
                    for p in range(partitions):
                        rows = np.flatnonzero(sub_pid == p)
                        if rows.size:
                            views = [_object_view(col) for col in cols]
                            subs[p].append(
                                ids_arr[rows].tolist(),
                                arr[rows].tolist(),
                                [np.take(view, rows).tolist() for view in views],
                            )
            record_spill(sum(1 for run in sub_build if len(run)))
            for p in range(partitions):
                process(sub_build[p], sub_probe[p], depth + 1)
        finally:
            for run in sub_build + sub_probe:
                run.close()

    def _process_leaf(build_run: SpillRun, probe_run: SpillRun) -> None:
        build_ids: list[int] = []
        build_codes: list[int] = []
        build_cols: list[list] = [[] for _ in range(n_build)]
        for ids, codes, cols in build_run.read_chunks():
            build_ids.extend(ids)
            build_codes.extend(codes)
            for acc, col in zip(build_cols, cols):
                acc.extend(col)
        record_build_bytes(_approx_run_bytes(len(build_ids), n_build))
        codes_arr = np.asarray(build_codes, dtype=np.int64)
        uniq = np.unique(codes_arr)
        local = np.searchsorted(uniq, codes_arr)
        # CSR in (code, build id) order: chunks arrive in build-stream order,
        # so a stable sort by local code keeps global build order per code.
        order = np.argsort(local, kind="stable")
        sorted_rows = order.astype(np.int64, copy=False)
        counts = np.bincount(local, minlength=len(uniq)).astype(np.int64)
        starts = np.zeros(len(uniq), dtype=np.int64)
        if len(uniq) > 1:
            np.cumsum(counts[:-1], out=starts[1:])
        build_views = [_object_view(col) for col in build_cols]
        matched = (
            np.zeros(len(build_ids), dtype=np.bool_) if track_build else None
        )
        out_run = SpillRun()
        # Registered before the probe loop so the outer ``finally`` closes it
        # even when a cancellation interrupts the leaf mid-probe.
        out_runs.append(out_run)
        for ids, codes, cols in probe_run.read_chunks():
            length = len(ids)
            arr = np.asarray(codes, dtype=np.int64)
            ids_arr = np.asarray(ids, dtype=np.int64)
            if len(uniq):
                pos = np.searchsorted(uniq, arr)
                pos_clip = np.minimum(pos, len(uniq) - 1)
                found = uniq[pos_clip] == arr
            else:
                pos_clip = np.zeros(length, dtype=np.int64)
                found = np.zeros(length, dtype=np.bool_)
            hits = np.flatnonzero(found)
            if hits.size:
                codes_h = pos_clip[hits]
                cnts = counts[codes_h]
                total = int(cnts.sum())
            else:
                codes_h = np.zeros(0, dtype=np.int64)
                cnts = np.zeros(0, dtype=np.int64)
                total = 0
            if total:
                probe_rep = np.repeat(hits, cnts)
                seg_start = np.repeat(starts[codes_h], cnts)
                cum = np.cumsum(cnts)
                offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - cnts, cnts)
                rows = sorted_rows[seg_start + offsets]
            else:
                probe_rep = np.zeros(0, dtype=np.int64)
                rows = np.zeros(0, dtype=np.int64)
            probe_views = [_object_view(col) for col in cols]
            cand_build = [np.take(view, rows) for view in build_views]
            cand_probe = [np.take(view, probe_rep) for view in probe_views]
            if residual is not None and total:
                ordered = (
                    cand_build + cand_probe if build_on_left else cand_probe + cand_build
                )
                keep = np.fromiter(
                    (residual(values) for values in zip(*(c.tolist() for c in ordered))),
                    np.bool_,
                    count=total,
                )
                probe_rep = probe_rep[keep]
                rows = rows[keep]
                cand_build = [col[keep] for col in cand_build]
                cand_probe = [col[keep] for col in cand_probe]
            if matched is not None and rows.size:
                matched[rows] = True
            pads = (
                np.flatnonzero(np.bincount(probe_rep, minlength=length) == 0)
                if pad_probe
                else np.zeros(0, dtype=np.int64)
            )
            out_len = int(probe_rep.size + pads.size)
            if not out_len:
                continue
            if pads.size:
                merge_order = np.argsort(
                    np.concatenate([probe_rep, pads]), kind="stable"
                )
                pad_fill = np.full(pads.size, None, dtype=object)
                out_probe = [
                    np.concatenate([kept, np.take(view, pads)])[merge_order]
                    for kept, view in zip(cand_probe, probe_views)
                ]
                out_build = [
                    np.concatenate([kept, pad_fill])[merge_order]
                    for kept in cand_build
                ]
                out_ids = np.concatenate(
                    [ids_arr[probe_rep], ids_arr[pads]]
                )[merge_order]
            else:
                out_probe, out_build = cand_probe, cand_build
                out_ids = ids_arr[probe_rep]
            ordered_cols = (
                out_build + out_probe if build_on_left else out_probe + out_build
            )
            out_run.append(
                out_ids.tolist(), None, [col.tolist() for col in ordered_cols]
            )
        if matched is not None:
            unmatched = np.flatnonzero(~matched)
            if unmatched.size:
                run = SpillRun()
                unmatched_runs.append(run)
                ids_arr = np.asarray(build_ids, dtype=np.int64)
                for start in range(0, int(unmatched.size), batch_rows):
                    chunk = unmatched[start : start + batch_rows]
                    run.append(
                        ids_arr[chunk].tolist(),
                        None,
                        [np.take(view, chunk).tolist() for view in build_views],
                    )

    try:
        _partition_inputs()
        for p in range(partitions):
            process(build_runs[p], probe_runs[p], 0)

        # ------------------------------------------ probe-ordered output merge
        merge_inputs = list(out_runs)
        if pad_run is not None:
            merge_inputs.append(pad_run)
        for cols in _merge_runs(merge_inputs, n_out, batch_rows):
            yield ColumnBatch(joined_schema, cols, len(cols[0]))

        # -------------------------------------- trailing unmatched build rows
        if track_build:
            trailing = list(unmatched_runs)
            if null_build is not None and len(null_build):
                trailing.append(null_build)
            for cols in _merge_runs(trailing, n_build, batch_rows):
                size = len(cols[0])
                probe_pad = ColumnBatch.nulls(probe_schema, size).columns
                ordered = cols + probe_pad if build_on_left else probe_pad + cols
                yield ColumnBatch(joined_schema, ordered, size)
    finally:
        # ``SpillRun.close`` is idempotent, so runs already closed by their
        # per-partition ``process`` call are safely re-closed here.
        for run in build_runs + probe_runs + out_runs + unmatched_runs:
            run.close()
        if pad_run is not None:
            pad_run.close()
        if null_build is not None:
            null_build.close()
