"""Statistics-driven plan optimization: projection pushdown and cost choices.

This pass runs over the logical plan the :class:`~repro.engines.relational.
planner.Planner` produced, reading the statistics layer
(:mod:`repro.engines.relational.statistics`) to make three decisions the
rule-based planner cannot:

* **Projection pushdown.**  The referenced-column set is computed top-down
  and :class:`~repro.engines.relational.planner.PruneNode` operators are
  inserted below joins and aggregates, so the batched hash join gathers
  (and the group-by carries) only the columns the query actually reads.
  Pushdown stops at the same outer-join boundaries as WHERE pushdown: only
  the side a WHERE conjunct may move below (the preserved side) may be
  narrowed, so null-padded semantics are never disturbed.
* **Build-side selection by bytes.**  An inner hash join builds on the side
  with the smaller *estimated byte volume* (rows x average row width after
  pruning), not the smaller row count — a 400-row table of wide TEXT
  columns loses to a 5000-row table of two ints.
* **Selectivity-ordered conjuncts.**  Multi-conjunct scan filters are
  reordered most-selective-first using NDV/min-max estimates, but only
  when every conjunct is side-effect-free (no division, no scalar
  functions), so error and short-circuit semantics are untouched.

The pass never changes results — only shapes and costs — which the
mode-parity grid in ``tests/test_statistics_optimizer.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    conjunction,
    split_conjuncts,
)
from repro.common.types import DataType
from repro.engines.relational.planner import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    Planner,
    ProjectNode,
    PruneNode,
    ScanNode,
    SortNode,
    SubqueryNode,
    TableStatisticsProvider,
)

#: Binary operators that can never raise regardless of operand types
#: (``==``/``!=`` return False on mismatches, LIKE str-coerces, AND/OR
#: work on truthiness).  Order comparisons (``<`` etc.) and unary minus
#: CAN raise ``TypeError`` across type families, so they are only safe
#: when every operand is provably in one comparable family.
_ALWAYS_SAFE_BINARY_OPS = {"=", "==", "!=", "<>", "like", "and", "or"}
_ORDERED_BINARY_OPS = {"<", "<=", ">", ">="}

#: Type families whose members are mutually comparable without raising.
_NUMERIC_FAMILY = "numeric"
_TEXT_FAMILY = "text"
_TIMESTAMP_FAMILY = "timestamp"
_DTYPE_FAMILIES = {
    DataType.INTEGER: _NUMERIC_FAMILY,
    DataType.FLOAT: _NUMERIC_FAMILY,
    DataType.BOOLEAN: _NUMERIC_FAMILY,
    DataType.TEXT: _TEXT_FAMILY,
    DataType.TIMESTAMP: _TIMESTAMP_FAMILY,
}

_DEFAULT_SELECTIVITY = 0.5
_RANGE_SELECTIVITY = 1 / 3
_LIKE_SELECTIVITY = 0.25


@dataclass
class OptimizationResult:
    """The optimized plan plus what the pass did (for metrics and EXPLAIN)."""

    plan: LogicalPlan
    columns_pruned: int = 0
    tables: list[str] = field(default_factory=list)


def referenced_refs(expr: Expression | None) -> set[str]:
    return set() if expr is None else expr.referenced_columns()


def select_referenced(columns: list[str], refs: set[str]) -> list[str]:
    """The subset of ``columns`` any reference in ``refs`` resolves to.

    Mirrors :meth:`repro.common.schema.Schema.index_of`: an exact
    (case-insensitive) name match wins; otherwise a bare/qualified suffix
    match applies — and when a bare reference is ambiguous, every match is
    kept so the runtime's ambiguity error still fires.
    """
    lowered = [c.lower() for c in columns]
    exact = set(lowered)
    keep: set[str] = set()
    for ref in refs:
        r = ref.lower()
        if r in exact:
            keep.add(r)
            continue
        suffix = r.split(".")[-1]
        keep.update(c for c in lowered if c.split(".")[-1] == suffix)
    return [c for c, lc in zip(columns, lowered) if lc in keep]


def plan_column_names(
    node: LogicalPlan, statistics: TableStatisticsProvider
) -> list[str] | None:
    """Plan-time output column names of a node (None when unknowable).

    Benchmarks and tests use this to report how many columns a join
    actually gathers with and without projection pushdown.
    """
    return Optimizer(statistics)._node_columns(node)


class Optimizer:
    """One-shot optimization pass over a logical plan (not thread-shared)."""

    def __init__(self, statistics: TableStatisticsProvider) -> None:
        self._stats = statistics
        self._pruned = 0
        self._tables: list[str] = []

    # ------------------------------------------------------------------ public
    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        self._pruned = 0
        self._tables = []
        plan = self._optimize(plan, None)
        return OptimizationResult(plan, self._pruned, list(self._tables))

    # -------------------------------------------------------------- recursion
    def _optimize(self, node: LogicalPlan, required: set[str] | None) -> LogicalPlan:
        """Rewrite ``node``; ``required`` is the set of column references the
        operators above it read (``None`` means all columns, e.g. ``*``)."""
        if isinstance(node, ProjectNode):
            child_required: set[str] | None = None
            if not any(item.star for item in node.items):
                child_required = set()
                for item in node.items:
                    child_required |= referenced_refs(item.expression)
            node.child = self._optimize(node.child, child_required)
            return node
        if isinstance(node, AggregateNode):
            if any(item.star for item in node.items):
                child_required = None
            else:
                child_required = set()
                for expr in node.group_by:
                    child_required |= referenced_refs(expr)
                for item in node.items:
                    child_required |= referenced_refs(item.expression)
                # HAVING-only aggregates are computed from synthesized items;
                # their inputs must survive pruning like any SELECT aggregate.
                for item in getattr(node, "having_items", []):
                    child_required |= referenced_refs(item.expression)
                # HAVING references aggregate outputs by canonical name
                # ("count(*)"); those match no child column and fall away,
                # while plain grouped-column references are kept.
                child_required |= referenced_refs(node.having)
            node.child = self._narrow(node.child, child_required)
            return node
        if isinstance(node, SortNode):
            refs = None if required is None else set(required)
            if refs is not None:
                for item in node.order_by:
                    refs |= referenced_refs(item.expression)
            node.child = self._optimize(node.child, refs)
            return node
        if isinstance(node, FilterNode):
            refs = (
                None
                if required is None
                else set(required) | referenced_refs(node.predicate)
            )
            node.child = self._optimize(node.child, refs)
            return node
        if isinstance(node, LimitNode):
            node.child = self._optimize(node.child, required)
            return node
        if isinstance(node, JoinNode):
            return self._optimize_join(node, required)
        if isinstance(node, SubqueryNode):
            self._narrow_subquery(node, required)
            # After (possibly) shrinking the derived table's SELECT list its
            # interior optimizes as an independent root, so the narrowed
            # projection propagates pushdown below it.
            node.plan = self._optimize(node.plan, None)
            return node
        if isinstance(node, PruneNode):  # pragma: no cover - defensive
            node.child = self._optimize(node.child, set(node.columns))
            return node
        if isinstance(node, ScanNode):
            self._note_table(node.table)
            if node.predicate is not None:
                node.predicate = self._order_conjuncts(node.table, node.predicate)
            return node
        if isinstance(node, IndexScanNode):
            self._note_table(node.table)
            return node
        return node

    def _optimize_join(self, node: JoinNode, required: set[str] | None) -> JoinNode:
        refs = None
        if required is not None:
            refs = set(required) | referenced_refs(node.condition)
        # Projection pushdown stops at the same outer-join boundary as WHERE
        # pushdown: only the preserved side(s) may be narrowed.
        if node.join_type in ("inner", "cross", "left"):
            node.left = self._narrow(node.left, refs)
        else:
            node.left = self._optimize(node.left, None)
        if node.join_type in ("inner", "cross", "right"):
            node.right = self._narrow(node.right, refs)
        else:
            node.right = self._optimize(node.right, None)
        self._choose_build_side(node)
        return node

    def _narrow(self, child: LogicalPlan, refs: set[str] | None) -> LogicalPlan:
        """Optimize ``child`` and, when ``refs`` shows unused columns, cap it
        with a :class:`PruneNode` keeping only the referenced ones."""
        child = self._optimize(child, refs)
        if refs is None:
            return child
        columns = self._node_columns(child)
        if columns is None:
            return child
        keep = select_referenced(columns, refs)
        if not keep:
            # A join or COUNT(*) input must still carry at least one column
            # (batches infer their length from the first column).
            keep = columns[:1]
        if len(keep) >= len(columns):
            return child
        kept = set(keep)
        dropped = [c for c in columns if c not in kept]
        self._pruned += len(dropped)
        return PruneNode(columns=keep, pruned=dropped, child=child)

    def _narrow_subquery(self, node: SubqueryNode, required: set[str] | None) -> None:
        """Drop unreferenced items from a derived table's terminal SELECT list.

        Safe only for a plain projection: DISTINCT compares whole output
        rows, ``*`` output is unknowable at plan time, and duplicate output
        names would renumber dedup suffixes — all three disable the rewrite.
        ORDER BY wrappers above the projection may reference items the outer
        query never reads, so their references are kept as well.
        """
        if required is None:
            return
        inner = node.plan
        sort_refs: set[str] = set()
        while isinstance(inner, (LimitNode, SortNode)):
            if isinstance(inner, SortNode):
                for order in inner.order_by:
                    sort_refs |= referenced_refs(order.expression)
            inner = inner.child
        if not isinstance(inner, ProjectNode) or inner.distinct:
            return
        if any(item.star for item in inner.items):
            return
        names = [item.output_name for item in inner.items]
        if len({n.lower() for n in names}) != len(names):
            return
        qualified = [f"{node.alias}.{n}" for n in names]
        keep = {c.lower() for c in select_referenced(qualified, required)}
        keep |= {
            f"{node.alias}.{c}".lower()
            for c in select_referenced(names, sort_refs)
        }
        kept_items = [
            item for item, q in zip(inner.items, qualified) if q.lower() in keep
        ]
        if not kept_items:
            kept_items = inner.items[:1]
        if len(kept_items) >= len(inner.items):
            return
        self._pruned += len(inner.items) - len(kept_items)
        inner.items = kept_items

    # ------------------------------------------------------- plan-side schemas
    def _node_columns(self, node: LogicalPlan) -> list[str] | None:
        """Output column names of a plan node, or None when unknowable at
        plan time (which disables pruning around that node)."""
        if isinstance(node, (ScanNode, IndexScanNode)):
            if getattr(node, "table", None) == "__dual__":
                return None
            try:
                columns = self._stats.table_columns(node.table)
            except Exception:  # noqa: BLE001 - missing table errors at run time
                return None
            if any("." in c for c in columns):
                return list(columns)
            alias = node.alias or node.table
            return [f"{alias}.{c}" for c in columns]
        if isinstance(node, PruneNode):
            return list(node.columns)
        if isinstance(node, JoinNode):
            left = self._node_columns(node.left)
            right = self._node_columns(node.right)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(node, (FilterNode, SortNode, LimitNode)):
            return self._node_columns(node.child)
        if isinstance(node, SubqueryNode):
            inner = self._node_columns(node.plan)
            if inner is None:
                return None
            if any("." in c for c in inner):
                return inner
            return [f"{node.alias}.{c}" for c in inner]
        if isinstance(node, ProjectNode):
            out: list[str] = []
            for item in node.items:
                if item.star:
                    child = self._node_columns(node.child)
                    if child is None:
                        return None
                    out.extend(child)
                else:
                    out.append(item.output_name)
            return out
        if isinstance(node, AggregateNode):
            return [item.output_name for item in node.items]
        return None

    def _note_table(self, table: str) -> None:
        if table != "__dual__" and table.lower() not in {t.lower() for t in self._tables}:
            self._tables.append(table)

    # ------------------------------------------------------------- build side
    def _choose_build_side(self, node: JoinNode) -> None:
        """Re-pick an inner hash join's build side from estimated bytes.

        Outer joins keep the planner's pinned ``build_side="right"`` (the
        probe must stay left-major); when either side has no statistics the
        planner's row-count hint stands.
        """
        if node.strategy != "hash" or node.join_type != "inner":
            return
        left_bytes = self._estimate_bytes(node.left)
        right_bytes = self._estimate_bytes(node.right)
        if left_bytes is None or right_bytes is None:
            return
        node.build_side = "right" if right_bytes < left_bytes else "left"

    def _estimate_rows(self, node: LogicalPlan) -> int:
        if isinstance(node, ScanNode):
            stats = self._stats.table_stats(node.table)
            if stats is None:
                try:
                    count = self._stats.table_row_count(node.table)
                except Exception:  # noqa: BLE001
                    return 1000
            else:
                count = stats.row_count
            return max(1, count // 3) if node.predicate is not None else count
        if isinstance(node, IndexScanNode):
            return 10
        if isinstance(node, JoinNode):
            return self._estimate_rows(node.left) * max(
                1, self._estimate_rows(node.right) // 10
            )
        children = node.children()
        if children:
            return self._estimate_rows(children[0])
        return 1000

    def _estimate_bytes(self, node: LogicalPlan) -> int | None:
        widths = self._column_widths(node)
        if widths is None:
            return None
        return int(self._estimate_rows(node) * sum(widths.values()))

    def _column_widths(self, node: LogicalPlan) -> dict[str, float] | None:
        """Per-output-column average byte widths, or None without statistics."""
        if isinstance(node, (ScanNode, IndexScanNode)):
            stats = self._stats.table_stats(node.table)
            if stats is None:
                return None
            alias = (node.alias or node.table).lower()
            return {
                f"{alias}.{name}": column.avg_width
                for name, column in stats.columns.items()
            }
        if isinstance(node, PruneNode):
            child = self._column_widths(node.child)
            if child is None:
                return None
            out: dict[str, float] = {}
            for name in node.columns:
                key = name.lower()
                out[key] = child.get(key, 8.0)
            return out
        if isinstance(node, JoinNode):
            left = self._column_widths(node.left)
            right = self._column_widths(node.right)
            if left is None or right is None:
                return None
            return {**left, **right}
        if isinstance(node, (FilterNode, SortNode, LimitNode)):
            return self._column_widths(node.child)
        return None

    # ---------------------------------------------------- conjunct reordering
    def _order_conjuncts(self, table: str, predicate: Expression) -> Expression:
        conjuncts = split_conjuncts(predicate)
        if len(conjuncts) < 2:
            return predicate
        stats = self._stats.table_stats(table)
        if stats is None:
            return predicate
        if not all(self._reorder_safe(c, stats) for c in conjuncts):
            return predicate
        ranked = sorted(
            enumerate(conjuncts),
            key=lambda pair: (self._selectivity(pair[1], stats), pair[0]),
        )
        reordered = [conjunct for _i, conjunct in ranked]
        if reordered == conjuncts:
            return predicate
        result = conjunction(reordered)
        assert result is not None
        return result

    @staticmethod
    def _reorder_safe(expr: Expression, stats) -> bool:
        """Whether evaluating ``expr`` can never raise (so conjuncts around
        it may be reordered without changing error semantics).

        Equality/LIKE/NOT/IS NULL/IN never raise.  Order comparisons and
        unary minus raise ``TypeError`` across type families (``'a' < 5``),
        so they are only safe when every operand provably belongs to one
        comparable family (column dtypes from statistics, literal Python
        types); division and scalar functions are never safe.
        """
        if isinstance(expr, (Literal, ColumnRef)):
            return True
        if isinstance(expr, BinaryOp):
            op = expr.op.lower()
            if op in _ORDERED_BINARY_OPS:
                return Optimizer._one_comparable_family(
                    (expr.left, expr.right), stats
                )
            return (
                op in _ALWAYS_SAFE_BINARY_OPS
                and Optimizer._reorder_safe(expr.left, stats)
                and Optimizer._reorder_safe(expr.right, stats)
            )
        if isinstance(expr, UnaryOp):
            op = expr.op.lower()
            if op == "not":
                return Optimizer._reorder_safe(expr.operand, stats)
            if op == "-":
                return (
                    Optimizer._operand_family(expr.operand, stats)
                    == _NUMERIC_FAMILY
                )
            return False
        if isinstance(expr, (IsNull, InList)):
            return Optimizer._reorder_safe(expr.operand, stats)
        return False

    @staticmethod
    def _operand_family(expr: Expression, stats) -> str | None:
        """The comparable type family of a literal or column, else None."""
        if isinstance(expr, Literal):
            if isinstance(expr.value, (bool, int, float)):
                return _NUMERIC_FAMILY
            if isinstance(expr.value, str):
                return _TEXT_FAMILY
            return None  # NULL and exotic literals: assume nothing
        if isinstance(expr, ColumnRef):
            cs = stats.column(expr.name)
            if cs is None:
                return None
            return _DTYPE_FAMILIES.get(cs.dtype)
        return None

    @staticmethod
    def _one_comparable_family(operands, stats) -> bool:
        families = {Optimizer._operand_family(o, stats) for o in operands}
        return None not in families and len(families) == 1

    def _selectivity(self, conjunct: Expression, stats) -> float:
        """Estimated fraction of rows the conjunct keeps (lower = run first)."""
        simple = Planner._simple_comparison(conjunct)
        if simple is not None:
            column, op, value = simple
            cs = stats.column(column)
            if cs is None:
                return _DEFAULT_SELECTIVITY
            if op in ("=", "=="):
                return min(1.0, 1.0 / max(cs.ndv, 1))
            if op in ("!=", "<>"):
                return 1.0 - min(1.0, 1.0 / max(cs.ndv, 1))
            fraction = self._range_fraction(cs, value)
            if fraction is None:
                return _RANGE_SELECTIVITY
            if op in ("<", "<="):
                return fraction
            return 1.0 - fraction
        if isinstance(conjunct, IsNull) and isinstance(conjunct.operand, ColumnRef):
            cs = stats.column(conjunct.operand.name)
            if cs is None:
                return _DEFAULT_SELECTIVITY
            return (1.0 - cs.null_fraction) if conjunct.negated else cs.null_fraction
        if isinstance(conjunct, InList) and isinstance(conjunct.operand, ColumnRef):
            cs = stats.column(conjunct.operand.name)
            if cs is None:
                return _DEFAULT_SELECTIVITY
            fraction = min(1.0, len(conjunct.values) / max(cs.ndv, 1))
            return (1.0 - fraction) if conjunct.negated else fraction
        if isinstance(conjunct, BinaryOp) and conjunct.op.lower() == "like":
            return _LIKE_SELECTIVITY
        return _DEFAULT_SELECTIVITY

    @staticmethod
    def _range_fraction(cs, value) -> float | None:
        """Position of ``value`` inside the column's [min, max], or None."""
        low, high = cs.minimum, cs.maximum
        if low is None or high is None:
            return None
        try:
            span = high - low
            if span <= 0:
                return None
            fraction = (value - low) / span
        except TypeError:
            return None
        return min(1.0, max(0.0, float(fraction)))
