"""Logical planning and a small rule/cost-based optimizer for SELECT queries.

The planner turns a parsed :class:`SelectStatement` into a tree of
:class:`LogicalPlan` nodes.  The optimizer then applies classical rewrites:

* predicate pushdown — WHERE conjuncts that mention only one table's columns
  move below the join into that table's scan;
* index selection — an equality or range conjunct on a leading index column
  turns a sequential scan into an index scan;
* join ordering — the smaller input (by row-count statistic) becomes the hash
  join's build side.

The resulting physical plan is executed by
:mod:`repro.engines.relational.executor`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import PlanningError
from repro.common.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    conjunction,
    split_conjuncts,
)
from repro.engines.relational.sql.ast import SelectStatement, TableRef

#: Canonical rendering of a HAVING-context aggregate reference, e.g.
#: ``count(*)`` or ``sum(v + 1)`` (see the parser's aggregate-in-expression
#: branch, which emits ``ColumnRef(f"{aggregate}({inner_sql})")``).
_HAVING_AGGREGATE_RE = re.compile(r"^(count|sum|avg|min|max|stddev)\((.*)\)$", re.IGNORECASE)


@dataclass
class LogicalPlan:
    """Base class of logical plan nodes. Children are plan-specific."""

    def children(self) -> list["LogicalPlan"]:
        return []

    def explain(
        self, depth: int = 0, annotate: "Callable[[LogicalPlan], str] | None" = None
    ) -> str:
        """Return an indented text rendering of the plan (EXPLAIN).

        ``annotate`` optionally maps each node to a trailing marker — the
        engine uses it to tag operators with their execution path
        (``[vectorized]`` vs ``[row]``).
        """
        line = "  " * depth + self.describe()
        if annotate is not None:
            suffix = annotate(self)
            if suffix:
                line = f"{line} {suffix}"
        parts = [line]
        for child in self.children():
            parts.append(child.explain(depth + 1, annotate))
        return "\n".join(parts)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(LogicalPlan):
    """Sequential scan of a base table (optionally with a residual filter)."""

    table: str
    alias: str | None = None
    predicate: Expression | None = None

    def describe(self) -> str:
        suffix = f" filter={self.predicate.to_sql()}" if self.predicate else ""
        alias = f" as {self.alias}" if self.alias and self.alias != self.table else ""
        return f"SeqScan({self.table}{alias}){suffix}"


@dataclass
class IndexScanNode(LogicalPlan):
    """Index lookup or range scan over a single table."""

    table: str
    index_name: str
    column: str
    alias: str | None = None
    equals: Any = None
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    residual: Expression | None = None

    def describe(self) -> str:
        if self.equals is not None:
            detail = f"{self.column} = {self.equals!r}"
        else:
            detail = f"{self.column} in [{self.low!r}, {self.high!r}]"
        suffix = f" residual={self.residual.to_sql()}" if self.residual else ""
        return f"IndexScan({self.table} via {self.index_name}: {detail}){suffix}"


@dataclass
class SubqueryNode(LogicalPlan):
    """A derived table: a nested SELECT planned independently."""

    plan: LogicalPlan
    alias: str

    def children(self) -> list[LogicalPlan]:
        return [self.plan]

    def describe(self) -> str:
        return f"Subquery(as {self.alias})"


@dataclass
class FilterNode(LogicalPlan):
    predicate: Expression
    child: LogicalPlan = None  # type: ignore[assignment]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass
class JoinNode(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    condition: Expression | None
    join_type: str = "inner"  # inner | left | right | full | cross
    strategy: str = "hash"  # hash | nested_loop
    #: Which input the hash join builds its table from.  The planner sets
    #: this from row-count estimates (smaller side builds); executors honor
    #: it instead of re-guessing, and outer joins pin it to "right" so the
    #: probe side stays the left (order-preserved) input.
    build_side: str = "left"  # left | right

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def describe(self) -> str:
        cond = self.condition.to_sql() if self.condition else "TRUE"
        detail = f"{self.join_type},build={self.build_side}" if self.strategy == "hash" else self.join_type
        return f"{self.strategy.title()}Join[{detail}]({cond})"


@dataclass
class PruneNode(LogicalPlan):
    """A narrowing projection inserted by the optimizer, not by the query.

    Keeps only ``columns`` (a subset of the child's output, in child
    order) so operators above it — most importantly the batched hash
    join's gathers — touch fewer columns.  ``pruned`` lists the columns
    dropped, which EXPLAIN renders as ``[pruned: a,b,c]`` so the effect
    of projection pushdown is observable per plan.
    """

    columns: list[str] = field(default_factory=list)
    pruned: list[str] = field(default_factory=list)
    child: LogicalPlan = None  # type: ignore[assignment]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        kept = ", ".join(self.columns)
        dropped = ",".join(name.split(".")[-1] for name in self.pruned)
        return f"Project({kept}) [pruned: {dropped}]"


@dataclass
class ProjectNode(LogicalPlan):
    items: list = field(default_factory=list)  # list[SelectItem]
    child: LogicalPlan = None  # type: ignore[assignment]
    distinct: bool = False

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        names = ", ".join(i.output_name for i in self.items)
        prefix = "Distinct " if self.distinct else ""
        return f"{prefix}Project({names})"


@dataclass
class AggregateNode(LogicalPlan):
    group_by: list[Expression] = field(default_factory=list)
    items: list = field(default_factory=list)  # list[SelectItem]
    having: Expression | None = None
    child: LogicalPlan = None  # type: ignore[assignment]
    #: Aggregates that appear only in HAVING (e.g. ``HAVING count(*) > 2``
    #: with no ``count(*)`` in the SELECT list).  The planner synthesizes
    #: these so executors compute their accumulators alongside ``items``;
    #: their values feed the HAVING predicate but never the output rows.
    having_items: list = field(default_factory=list)  # list[SelectItem]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(e.to_sql() for e in self.group_by) or "<global>"
        return f"Aggregate(group by {keys})"


@dataclass
class SortNode(LogicalPlan):
    order_by: list = field(default_factory=list)  # list[OrderItem]
    child: LogicalPlan = None  # type: ignore[assignment]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            f"{o.expression.to_sql()} {'DESC' if o.descending else 'ASC'}" for o in self.order_by
        )
        return f"Sort({keys})"


@dataclass
class LimitNode(LogicalPlan):
    limit: int | None
    offset: int | None
    child: LogicalPlan = None  # type: ignore[assignment]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset or 0})"


class TableStatisticsProvider:
    """Minimal statistics interface the planner needs (row counts and indexes)."""

    def table_row_count(self, table: str) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def table_indexes(self, table: str) -> dict[str, tuple[str, ...]]:  # pragma: no cover
        raise NotImplementedError

    def table_columns(self, table: str) -> list[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def table_stats(self, table: str):
        """Full :class:`~repro.engines.relational.statistics.TableStats` for a
        table, or ``None`` when the provider keeps none (the optimizer then
        falls back to row-count heuristics)."""
        return None


class Planner:
    """Builds and optimizes logical plans for SELECT statements."""

    def __init__(self, statistics: TableStatisticsProvider) -> None:
        self._stats = statistics

    # ------------------------------------------------------------------ public
    def plan_select(self, statement: SelectStatement) -> LogicalPlan:
        if statement.from_table is None:
            # SELECT without FROM: evaluate expressions over a single empty row.
            return ProjectNode(items=statement.items, child=ScanNode(table="__dual__"),
                               distinct=statement.distinct)
        plan = self._plan_from_clause(statement)
        plan = self._apply_where(plan, statement)
        sort_below_project = (
            bool(statement.order_by)
            and not statement.has_aggregates
            and self._order_by_needs_source_columns(statement)
        )
        if sort_below_project:
            plan = SortNode(order_by=statement.order_by, child=plan)
        if statement.has_aggregates:
            plan = AggregateNode(
                group_by=statement.group_by,
                items=statement.items,
                having=statement.having,
                child=plan,
                having_items=self._having_only_items(statement),
            )
        else:
            plan = ProjectNode(items=statement.items, child=plan, distinct=statement.distinct)
        if statement.order_by and not sort_below_project:
            plan = SortNode(order_by=statement.order_by, child=plan)
        if statement.limit is not None or statement.offset is not None:
            plan = LimitNode(limit=statement.limit, offset=statement.offset, child=plan)
        return plan

    @staticmethod
    def _having_only_items(statement: SelectStatement) -> list:
        """Synthesize SelectItems for aggregates referenced only in HAVING.

        HAVING-context aggregates parse to ``ColumnRef("count(*)")``-style
        references; when no SELECT item exposes that canonical name the
        executors would have nothing to evaluate it against.  Reconstruct
        each uncovered aggregate as a SelectItem so accumulators get
        computed for it too.
        """
        if statement.having is None:
            return []
        from repro.engines.relational.sql.ast import SelectItem
        from repro.engines.relational.sql.parser import ParseError, parse_expression

        covered: set[str] = set()
        for item in statement.items:
            if item.alias:
                covered.add(item.alias.lower())
            if item.aggregate:
                covered.add(item.output_name.lower())
                inner = "*" if item.expression is None else item.expression.to_sql()
                covered.add(f"{item.aggregate}({inner})".lower())
        extra: list = []
        # referenced_columns() is a set; sort for a deterministic item order.
        for ref in sorted(statement.having.referenced_columns()):
            match = _HAVING_AGGREGATE_RE.match(ref)
            if match is None or ref.lower() in covered:
                continue
            covered.add(ref.lower())
            aggregate = match.group(1).lower()
            inner_sql = match.group(2).strip()
            if inner_sql == "*":
                expression = None
            else:
                try:
                    expression = parse_expression(inner_sql)
                except ParseError:
                    continue  # leave unparseable refs to error as before
            extra.append(SelectItem(expression=expression, aggregate=aggregate))
        return extra

    @staticmethod
    def _order_by_needs_source_columns(statement: SelectStatement) -> bool:
        """True when ORDER BY references columns that the SELECT list does not expose.

        In that case the sort runs below the projection (against source columns),
        which is what SQL semantics require for ``SELECT a FROM t ORDER BY b``.
        """
        if any(item.star for item in statement.items):
            return False
        exposed: set[str] = set()
        for item in statement.items:
            if item.alias:
                exposed.add(item.alias.lower())
            if item.expression is not None:
                exposed.add(item.expression.to_sql().lower())
                if isinstance(item.expression, ColumnRef):
                    exposed.add(item.expression.name.lower().split(".")[-1])
            if item.aggregate:
                exposed.add(item.output_name.lower())
        for order in statement.order_by:
            refs = {name.split(".")[-1] for name in order.expression.referenced_columns()}
            rendered = order.expression.to_sql().lower()
            if rendered in exposed:
                continue
            if refs and not (refs <= exposed):
                return True
        return False

    # ---------------------------------------------------------------- internal
    def _plan_table_ref(self, ref: TableRef) -> LogicalPlan:
        if ref.subquery is not None:
            inner = self.plan_select(ref.subquery)
            return SubqueryNode(plan=inner, alias=ref.effective_name)
        if ref.name is None:
            raise PlanningError("table reference has neither a name nor a subquery")
        return ScanNode(table=ref.name, alias=ref.alias)

    def _plan_from_clause(self, statement: SelectStatement) -> LogicalPlan:
        assert statement.from_table is not None
        plan = self._plan_table_ref(statement.from_table)
        for join in statement.joins:
            right = self._plan_table_ref(join.table)
            plan = JoinNode(left=plan, right=right, condition=join.condition, join_type=join.join_type)
        return plan

    def _apply_where(self, plan: LogicalPlan, statement: SelectStatement) -> LogicalPlan:
        predicate = statement.where
        if predicate is None:
            return self._choose_access_paths(plan)
        conjuncts = split_conjuncts(predicate)
        plan, remaining = self._push_down(plan, conjuncts)
        plan = self._choose_access_paths(plan)
        residual = conjunction(remaining)
        if residual is not None:
            plan = FilterNode(predicate=residual, child=plan)
        return plan

    def _push_down(
        self, plan: LogicalPlan, conjuncts: list[Expression]
    ) -> tuple[LogicalPlan, list[Expression]]:
        """Push WHERE conjuncts onto the scans whose columns they reference."""
        if isinstance(plan, ScanNode):
            columns = {c.lower() for c in self._stats.table_columns(plan.table)}
            alias = (plan.alias or plan.table).lower()
            local: list[Expression] = []
            remaining: list[Expression] = []
            for conjunct in conjuncts:
                refs = conjunct.referenced_columns()
                if refs and all(self._column_belongs(ref, columns, alias) for ref in refs):
                    local.append(conjunct)
                else:
                    remaining.append(conjunct)
            if local:
                existing = [plan.predicate] if plan.predicate is not None else []
                plan.predicate = conjunction(existing + local)
            return plan, remaining
        if isinstance(plan, JoinNode):
            # WHERE runs after the join, so a conjunct may only move below
            # an outer join on its *preserved* side: filtering the other
            # side's scan would resurrect rows the post-join filter removes
            # (a NULL-padded row can never satisfy a predicate on the padded
            # columns).  Inner/cross joins push freely to both sides.
            if plan.join_type in ("inner", "cross", "left"):
                plan.left, conjuncts = self._push_down(plan.left, conjuncts)
            if plan.join_type in ("inner", "cross", "right"):
                plan.right, conjuncts = self._push_down(plan.right, conjuncts)
            return plan, conjuncts
        if isinstance(plan, SubqueryNode):
            return plan, conjuncts
        return plan, conjuncts

    @staticmethod
    def _column_belongs(ref: str, columns: set[str], alias: str) -> bool:
        name = ref.lower()
        if "." in name:
            qualifier, bare = name.split(".", 1)
            return qualifier == alias and bare in columns
        return name in columns

    def _choose_access_paths(self, plan: LogicalPlan) -> LogicalPlan:
        """Replace scans with index scans where a pushed-down predicate allows it."""
        if isinstance(plan, ScanNode):
            return self._maybe_index_scan(plan)
        if isinstance(plan, JoinNode):
            plan.left = self._choose_access_paths(plan.left)
            plan.right = self._choose_access_paths(plan.right)
            return self._order_join(plan)
        if isinstance(plan, SubqueryNode):
            return plan
        for child_attr in ("child",):
            if hasattr(plan, child_attr):
                setattr(plan, child_attr, self._choose_access_paths(getattr(plan, child_attr)))
        return plan

    def _maybe_index_scan(self, scan: ScanNode) -> LogicalPlan:
        if scan.predicate is None or scan.table == "__dual__":
            return scan
        indexes = self._stats.table_indexes(scan.table)
        if not indexes:
            return scan
        leading = {}
        for index_name, columns in indexes.items():
            if columns:
                leading.setdefault(columns[0].lower(), index_name)
        conjuncts = split_conjuncts(scan.predicate)
        for i, conjunct in enumerate(conjuncts):
            simple = self._simple_comparison(conjunct)
            if simple is None:
                continue
            column, op, value = simple
            bare = column.split(".")[-1].lower()
            if bare not in leading:
                continue
            index_name = leading[bare]
            residual = conjunction(conjuncts[:i] + conjuncts[i + 1 :])
            if op in ("=", "=="):
                return IndexScanNode(
                    table=scan.table, index_name=index_name, column=bare,
                    alias=scan.alias, equals=value, residual=residual,
                )
            if op in ("<", "<=", ">", ">="):
                node = IndexScanNode(
                    table=scan.table, index_name=index_name, column=bare,
                    alias=scan.alias, residual=residual,
                )
                if op in (">", ">="):
                    node.low = value
                    node.include_low = op == ">="
                else:
                    node.high = value
                    node.include_high = op == "<="
                return node
        return scan

    @staticmethod
    def _simple_comparison(expr: Expression) -> tuple[str, str, Any] | None:
        """Recognise ``column <op> literal`` (either side), else None."""
        if not isinstance(expr, BinaryOp):
            return None
        op = expr.op
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return expr.left.name, op, expr.right.value
        if isinstance(expr.left, Literal) and isinstance(expr.right, ColumnRef):
            if op in flipped:
                return expr.right.name, flipped[op], expr.left.value
            if op in ("=", "=="):
                return expr.right.name, op, expr.left.value
        return None

    def _order_join(self, join: JoinNode) -> JoinNode:
        """Pick the join strategy and the hash join's build side.

        Equi-joins (inner and left/right/full outer) hash; the smaller
        estimated input becomes the build side via the ``build_side`` hint —
        the children are never swapped, so output column order always follows
        the query.  Outer joins pin ``build_side="right"``: probing the left
        input preserves the row executor's left-major emission order, which
        the batch executor must reproduce exactly.
        """
        equi = join.condition is not None and self._is_equi_join(join.condition)
        if not equi or join.join_type == "cross":
            join.strategy = "nested_loop"
            return join
        join.strategy = "hash"
        if join.join_type == "inner":
            left_rows = self._estimate_rows(join.left)
            right_rows = self._estimate_rows(join.right)
            join.build_side = "right" if right_rows < left_rows else "left"
        else:
            join.build_side = "right"
        return join

    @staticmethod
    def _is_equi_join(condition: Expression) -> bool:
        conjuncts = split_conjuncts(condition)
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op in ("=", "==")
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                return True
        return False

    def _estimate_rows(self, plan: LogicalPlan) -> int:
        if isinstance(plan, (ScanNode,)):
            try:
                count = self._stats.table_row_count(plan.table)
            except Exception:  # noqa: BLE001 - statistics are best-effort
                return 1000
            # A pushed-down filter is assumed to keep a third of the rows.
            return max(1, count // 3) if plan.predicate is not None else count
        if isinstance(plan, IndexScanNode):
            return 10
        if isinstance(plan, JoinNode):
            return self._estimate_rows(plan.left) * max(1, self._estimate_rows(plan.right) // 10)
        children = plan.children()
        if children:
            return self._estimate_rows(children[0])
        return 1000
