"""SQL front end for the relational engine: lexer, AST and recursive-descent parser."""

from repro.engines.relational.sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UpdateStatement,
)
from repro.engines.relational.sql.parser import parse_sql

__all__ = [
    "CreateIndexStatement",
    "CreateTableStatement",
    "DeleteStatement",
    "DropTableStatement",
    "InsertStatement",
    "JoinClause",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "TableRef",
    "UpdateStatement",
    "parse_sql",
]
