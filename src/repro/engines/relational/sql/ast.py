"""AST node definitions for the SQL subset understood by the relational engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.expressions import Expression
from repro.common.types import DataType


class Statement:
    """Base class for every SQL statement."""


@dataclass
class ColumnDefinition:
    """A column in a CREATE TABLE statement."""

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStatement(Statement):
    table: str
    columns: list[ColumnDefinition]
    if_not_exists: bool = False


@dataclass
class DropTableStatement(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CreateIndexStatement(Statement):
    index: str
    table: str
    columns: list[str]
    unique: bool = False


@dataclass
class InsertStatement(Statement):
    table: str
    columns: list[str]
    rows: list[list[Expression]]


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: dict[str, Expression]
    where: Expression | None = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Expression | None = None


@dataclass
class TableRef:
    """A table in the FROM clause, optionally aliased; may be a subquery."""

    name: str | None = None
    alias: str | None = None
    subquery: "SelectStatement | None" = None

    @property
    def effective_name(self) -> str:
        if self.alias:
            return self.alias
        if self.name:
            return self.name
        return "subquery"


@dataclass
class JoinClause:
    """A JOIN against another table with an ON condition."""

    table: TableRef
    condition: Expression | None
    join_type: str = "inner"  # inner | left | right | full | cross


@dataclass
class SelectItem:
    """One item of the SELECT list; ``star`` means ``*``."""

    expression: Expression | None = None
    alias: str | None = None
    star: bool = False
    aggregate: str | None = None  # count / sum / avg / min / max / stddev
    distinct: bool = False

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.aggregate:
            inner = "*" if self.expression is None else self.expression.to_sql()
            return f"{self.aggregate}({inner})"
        if self.expression is not None:
            return self.expression.to_sql()
        return "*"


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement(Statement):
    items: list[SelectItem] = field(default_factory=list)
    from_table: TableRef | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(item.aggregate for item in self.items) or bool(self.group_by)
