"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit", "offset",
    "insert", "into", "values", "update", "set", "delete", "create", "drop", "table",
    "index", "unique", "on", "as", "and", "or", "not", "null", "is", "in", "like",
    "join", "inner", "left", "cross", "outer", "distinct", "asc", "desc", "case",
    "when", "then", "else", "end", "primary", "key", "if", "exists", "between",
    "true", "false", "count", "sum", "avg", "min", "max", "stddev",
    "integer", "int", "bigint", "float", "double", "real", "text", "varchar",
    "boolean", "bool", "timestamp",
}

#: Context-sensitive keywords: these lex as identifiers and the parser only
#: treats them as keywords when the surrounding tokens form a join clause
#: (``RIGHT [OUTER] JOIN`` / ``FULL [OUTER] JOIN``).  Keeping them out of
#: ``KEYWORDS`` means a column named ``right`` or ``full`` still parses.
SOFT_KEYWORDS = {"right", "full"}

_OPERATOR_CHARS = set("=<>!+-*/%")
_TWO_CHAR_OPERATORS = {"<=", ">=", "!=", "<>", "=="}


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int
    #: True when any part of an identifier was double-quoted; quoting forces
    #: identifier treatment, so the parser must never reinterpret a quoted
    #: ``"right"``/``"full"`` as a soft join keyword.
    quoted: bool = False

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.lower() == value.lower()


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens, raising :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # Line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n and (
                text[i].isdigit()
                or (text[i] == "." and not seen_dot)
                or (text[i] in "eE" and not seen_exp)
                or (text[i] in "+-" and i > start and text[i - 1] in "eE")
            ):
                if text[i] == ".":
                    seen_dot = True
                if text[i] in "eE":
                    seen_exp = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    break
                parts.append(text[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated string literal", start)
            i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            # An identifier chain: bare and/or double-quoted ("" escapes a
            # quote) segments joined by dots, so keyword-named columns can be
            # table-qualified (t."left", "t"."order").  Quoting any segment
            # forces identifier treatment, so even hard keywords work as
            # column names.
            start = i
            quoted = False
            pieces: list[str] = []
            while i < n:
                if text[i] == '"':
                    quoted = True
                    i += 1
                    segment: list[str] = []
                    while i < n:
                        if text[i] == '"':
                            if i + 1 < n and text[i + 1] == '"':
                                segment.append('"')
                                i += 2
                                continue
                            break
                        segment.append(text[i])
                        i += 1
                    if i >= n:
                        raise ParseError("unterminated quoted identifier", start)
                    i += 1
                    if not segment:
                        raise ParseError("empty quoted identifier", start)
                    pieces.append("".join(segment))
                else:
                    seg_start = i
                    while i < n and (text[i].isalnum() or text[i] == "_"):
                        i += 1
                    pieces.append(text[seg_start:i])
                if i < n and text[i] == ".":
                    pieces.append(".")
                    i += 1
                    if i < n and (text[i].isalnum() or text[i] in '_"'):
                        continue
                break
            word = "".join(pieces)
            if not quoted and word.lower() in KEYWORDS and "." not in word:
                tokens.append(Token(TokenType.KEYWORD, word.lower(), start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start, quoted))
            continue
        if ch in _OPERATOR_CHARS:
            if i + 1 < n and text[i : i + 2] in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, text[i : i + 2], i))
                i += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            continue
        if ch in "(),;*":
            token_type = TokenType.PUNCTUATION
            if ch == "*":
                # '*' is both multiplication and the star selector; the parser decides.
                token_type = TokenType.OPERATOR
            tokens.append(Token(token_type, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
