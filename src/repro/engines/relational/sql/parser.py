"""Recursive-descent parser producing the SQL AST.

Supported statements: ``CREATE TABLE``, ``DROP TABLE``, ``CREATE INDEX``,
``INSERT``, ``UPDATE``, ``DELETE`` and ``SELECT`` with joins, ``WHERE``,
``GROUP BY`` / ``HAVING``, ``ORDER BY``, ``LIMIT`` / ``OFFSET``, ``DISTINCT``,
aggregates, ``CASE`` expressions, ``IN`` lists, ``BETWEEN``, ``LIKE`` and
``IS [NOT] NULL``.
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.common.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    scalar_function_names,
)
from repro.common.types import parse_type
from repro.engines.relational.sql.ast import (
    ColumnDefinition,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UpdateStatement,
)
from repro.engines.relational.sql.lexer import (
    SOFT_KEYWORDS,
    Token,
    TokenType,
    tokenize,
)

_AGGREGATES = {"count", "sum", "avg", "min", "max", "stddev"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- primitives
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self.current.matches(token_type, value)

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.check(token_type, value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self.check(token_type, value):
            raise ParseError(
                f"expected {value or token_type.value!s} but found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _starts_soft_join(self, word: str | None = None) -> bool:
        """Whether the current token is a soft keyword (``word``, or any
        member of :data:`~repro.engines.relational.sql.lexer.SOFT_KEYWORDS`
        when ``word`` is None) opening a join clause.  Soft keywords lex as
        identifiers, so the decision needs one token of lookahead: only
        ``right/full`` directly followed by ``JOIN`` or ``OUTER`` is a join;
        anywhere else — or when the user double-quoted the word, which
        forces identifier treatment — it is an ordinary identifier (a
        column name, an alias, ...)."""
        token = self.current
        if token.type is not TokenType.IDENTIFIER or token.quoted:
            return False
        value = token.value.lower()
        if value not in SOFT_KEYWORDS or (word is not None and value != word):
            return False
        upcoming = self._peek()
        return upcoming.matches(TokenType.KEYWORD, "join") or upcoming.matches(
            TokenType.KEYWORD, "outer"
        )

    def _accept_soft_join_keyword(self, word: str) -> bool:
        if self._starts_soft_join(word):
            self.advance()
            return True
        return False

    def accept_keyword(self, *words: str) -> bool:
        return any(self.accept(TokenType.KEYWORD, word) for word in words[:1]) or (
            len(words) > 1 and self._accept_sequence(words)
        )

    def _accept_sequence(self, words: tuple[str, ...]) -> bool:
        saved = self._pos
        for word in words:
            if not self.accept(TokenType.KEYWORD, word):
                self._pos = saved
                return False
        return True

    # -------------------------------------------------------------- statements
    def parse_statement(self) -> Statement:
        if self.check(TokenType.KEYWORD, "select"):
            return self.parse_select()
        if self.check(TokenType.KEYWORD, "insert"):
            return self.parse_insert()
        if self.check(TokenType.KEYWORD, "update"):
            return self.parse_update()
        if self.check(TokenType.KEYWORD, "delete"):
            return self.parse_delete()
        if self.check(TokenType.KEYWORD, "create"):
            return self.parse_create()
        if self.check(TokenType.KEYWORD, "drop"):
            return self.parse_drop()
        raise ParseError(f"unexpected statement start: {self.current.value!r}", self.current.position)

    def parse_create(self) -> Statement:
        self.expect(TokenType.KEYWORD, "create")
        unique = bool(self.accept(TokenType.KEYWORD, "unique"))
        if self.accept(TokenType.KEYWORD, "table"):
            if unique:
                raise ParseError("UNIQUE is not valid before TABLE", self.current.position)
            return self._parse_create_table()
        if self.accept(TokenType.KEYWORD, "index"):
            return self._parse_create_index(unique)
        raise ParseError("expected TABLE or INDEX after CREATE", self.current.position)

    def _parse_create_table(self) -> CreateTableStatement:
        if_not_exists = False
        if self.accept(TokenType.KEYWORD, "if"):
            self.expect(TokenType.KEYWORD, "not")
            self.expect(TokenType.KEYWORD, "exists")
            if_not_exists = True
        table = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.PUNCTUATION, "(")
        columns: list[ColumnDefinition] = []
        while True:
            name = self.expect(TokenType.IDENTIFIER).value
            type_token = self.advance()
            dtype = parse_type(type_token.value)
            nullable = True
            primary_key = False
            while True:
                if self.accept(TokenType.KEYWORD, "not"):
                    self.expect(TokenType.KEYWORD, "null")
                    nullable = False
                elif self.accept(TokenType.KEYWORD, "primary"):
                    self.expect(TokenType.KEYWORD, "key")
                    primary_key = True
                    nullable = False
                elif self.accept(TokenType.KEYWORD, "null"):
                    nullable = True
                else:
                    break
            columns.append(ColumnDefinition(name, dtype, nullable, primary_key))
            if not self.accept(TokenType.PUNCTUATION, ","):
                break
        self.expect(TokenType.PUNCTUATION, ")")
        return CreateTableStatement(table, columns, if_not_exists)

    def _parse_create_index(self, unique: bool) -> CreateIndexStatement:
        index = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.KEYWORD, "on")
        table = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.PUNCTUATION, "(")
        columns = [self.expect(TokenType.IDENTIFIER).value]
        while self.accept(TokenType.PUNCTUATION, ","):
            columns.append(self.expect(TokenType.IDENTIFIER).value)
        self.expect(TokenType.PUNCTUATION, ")")
        return CreateIndexStatement(index, table, columns, unique)

    def parse_drop(self) -> DropTableStatement:
        self.expect(TokenType.KEYWORD, "drop")
        self.expect(TokenType.KEYWORD, "table")
        if_exists = False
        if self.accept(TokenType.KEYWORD, "if"):
            self.expect(TokenType.KEYWORD, "exists")
            if_exists = True
        table = self.expect(TokenType.IDENTIFIER).value
        return DropTableStatement(table, if_exists)

    def parse_insert(self) -> InsertStatement:
        self.expect(TokenType.KEYWORD, "insert")
        self.expect(TokenType.KEYWORD, "into")
        table = self.expect(TokenType.IDENTIFIER).value
        columns: list[str] = []
        if self.accept(TokenType.PUNCTUATION, "("):
            columns.append(self.expect(TokenType.IDENTIFIER).value)
            while self.accept(TokenType.PUNCTUATION, ","):
                columns.append(self.expect(TokenType.IDENTIFIER).value)
            self.expect(TokenType.PUNCTUATION, ")")
        self.expect(TokenType.KEYWORD, "values")
        rows: list[list[Expression]] = []
        while True:
            self.expect(TokenType.PUNCTUATION, "(")
            row = [self.parse_expression()]
            while self.accept(TokenType.PUNCTUATION, ","):
                row.append(self.parse_expression())
            self.expect(TokenType.PUNCTUATION, ")")
            rows.append(row)
            if not self.accept(TokenType.PUNCTUATION, ","):
                break
        return InsertStatement(table, columns, rows)

    def parse_update(self) -> UpdateStatement:
        self.expect(TokenType.KEYWORD, "update")
        table = self.expect(TokenType.IDENTIFIER).value
        self.expect(TokenType.KEYWORD, "set")
        assignments: dict[str, Expression] = {}
        while True:
            column = self.expect(TokenType.IDENTIFIER).value
            self.expect(TokenType.OPERATOR, "=")
            assignments[column] = self.parse_expression()
            if not self.accept(TokenType.PUNCTUATION, ","):
                break
        where = None
        if self.accept(TokenType.KEYWORD, "where"):
            where = self.parse_expression()
        return UpdateStatement(table, assignments, where)

    def parse_delete(self) -> DeleteStatement:
        self.expect(TokenType.KEYWORD, "delete")
        self.expect(TokenType.KEYWORD, "from")
        table = self.expect(TokenType.IDENTIFIER).value
        where = None
        if self.accept(TokenType.KEYWORD, "where"):
            where = self.parse_expression()
        return DeleteStatement(table, where)

    # ------------------------------------------------------------------ select
    def parse_select(self) -> SelectStatement:
        self.expect(TokenType.KEYWORD, "select")
        statement = SelectStatement()
        if self.accept(TokenType.KEYWORD, "distinct"):
            statement.distinct = True
        statement.items.append(self._parse_select_item())
        while self.accept(TokenType.PUNCTUATION, ","):
            statement.items.append(self._parse_select_item())
        if self.accept(TokenType.KEYWORD, "from"):
            statement.from_table = self._parse_table_ref()
            while True:
                join_type = None
                if self.accept(TokenType.KEYWORD, "join") or self.accept(TokenType.KEYWORD, "inner"):
                    if self.check(TokenType.KEYWORD, "join"):
                        self.advance()
                    join_type = "inner"
                elif self.accept(TokenType.KEYWORD, "left"):
                    self.accept(TokenType.KEYWORD, "outer")
                    self.expect(TokenType.KEYWORD, "join")
                    join_type = "left"
                elif self._accept_soft_join_keyword("right"):
                    self.accept(TokenType.KEYWORD, "outer")
                    self.expect(TokenType.KEYWORD, "join")
                    join_type = "right"
                elif self._accept_soft_join_keyword("full"):
                    self.accept(TokenType.KEYWORD, "outer")
                    self.expect(TokenType.KEYWORD, "join")
                    join_type = "full"
                elif self.accept(TokenType.KEYWORD, "cross"):
                    self.expect(TokenType.KEYWORD, "join")
                    join_type = "cross"
                else:
                    break
                table = self._parse_table_ref()
                condition = None
                if join_type != "cross":
                    self.expect(TokenType.KEYWORD, "on")
                    condition = self.parse_expression()
                statement.joins.append(JoinClause(table, condition, join_type))
        if self.accept(TokenType.KEYWORD, "where"):
            statement.where = self.parse_expression()
        if self.accept(TokenType.KEYWORD, "group"):
            self.expect(TokenType.KEYWORD, "by")
            statement.group_by.append(self.parse_expression())
            while self.accept(TokenType.PUNCTUATION, ","):
                statement.group_by.append(self.parse_expression())
        if self.accept(TokenType.KEYWORD, "having"):
            statement.having = self.parse_expression()
        if self.accept(TokenType.KEYWORD, "order"):
            self.expect(TokenType.KEYWORD, "by")
            statement.order_by.append(self._parse_order_item())
            while self.accept(TokenType.PUNCTUATION, ","):
                statement.order_by.append(self._parse_order_item())
        if self.accept(TokenType.KEYWORD, "limit"):
            statement.limit = int(self.expect(TokenType.NUMBER).value)
        if self.accept(TokenType.KEYWORD, "offset"):
            statement.offset = int(self.expect(TokenType.NUMBER).value)
        return statement

    def _parse_table_ref(self) -> TableRef:
        if self.accept(TokenType.PUNCTUATION, "("):
            subquery = self.parse_select()
            self.expect(TokenType.PUNCTUATION, ")")
            alias = None
            explicit = bool(self.accept(TokenType.KEYWORD, "as"))
            if self.check(TokenType.IDENTIFIER) and (
                explicit
                # "FROM (...) RIGHT JOIN b": the soft keyword opens a join
                # clause, it is not the derived table's implicit alias.
                or not self._starts_soft_join()
            ):
                alias = self.advance().value
            return TableRef(subquery=subquery, alias=alias)
        name = self.expect(TokenType.IDENTIFIER).value
        alias = None
        if self.accept(TokenType.KEYWORD, "as"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.check(TokenType.IDENTIFIER) and not self._starts_soft_join(
            # "FROM a RIGHT JOIN b": the soft keyword opens a join clause,
            # it is not an implicit alias (write "a AS right" to alias).
        ):
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept(TokenType.KEYWORD, "desc"):
            descending = True
        else:
            self.accept(TokenType.KEYWORD, "asc")
        return OrderItem(expr, descending)

    def _parse_select_item(self) -> SelectItem:
        if self.check(TokenType.OPERATOR, "*"):
            self.advance()
            return SelectItem(star=True)
        # Aggregate functions.
        if self.current.type is TokenType.KEYWORD and self.current.value in _AGGREGATES:
            aggregate = self.advance().value
            self.expect(TokenType.PUNCTUATION, "(")
            distinct = bool(self.accept(TokenType.KEYWORD, "distinct"))
            expression: Expression | None = None
            if self.check(TokenType.OPERATOR, "*"):
                self.advance()
            else:
                expression = self.parse_expression()
            self.expect(TokenType.PUNCTUATION, ")")
            alias = self._parse_alias()
            return SelectItem(expression=expression, alias=alias, aggregate=aggregate, distinct=distinct)
        expression = self.parse_expression()
        alias = self._parse_alias()
        return SelectItem(expression=expression, alias=alias)

    def _parse_alias(self) -> str | None:
        if self.accept(TokenType.KEYWORD, "as"):
            return self.expect(TokenType.IDENTIFIER).value
        if self.check(TokenType.IDENTIFIER):
            return self.advance().value
        return None

    # -------------------------------------------------------------- expressions
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept(TokenType.KEYWORD, "or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept(TokenType.KEYWORD, "and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept(TokenType.KEYWORD, "not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        if self.check(TokenType.OPERATOR) and self.current.value in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            return BinaryOp(op, left, self._parse_additive())
        if self.accept(TokenType.KEYWORD, "like"):
            return BinaryOp("like", left, self._parse_additive())
        if self.check(TokenType.KEYWORD, "not"):
            saved = self._pos
            self.advance()
            if self.accept(TokenType.KEYWORD, "like"):
                return UnaryOp("not", BinaryOp("like", left, self._parse_additive()))
            if self.accept(TokenType.KEYWORD, "in"):
                return self._parse_in(left, negated=True)
            if self.accept(TokenType.KEYWORD, "between"):
                return UnaryOp("not", self._parse_between(left))
            self._pos = saved
        if self.accept(TokenType.KEYWORD, "in"):
            return self._parse_in(left, negated=False)
        if self.accept(TokenType.KEYWORD, "between"):
            return self._parse_between(left)
        if self.accept(TokenType.KEYWORD, "is"):
            negated = bool(self.accept(TokenType.KEYWORD, "not"))
            self.expect(TokenType.KEYWORD, "null")
            return IsNull(left, negated)
        return left

    def _parse_in(self, operand: Expression, negated: bool) -> Expression:
        self.expect(TokenType.PUNCTUATION, "(")
        values = [self._literal_value()]
        while self.accept(TokenType.PUNCTUATION, ","):
            values.append(self._literal_value())
        self.expect(TokenType.PUNCTUATION, ")")
        return InList(operand, tuple(values), negated)

    def _literal_value(self):
        expr = self.parse_expression()
        if not isinstance(expr, Literal):
            raise ParseError("IN list values must be literals", self.current.position)
        return expr.value

    def _parse_between(self, operand: Expression) -> Expression:
        low = self._parse_additive()
        self.expect(TokenType.KEYWORD, "and")
        high = self._parse_additive()
        return BinaryOp("and", BinaryOp(">=", operand, low), BinaryOp("<=", operand, high))

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.check(TokenType.OPERATOR) and self.current.value in ("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.check(TokenType.OPERATOR) and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self.check(TokenType.OPERATOR, "-"):
            self.advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.KEYWORD:
            if token.value == "null":
                self.advance()
                return Literal(None)
            if token.value == "true":
                self.advance()
                return Literal(True)
            if token.value == "false":
                self.advance()
                return Literal(False)
            if token.value == "case":
                return self._parse_case()
            if token.value in _AGGREGATES:
                # Aggregates inside expressions (e.g. HAVING count(*) > 2) are
                # represented as column references to the aggregate's output name.
                aggregate = self.advance().value
                self.expect(TokenType.PUNCTUATION, "(")
                inner: Expression | None = None
                if self.check(TokenType.OPERATOR, "*"):
                    self.advance()
                else:
                    inner = self.parse_expression()
                self.expect(TokenType.PUNCTUATION, ")")
                inner_sql = "*" if inner is None else inner.to_sql()
                return ColumnRef(f"{aggregate}({inner_sql})")
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(TokenType.PUNCTUATION, ")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            if self.check(TokenType.PUNCTUATION, "(") and token.value.lower() in scalar_function_names():
                self.advance()
                args: list[Expression] = []
                if not self.check(TokenType.PUNCTUATION, ")"):
                    args.append(self.parse_expression())
                    while self.accept(TokenType.PUNCTUATION, ","):
                        args.append(self.parse_expression())
                self.expect(TokenType.PUNCTUATION, ")")
                return FunctionCall(token.value, tuple(args))
            return ColumnRef(token.value)
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_case(self) -> Expression:
        self.expect(TokenType.KEYWORD, "case")
        branches: list[tuple[Expression, Expression]] = []
        default: Expression | None = None
        while self.accept(TokenType.KEYWORD, "when"):
            condition = self.parse_expression()
            self.expect(TokenType.KEYWORD, "then")
            result = self.parse_expression()
            branches.append((condition, result))
        if self.accept(TokenType.KEYWORD, "else"):
            default = self.parse_expression()
        self.expect(TokenType.KEYWORD, "end")
        return CaseWhen(tuple(branches), default)


def parse_sql(text: str) -> Statement:
    """Parse one SQL statement into its AST."""
    tokens = tokenize(text.strip().rstrip(";"))
    parser = _Parser(tokens)
    statement = parser.parse_statement()
    if not parser.check(TokenType.EOF):
        raise ParseError(
            f"unexpected trailing input: {parser.current.value!r}", parser.current.position
        )
    return statement


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (no statement keywords).

    Used by the planner to reconstruct the inner expression of a
    HAVING-only aggregate reference such as ``sum(v + 1)`` from its
    rendered SQL, since HAVING aggregates parse to plain column refs.
    """
    tokens = tokenize(text.strip())
    parser = _Parser(tokens)
    expression = parser.parse_expression()
    if not parser.check(TokenType.EOF):
        raise ParseError(
            f"unexpected trailing input: {parser.current.value!r}", parser.current.position
        )
    return expression


def parse_many(text: str) -> list[Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    statements = []
    for part in text.split(";"):
        if part.strip():
            statements.append(parse_sql(part))
    return statements
