"""Table and column statistics for the relational engine's optimizer.

This is the layer every cost-based decision reads from: per-table row
counts plus per-column NDV (number-of-distinct-values) estimates, null
fractions, min/max bounds and average widths in bytes.

Maintenance model
-----------------
* **Cheap counters, always fresh.**  Row counts are read live from the
  heap table and per-table mutation counters are bumped on every DML/load
  hook, so size/byte estimates track reality without ever rescanning.
* **Full column statistics, lazily.**  NDV/null/min-max require a scan;
  they are computed on first demand (``table_stats``) and then reused
  until the table has churned past a staleness threshold — mirroring the
  engine's existing ``write_version`` invalidation machinery, which the
  cached snapshot also records so external observers can correlate a
  statistics version with a cache fingerprint.
* **Bounded analyze cost.**  ``analyze`` samples at most
  :data:`ANALYZE_SAMPLE_ROWS` rows (evenly strided) and scales the NDV
  estimate back up, so collecting statistics on a 10M-row table costs the
  same as on a 20k-row one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.relational.engine import RelationalEngine

#: Hard cap on rows touched by one ``analyze`` pass.
ANALYZE_SAMPLE_ROWS = 20_000

#: Recompute column statistics once this fraction of the analyzed rows has
#: been touched by DML (or at least ``_STALE_FLOOR`` rows, so tiny tables
#: do not re-analyze on every insert).
STALE_FRACTION = 0.2
_STALE_FLOOR = 64

#: Fixed storage width per scalar type; TEXT widths are measured.
_FIXED_WIDTHS = {
    DataType.INTEGER: 8,
    DataType.FLOAT: 8,
    DataType.BOOLEAN: 1,
    DataType.TIMESTAMP: 8,
}
_DEFAULT_WIDTH = 8
_NULL_WIDTH = 1
_TEXT_OVERHEAD = 4


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column, from the most recent analyze pass."""

    name: str
    dtype: DataType
    ndv: int  #: estimated number of distinct non-NULL values
    null_fraction: float  #: fraction of rows that are NULL
    minimum: Any = None  #: smallest non-NULL value seen (orderable types)
    maximum: Any = None
    avg_width: float = _DEFAULT_WIDTH  #: average stored bytes per value


@dataclass
class TableStats:
    """Statistics for one table.

    ``row_count`` is refreshed from the live table on every
    :meth:`StatisticsCatalog.table_stats` call; the per-column entries are
    as of the last analyze (``analyzed_rows`` rows, engine write version
    ``analyzed_version``).
    """

    table: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    analyzed_rows: int = 0
    analyzed_version: int = 0

    @property
    def avg_row_width(self) -> float:
        """Average bytes per row (sum of per-column average widths)."""
        if not self.columns:
            return _DEFAULT_WIDTH
        return sum(c.avg_width for c in self.columns.values())

    @property
    def estimated_bytes(self) -> int:
        """The optimizer's size unit: live row count times average width."""
        return int(self.row_count * self.avg_row_width)

    def column(self, name: str) -> ColumnStats | None:
        """Look up one column's statistics by (possibly qualified) name."""
        key = name.lower().split(".")[-1]
        return self.columns.get(key)


class StatisticsCatalog:
    """Per-engine statistics store with lazy analyze and cheap upkeep.

    The engine calls :meth:`note_mutation` from its DML paths and
    :meth:`invalidate` when a table is created, replaced or dropped;
    everything else happens on demand inside :meth:`table_stats`.
    Mutations that bypass the engine facade (e.g. transaction rollback
    restoring rows directly) are tolerated: counters drift slightly, but
    row counts are always read live and the drift only delays a
    re-analyze, never corrupts an estimate.
    """

    def __init__(self, engine: "RelationalEngine") -> None:
        self._engine = engine
        self._stats: dict[str, TableStats] = {}
        self._mutations: dict[str, int] = {}

    # ------------------------------------------------------------------ upkeep
    def note_mutation(self, table: str, rows_touched: int = 1) -> None:
        """Record that DML touched ``rows_touched`` rows (cheap counter)."""
        key = table.lower()
        self._mutations[key] = self._mutations.get(key, 0) + max(1, rows_touched)

    def invalidate(self, table: str | None = None) -> None:
        """Drop cached statistics for one table (or all of them)."""
        if table is None:
            self._stats.clear()
            self._mutations.clear()
            return
        key = table.lower()
        self._stats.pop(key, None)
        self._mutations.pop(key, None)

    # ------------------------------------------------------------------ access
    def table_stats(self, table: str) -> TableStats | None:
        """Statistics for ``table``, analyzing lazily when stale or missing.

        Returns ``None`` when the table does not exist (planning against a
        missing table surfaces its own error downstream).
        """
        key = table.lower()
        try:
            heap = self._engine.table(table)
        except Exception:  # noqa: BLE001 - statistics are best-effort
            return None
        cached = self._stats.get(key)
        if cached is not None and not self._is_stale(key, cached, heap.row_count):
            cached.row_count = heap.row_count  # cheap counter: always live
            return cached
        return self.analyze(table)

    def _is_stale(self, key: str, cached: TableStats, live_rows: int) -> bool:
        threshold = max(_STALE_FLOOR, int(cached.analyzed_rows * STALE_FRACTION))
        if self._mutations.get(key, 0) > threshold:
            return True
        return abs(live_rows - cached.analyzed_rows) > threshold

    def analyze(self, table: str) -> TableStats:
        """Scan (a bounded sample of) the table and rebuild its statistics."""
        heap = self._engine.table(table)
        schema = heap.schema
        total = heap.row_count
        # Ceiling division keeps the sample at or under the cap (floor would
        # let a 39,999-row table scan every row with stride 1).
        stride = max(1, -(-total // ANALYZE_SAMPLE_ROWS))
        sampled = 0
        width = len(schema)
        distinct: list[set[Any]] = [set() for _ in range(width)]
        nulls = [0] * width
        minimums: list[Any] = [None] * width
        maximums: list[Any] = [None] * width
        text_bytes = [0] * width
        # islice keeps the stride-skipping in C, so analyzing a 10M-row
        # table costs ~ANALYZE_SAMPLE_ROWS iterations of Python work.
        for values in itertools.islice(heap.scan_values(), 0, None, stride):
            sampled += 1
            for c, value in enumerate(values):
                if value is None:
                    nulls[c] += 1
                    continue
                try:
                    distinct[c].add(value)
                except TypeError:  # unhashable value: skip NDV tracking
                    pass
                if isinstance(value, str):
                    text_bytes[c] += len(value)
                try:
                    if minimums[c] is None or value < minimums[c]:
                        minimums[c] = value
                    if maximums[c] is None or value > maximums[c]:
                        maximums[c] = value
                except TypeError:  # mixed/unorderable values: no bounds
                    minimums[c] = maximums[c] = None
        columns: dict[str, ColumnStats] = {}
        for c, column in enumerate(schema.columns):
            present = sampled - nulls[c]
            ndv = len(distinct[c])
            if sampled and sampled < total:
                # Scale the sampled NDV back up: a column that is unique in
                # the sample is assumed unique overall; otherwise the
                # distinct set is assumed to be fully seen (dimension-like).
                if present and ndv >= 0.9 * present:
                    ndv = max(ndv, int(total * (1.0 - nulls[c] / sampled)))
            avg_width = float(_FIXED_WIDTHS.get(column.dtype, _DEFAULT_WIDTH))
            if column.dtype is DataType.TEXT:
                avg_width = (
                    text_bytes[c] / present + _TEXT_OVERHEAD if present else _NULL_WIDTH
                )
            if sampled and nulls[c]:
                null_fraction = nulls[c] / sampled
                avg_width = avg_width * (1 - null_fraction) + _NULL_WIDTH * null_fraction
            else:
                null_fraction = 0.0
            columns[column.name.lower()] = ColumnStats(
                name=column.name,
                dtype=column.dtype,
                ndv=ndv,
                null_fraction=null_fraction,
                minimum=minimums[c],
                maximum=maximums[c],
                avg_width=avg_width,
            )
        stats = TableStats(
            table=table,
            row_count=total,
            columns=columns,
            analyzed_rows=total,
            analyzed_version=getattr(self._engine, "write_version", 0),
        )
        key = table.lower()
        self._stats[key] = stats
        self._mutations[key] = 0
        return stats
