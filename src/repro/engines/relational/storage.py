"""Row storage for the relational engine.

A :class:`HeapTable` stores rows in insertion order keyed by a monotonically
increasing row id, with optional B+tree secondary indexes kept in sync on
insert, update and delete.  Deletes are tombstoned so row ids remain stable
for index entries and in-flight scans.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.common.errors import ConstraintViolationError, ObjectNotFoundError, SchemaError
from repro.common.schema import Row, Schema
from repro.engines.relational.btree import BTreeIndex


class HeapTable:
    """An append-ordered row store with secondary indexes."""

    def __init__(self, name: str, schema: Schema, primary_key: Sequence[str] = ()) -> None:
        self.name = name
        self.schema = schema
        self.primary_key = tuple(primary_key)
        self._rows: dict[int, tuple[Any, ...]] = {}
        self._next_row_id = 0
        self._indexes: dict[str, tuple[tuple[str, ...], BTreeIndex]] = {}
        if self.primary_key:
            for col in self.primary_key:
                if not schema.has_column(col):
                    raise SchemaError(f"primary key column {col!r} not in table {name!r}")
            self.create_index("__pk__", self.primary_key, unique=True)

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def insert(self, values: Sequence[Any]) -> int:
        """Validate, store and index one row. Returns the new row id."""
        validated = self.schema.validate_row(values)
        row_id = self._next_row_id
        for index_name, (columns, index) in self._indexes.items():
            key = self._key_for(validated, columns)
            if index is not None and index_name == "__pk__":
                if index.search(key):
                    raise ConstraintViolationError(
                        f"duplicate primary key {key!r} in table {self.name!r}"
                    )
        self._rows[row_id] = validated
        self._next_row_id += 1
        for columns, index in self._indexes.values():
            index.insert(self._key_for(validated, columns), row_id)
        return row_id

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> list[int]:
        """Insert a batch of rows; returns their row ids."""
        return [self.insert(row) for row in rows]

    def get(self, row_id: int) -> tuple[Any, ...]:
        """Fetch one row by id."""
        if row_id not in self._rows:
            raise ObjectNotFoundError(f"row {row_id} not found in table {self.name!r}")
        return self._rows[row_id]

    def delete(self, row_id: int) -> None:
        """Delete one row by id, maintaining all indexes."""
        values = self.get(row_id)
        for columns, index in self._indexes.values():
            index.delete(self._key_for(values, columns), row_id)
        del self._rows[row_id]

    def update(self, row_id: int, new_values: Sequence[Any]) -> None:
        """Replace a row in place, maintaining all indexes."""
        old = self.get(row_id)
        validated = self.schema.validate_row(new_values)
        for columns, index in self._indexes.values():
            index.delete(self._key_for(old, columns), row_id)
            index.insert(self._key_for(validated, columns), row_id)
        self._rows[row_id] = validated

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Yield (row_id, values) for every live row in insertion order."""
        yield from self._rows.items()

    def scan_values(self) -> Iterator[tuple[Any, ...]]:
        """Yield raw value tuples for every live row in insertion order."""
        yield from self._rows.values()

    def scan_batches(self, batch_size: int) -> Iterator[list[tuple[Any, ...]]]:
        """Yield the table's value tuples in bounded, insertion-ordered batches.

        This is the vectorized executor's (and the columnar export path's)
        entry point: it bounds memory per batch and never constructs a
        :class:`Row` object.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        batch: list[tuple[Any, ...]] = []
        for values in self._rows.values():
            batch.append(values)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def rows(self) -> Iterator[Row]:
        """Yield :class:`Row` objects for every live row."""
        for values in self._rows.values():
            yield Row(self.schema, values)

    def truncate(self) -> None:
        """Remove all rows but keep schema and index definitions."""
        self._rows.clear()
        definitions = [(name, cols) for name, (cols, _idx) in self._indexes.items()]
        self._indexes.clear()
        for name, cols in definitions:
            self.create_index(name, cols, unique=(name == "__pk__"), if_not_exists=True)

    # ---------------------------------------------------------------- indexes
    def create_index(
        self,
        index_name: str,
        columns: Sequence[str],
        unique: bool = False,
        if_not_exists: bool = False,
    ) -> None:
        """Create a B+tree index over the named columns and backfill it."""
        if index_name in self._indexes:
            if if_not_exists:
                return
            raise SchemaError(f"index {index_name!r} already exists on {self.name!r}")
        for col in columns:
            if not self.schema.has_column(col):
                raise SchemaError(f"index column {col!r} not in table {self.name!r}")
        index = BTreeIndex(unique=unique)
        resolved = tuple(columns)
        for row_id, values in self._rows.items():
            index.insert(self._key_for(values, resolved), row_id)
        self._indexes[index_name] = (resolved, index)

    def drop_index(self, index_name: str) -> None:
        if index_name not in self._indexes:
            raise ObjectNotFoundError(f"index {index_name!r} does not exist on {self.name!r}")
        del self._indexes[index_name]

    def indexes(self) -> dict[str, tuple[str, ...]]:
        """Return {index name: indexed columns}."""
        return {name: cols for name, (cols, _idx) in self._indexes.items()}

    def find_index(self, column: str) -> tuple[str, BTreeIndex] | None:
        """Return an index whose leading column is ``column``, if one exists."""
        target = column.lower()
        for name, (columns, index) in self._indexes.items():
            if columns and columns[0].lower() == target:
                return name, index
        return None

    def index_lookup(self, index_name: str, key: Any) -> list[tuple[int, tuple[Any, ...]]]:
        """Equality lookup through an index; returns (row_id, values) pairs."""
        columns, index = self._indexes[index_name]
        if not isinstance(key, tuple):
            key = (key,)
        return [(row_id, self._rows[row_id]) for row_id in index.search(key) if row_id in self._rows]

    def index_range(
        self,
        index_name: str,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Range scan through an index; returns (row_id, values) pairs in key order."""
        _columns, index = self._indexes[index_name]
        low_key = (low,) if low is not None and not isinstance(low, tuple) else low
        high_key = (high,) if high is not None and not isinstance(high, tuple) else high
        for _key, row_id in index.range_scan(low_key, high_key, include_low, include_high):
            if row_id in self._rows:
                yield row_id, self._rows[row_id]

    def _key_for(self, values: Sequence[Any], columns: Sequence[str]) -> tuple[Any, ...]:
        return tuple(values[self.schema.index_of(col)] for col in columns)

    # ------------------------------------------------------------------ stats
    def statistics(self) -> dict[str, Any]:
        """Cheap table statistics used by the planner's cost model."""
        return {
            "row_count": len(self._rows),
            "column_count": len(self.schema),
            "indexes": list(self._indexes),
        }

    def apply_filter(self, predicate: Callable[[Row], bool]) -> list[int]:
        """Return row ids of rows matching a Python predicate (used by UPDATE/DELETE)."""
        matching = []
        for row_id, values in self._rows.items():
            if predicate(Row(self.schema, values)):
                matching.append(row_id)
        return matching

    def apply_filter_values(self, predicate: Callable[[Sequence[Any]], bool]) -> list[int]:
        """Like :meth:`apply_filter` but over raw value tuples.

        Pairs with :func:`repro.common.expressions.compile_predicate`: the
        caller compiles the WHERE clause once and no per-row :class:`Row`
        objects are built while matching.
        """
        return [row_id for row_id, values in self._rows.items() if predicate(values)]
