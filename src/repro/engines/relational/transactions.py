"""A minimal transaction layer for the relational engine.

Transactions collect undo records for every insert, update and delete, apply
changes immediately (no isolation levels beyond a single-writer lock), and can
roll the table back on abort.  This is intentionally lightweight — what the
polystore needs is the *ability* to group multi-statement writes, not a full
MVCC implementation — but the API (begin/commit/rollback, context manager)
matches what an application written against PostgreSQL would expect.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.common.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.relational.engine import RelationalEngine


@dataclass
class _UndoRecord:
    """One reversible change."""

    kind: str  # insert | delete | update
    table: str
    row_id: int
    before: tuple[Any, ...] | None = None


@dataclass
class Transaction:
    """A unit of work against one relational engine."""

    engine: "RelationalEngine"
    txn_id: int
    active: bool = True
    _undo: list[_UndoRecord] = field(default_factory=list)

    def record_insert(self, table: str, row_id: int) -> None:
        self._undo.append(_UndoRecord("insert", table, row_id))

    def record_delete(self, table: str, row_id: int, before: tuple[Any, ...]) -> None:
        self._undo.append(_UndoRecord("delete", table, row_id, before))

    def record_update(self, table: str, row_id: int, before: tuple[Any, ...]) -> None:
        self._undo.append(_UndoRecord("update", table, row_id, before))

    def commit(self) -> None:
        """Make the transaction's changes permanent."""
        self._require_active()
        self._undo.clear()
        self.active = False
        self.engine._finish_transaction(self)

    def rollback(self) -> None:
        """Undo every change made inside the transaction, newest first."""
        self._require_active()
        for record in reversed(self._undo):
            table = self.engine.table(record.table)
            if record.kind == "insert":
                if record.row_id in table._rows:
                    table.delete(record.row_id)
            elif record.kind == "delete":
                # Re-insert with the original values (row id is not preserved,
                # which is acceptable for the engine's usage).
                table.insert(record.before)
            elif record.kind == "update":
                table.update(record.row_id, record.before)
        if self._undo:
            # Undoing visibly mutated table state; results cached while the
            # transaction's changes were live must be invalidated.
            self.engine.bump_write_version()
        self._undo.clear()
        self.active = False
        self.engine._finish_transaction(self)

    def _require_active(self) -> None:
        if not self.active:
            raise TransactionError(f"transaction {self.txn_id} is no longer active")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.active:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False


class TransactionManager:
    """Hands out transactions and enforces single-writer semantics."""

    def __init__(self, engine: "RelationalEngine") -> None:
        self._engine = engine
        self._lock = threading.Lock()
        self._next_id = 1
        self._active: Transaction | None = None

    def begin(self) -> Transaction:
        with self._lock:
            if self._active is not None and self._active.active:
                raise TransactionError("another transaction is already active")
            txn = Transaction(self._engine, self._next_id)
            self._next_id += 1
            self._active = txn
            return txn

    @property
    def active_transaction(self) -> Transaction | None:
        if self._active is not None and self._active.active:
            return self._active
        return None

    def finish(self, txn: Transaction) -> None:
        with self._lock:
            if self._active is txn:
                self._active = None
