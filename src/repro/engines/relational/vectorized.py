"""Vectorized (columnar batch) execution for the relational engine.

The classic executor in :mod:`repro.engines.relational.executor` materializes
a :class:`~repro.common.schema.Row` object per tuple and tree-walks
``Expression.evaluate`` per row per predicate — exactly the interpreted
per-tuple overhead the Cambridge report calls out.  This module is the cure:

* **Batches, not rows.**  Operators stream
  :class:`~repro.common.schema.ColumnBatch` objects (bounded column-wise
  slices) straight out of :class:`HeapTable.scan_batches`, so no operator
  ever builds a full ``Relation`` of ``Row`` objects.
* **Compile once, run per batch.**  Predicates, projections, join keys,
  group keys and sort keys are lowered once per plan node with
  :meth:`Expression.compile` into positional-tuple closures — no per-row
  name resolution or isinstance dispatch.
* **numpy kernels where the data allows.**  When a predicate only touches
  numeric columns (dtype mapping shared with the array island), it is
  lowered to a numpy mask kernel with SQL three-valued NULL semantics, so a
  filter over a 100k-row batch is a handful of vector ops.
* **Key-encoded joins and group-bys.**  Join keys and grouping keys are
  factorized once into dense int64 codes (:mod:`repro.common.keycodes`);
  a hash join probes whole batches with ``np.take`` gathers over a CSR
  layout of the build side — including left/right/full outer joins, which
  track a matched-build bitmap and emit null-padded batches — and grouped
  aggregation accumulates count/sum/avg/min/max per group with
  ``np.bincount``/segmented reductions whose accumulation order matches
  the row accumulators bit for bit.

Operators the batch path does not cover (cross and non-equi joins) fall
back to the row executor for that subtree — with the *reason* recorded per
operator (surfaced by EXPLAIN as ``[row: <reason>]`` and counted in the
engine's ``fallback_reasons``) — so every query still answers; the two
modes return identical results, which `tests/test_vectorized_execution.py`
asserts property-style.
"""

from __future__ import annotations

import itertools
import operator
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.common.cancellation import current_token
from repro.common.errors import ExecutionError, SchemaError
from repro.common.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    compile_predicate,
    conjunction,
    evaluate_predicate,
    split_conjuncts,
)
from repro.common.keycodes import (
    IncrementalGroupEncoder,
    JoinKeyTable,
    encode_group_keys,
    partition_codes,
)
from repro.common.parallel import TaskContext, partition_count_for
from repro.common.schema import Column, ColumnBatch, Relation, Row, Schema
from repro.common.schema import object_view as _object_view
from repro.common.types import DataType, infer_type
from repro.engines.array.storage import _NUMPY_DTYPES as _ARRAY_ISLAND_DTYPES
from repro.engines.relational.executor import _DUAL_SCHEMA, Executor
from repro.engines.relational.functions import make_aggregate
from repro.engines.relational.morsel import approx_batch_bytes, partitioned_spill_join
from repro.engines.relational.planner import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    PruneNode,
    ScanNode,
    SortNode,
    SubqueryNode,
)
from repro.observability.profile import observe_stream
from repro.observability.tracing import get_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.relational.engine import RelationalEngine

#: Rows per batch on the vectorized pipeline (bounded memory per operator).
DEFAULT_BATCH_ROWS = 4096

#: numpy dtype per scalar type, shared with the array island's buffers so a
#: relational batch and an array chunk agree on the wire representation.
#: Only types whose Python values pack losslessly into a fixed-width numpy
#: array participate in kernels; TEXT/TIMESTAMP predicates use the compiled
#: row closure instead.
_KERNEL_DTYPES = {
    dtype: _ARRAY_ISLAND_DTYPES[dtype]
    for dtype in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN)
}

_COMPARE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

#: Division and modulo get masked kernels: the by-zero error must fire only
#: for rows that the row path would actually evaluate (AND/OR short-circuits
#: skip rows), so the kernel threads an active-row mask through lowering and
#: checks divisors against it before dividing.
_DIVISION_OPS = ("/", "%")


class _KernelUnsupported(Exception):
    """Raised during lowering when an expression has no vector form."""


def _compile_or_defer(expression: Expression, schema: Schema) -> Callable[[Sequence[Any]], Any]:
    """Compile an expression, deferring compile-time errors to evaluation time.

    The row executor only surfaces a bad column reference when a row is
    actually evaluated (an empty input never errors); eager compilation would
    move that error to plan time.  Deferring keeps the two modes identical.
    """
    try:
        return expression.compile(schema)
    except Exception:  # noqa: BLE001 - re-raised on first evaluation, like the row path
        return lambda values: expression.evaluate(Row(schema, values))


def _compile_predicate_or_defer(
    predicate: Expression | None, schema: Schema
) -> Callable[[Sequence[Any]], bool]:
    try:
        return compile_predicate(predicate, schema)
    except Exception:  # noqa: BLE001
        return lambda values: evaluate_predicate(predicate, Row(schema, values))


def _union_nulls(left: np.ndarray | None, right: np.ndarray | None) -> np.ndarray | None:
    if left is None:
        return right
    if right is None:
        return left
    return left | right


def _as_bool(values: Any) -> np.ndarray:
    return np.asarray(values).astype(np.bool_, copy=False)




def _null_mask_of(column: Sequence[Any]) -> np.ndarray:
    if isinstance(column, np.ndarray):
        return np.equal(column, None)
    return np.fromiter((v is None for v in column), np.bool_, count=len(column))


def _count_nulls(column: Sequence[Any]) -> int:
    if isinstance(column, np.ndarray):
        return int(np.count_nonzero(np.equal(column, None)))
    return column.count(None)


# Each lowered node maps ({column index: (values array, null mask | None)},
# active-row mask) to its own (values, null mask | None) pair.  Values at
# null positions are unspecified; the final mask removes them (SQL: NULL is
# not satisfied).  The active mask marks rows the row executor would
# actually evaluate at this point — AND/OR narrow it for their right
# operands, and the division kernels consult it so ``x / 0`` errors fire
# for exactly the rows that survive short-circuiting.
_KernelNode = Callable[
    [dict[int, tuple[np.ndarray, "np.ndarray | None"]], np.ndarray],
    tuple[Any, "np.ndarray | None"],
]


def _require_float_columns(expr: Expression, schema: Schema) -> None:
    """Reject arithmetic over INTEGER columns: int64 wraps on overflow where
    Python's arbitrary-precision ints do not, which could silently change a
    mask.  float64 arithmetic matches the row path's float semantics exactly.
    """
    for name in expr.referenced_columns():
        if schema.columns[schema.index_of(name)].dtype is not DataType.FLOAT:
            raise _KernelUnsupported(f"arithmetic over non-float column {name!r}")


def _lower(expr: Expression, schema: Schema, columns: dict[int, Any]) -> tuple[_KernelNode, bool]:
    """Lower ``expr``; returns (kernel node, produces-boolean-values).

    The boolean flag matters for AND/OR: the row path short-circuits only on
    the literal ``False`` (``value is False``), so ``0 AND NULL`` is NULL
    there while a truthiness-based kernel would call it False.  Restricting
    AND/OR to operands that produce genuine booleans keeps the two paths
    identical; anything else falls back to the compiled row closure.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if not isinstance(value, (bool, int, float)) or value is None:
            raise _KernelUnsupported(f"literal {value!r}")
        return (lambda env, active: (value, None)), isinstance(value, bool)
    if isinstance(expr, ColumnRef):
        index = schema.index_of(expr.name)
        dtype = schema.columns[index].dtype
        if dtype not in _KERNEL_DTYPES:
            raise _KernelUnsupported(f"column {expr.name!r} has non-numeric type {dtype}")
        columns[index] = _KERNEL_DTYPES[dtype]
        return (lambda env, active: env[index]), dtype is DataType.BOOLEAN
    if isinstance(expr, BinaryOp):
        op = expr.op.lower()
        if op in ("and", "or"):
            left, left_boolean = _lower(expr.left, schema, columns)
            right, right_boolean = _lower(expr.right, schema, columns)
            if not (left_boolean and right_boolean):
                raise _KernelUnsupported("AND/OR over non-boolean operands")
            conjunctive = op == "and"

            def _logic(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
                lv, ln = left(env, active)
                lb = _as_bool(lv)
                # The row path skips the right operand only when the left is
                # the literal False (AND) / True (OR); NULL still evaluates it.
                if conjunctive:
                    evaluates_right = lb if ln is None else (lb | ln)
                else:
                    evaluates_right = ~lb if ln is None else (~lb | ln)
                rv, rn = right(env, active & evaluates_right)
                rb = _as_bool(rv)
                vals = (lb & rb) if conjunctive else (lb | rb)
                if ln is None and rn is None:
                    return vals, None
                if conjunctive:
                    # AND is NULL unless either side is definitely False.
                    decided_l = ~lb if ln is None else (~lb & ~ln)
                    decided_r = ~rb if rn is None else (~rb & ~rn)
                else:
                    # OR is NULL unless either side is definitely True.
                    decided_l = lb if ln is None else (lb & ~ln)
                    decided_r = rb if rn is None else (rb & ~rn)
                nulls = _union_nulls(ln, rn) & ~decided_l & ~decided_r
                return vals, nulls

            return _logic, True
        if op in _COMPARE_OPS or op in _ARITH_OPS:
            fn = _COMPARE_OPS.get(op) or _ARITH_OPS[op]
            if op in _ARITH_OPS:
                _require_float_columns(expr, schema)
            left, _lb = _lower(expr.left, schema, columns)
            right, _rb = _lower(expr.right, schema, columns)

            def _binary(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
                lv, ln = left(env, active)
                rv, rn = right(env, active)
                return fn(lv, rv), _union_nulls(ln, rn)

            return _binary, op in _COMPARE_OPS
        if op in _DIVISION_OPS:
            _require_float_columns(expr, schema)
            left, _lb = _lower(expr.left, schema, columns)
            right, _rb = _lower(expr.right, schema, columns)
            modulo = op == "%"

            def _masked_divide(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
                lv, ln = left(env, active)
                rv, rn = right(env, active)
                zero = np.asarray(rv) == 0
                if zero.ndim == 0:
                    zero = np.full(active.shape, bool(zero), dtype=np.bool_)
                # NULL on either side yields NULL before the division runs
                # (_null_safe), so those rows cannot raise on the row path.
                evaluated = active if ln is None else (active & ~ln)
                if rn is not None:
                    evaluated = evaluated & ~rn
                if bool((zero & evaluated).any()):
                    if modulo:
                        raise ZeroDivisionError("float modulo")
                    raise ExecutionError("division by zero")
                safe_rv = np.where(zero, 1, rv) if zero.any() else rv
                with np.errstate(divide="ignore", invalid="ignore"):
                    vals = np.mod(lv, safe_rv) if modulo else np.true_divide(lv, safe_rv)
                return vals, _union_nulls(ln, rn)

            return _masked_divide, False
        raise _KernelUnsupported(f"operator {expr.op!r}")
    if isinstance(expr, UnaryOp):
        op = expr.op.lower()
        if op == "not":
            operand, _ob = _lower(expr.operand, schema, columns)

            def _not(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
                vals, nulls = operand(env, active)
                return ~_as_bool(vals), nulls

            return _not, True
        if op == "-":
            _require_float_columns(expr, schema)
            operand, _ob = _lower(expr.operand, schema, columns)

            def _neg(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
                vals, nulls = operand(env, active)
                return operator.neg(vals), nulls

            return _neg, False
        raise _KernelUnsupported(f"unary operator {expr.op!r}")
    if isinstance(expr, IsNull):
        operand, _ob = _lower(expr.operand, schema, columns)
        negated = expr.negated

        def _is_null(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
            vals, nulls = operand(env, active)
            shaped = np.asarray(vals)
            if shaped.ndim == 0:
                raise _KernelUnsupported("IS NULL over a scalar")
            base = nulls if nulls is not None else np.zeros(shaped.shape, dtype=np.bool_)
            return (~base if negated else base), None

        return _is_null, True
    if isinstance(expr, InList):
        if any(not isinstance(v, (bool, int, float)) or v is None for v in expr.values):
            raise _KernelUnsupported("non-numeric IN list")
        operand, _ob = _lower(expr.operand, schema, columns)
        members = list(expr.values)
        negated = expr.negated

        def _in(env: dict, active: np.ndarray) -> tuple[Any, np.ndarray | None]:
            vals, nulls = operand(env, active)
            result = np.isin(vals, members)
            return (~result if negated else result), nulls

        return _in, True
    raise _KernelUnsupported(type(expr).__name__)


class FilterKernel:
    """A predicate lowered to a numpy mask function over a ColumnBatch."""

    def __init__(self, fn: _KernelNode, columns: dict[int, Any]) -> None:
        self._fn = fn
        self._columns = tuple(columns.items())

    def __call__(self, batch: ColumnBatch) -> np.ndarray:
        length = len(batch)
        env: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        for index, dtype in self._columns:
            column = batch.columns[index]
            if None in column:
                nulls = np.fromiter((v is None for v in column), np.bool_, count=length)
                vals = np.asarray([0 if v is None else v for v in column], dtype=dtype)
            else:
                nulls = None
                vals = np.asarray(column, dtype=dtype)
            env[index] = (vals, nulls)
        vals, nulls = self._fn(env, np.ones(length, dtype=np.bool_))
        mask = _as_bool(vals)
        if mask.ndim == 0:
            mask = np.full(length, bool(mask), dtype=np.bool_)
        if nulls is not None:
            mask = mask & ~nulls
        return mask


def compile_filter_kernel(predicate: Expression, schema: Schema) -> FilterKernel | None:
    """Lower a predicate to a numpy kernel, or None when it has no vector form."""
    columns: dict[int, Any] = {}
    try:
        fn, _boolean = _lower(predicate, schema, columns)
    except _KernelUnsupported:
        return None
    except Exception:  # noqa: BLE001 - malformed predicates fail on the row path
        return None
    if not columns:
        return None  # constant predicate: nothing to vectorize
    return FilterKernel(fn, columns)


class _PredicateRunner:
    """Applies one predicate to batches: numpy kernel first, row closure fallback."""

    def __init__(self, predicate: Expression, schema: Schema) -> None:
        self.kernel = compile_filter_kernel(predicate, schema)
        self._row_predicate = _compile_predicate_or_defer(predicate, schema)

    def __call__(self, batch: ColumnBatch) -> ColumnBatch:
        if self.kernel is not None:
            try:
                mask = self.kernel(batch)
            except (_KernelUnsupported, TypeError, OverflowError):
                mask = None  # fall back; the row path reproduces exact semantics
            if mask is not None:
                if mask.all():
                    return batch
                return batch.compress(mask)
        fn = self._row_predicate
        flags = [fn(values) for values in batch.value_rows()]
        if all(flags):
            return batch
        return batch.compress(flags)


_FAST_AGGREGATES = ("count", "sum", "avg", "min", "max")


class BatchExecutor:
    """Executes logical plans as a streaming columnar batch pipeline.

    Produces results identical to :class:`Executor` (the row-at-a-time
    volcano executor), which stays available both as the ``row`` execution
    mode and as the fallback for plan shapes the batch pipeline does not
    cover yet.
    """

    def __init__(
        self,
        engine: "RelationalEngine",
        batch_rows: int = DEFAULT_BATCH_ROWS,
        row_executor: Executor | None = None,
    ) -> None:
        self._engine = engine
        self._batch_rows = batch_rows
        self._row_executor = row_executor if row_executor is not None else Executor(engine)
        #: Installed by ``RelationalEngine.explain(analyze=True)`` for the
        #: duration of one query; None keeps the pipeline unobserved.
        self.profiler = None

    # -------------------------------------------------------------- parallelism
    def _task_context(self) -> TaskContext:
        """Per-query task context from the engine (serial when absent)."""
        factory = getattr(self._engine, "task_context", None)
        if factory is not None:
            return factory()
        return TaskContext(1)

    def _record_morsel(self) -> None:
        record = getattr(self._engine, "record_morsels", None)
        if record is not None:
            record(1)

    def _estimated_build_bytes(self, node: JoinNode) -> int | None:
        """Statistics-based build-side size prediction (None without stats)."""
        estimate = getattr(self._engine, "estimated_plan_bytes", None)
        if estimate is None:
            return None
        build_child = (
            node.left
            if node.join_type == "inner" and node.build_side != "right"
            else node.right
        )
        return estimate(build_child)

    # ------------------------------------------------------------------ public
    def execute(self, plan: LogicalPlan) -> Relation:
        schema, batches = self.stream(plan)
        relation = Relation(schema)
        rows = relation.rows
        for batch in batches:
            rows.extend(Row(schema, values) for values in batch.value_rows())
        return relation

    def stream(self, plan: LogicalPlan) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Output schema plus a bounded-batch iterator for a plan subtree.

        When a :class:`~repro.observability.profile.PlanProfiler` is
        installed (EXPLAIN ANALYZE) or the global tracer is enabled, the
        iterator is wrapped to account per-operator rows/batches/time;
        otherwise the pipeline is returned untouched.
        """
        schema, batches = self._stream_impl(plan)
        profiler = self.profiler
        tracer = get_tracer()
        if profiler is not None or tracer.enabled:
            batches = observe_stream(plan, batches, profiler, tracer)
        return schema, batches

    def _stream_impl(self, plan: LogicalPlan) -> tuple[Schema, Iterator[ColumnBatch]]:
        if isinstance(plan, ScanNode):
            return self._scan_stream(plan)
        if isinstance(plan, IndexScanNode):
            return self._index_scan_stream(plan)
        if isinstance(plan, SubqueryNode):
            return self._subquery_stream(plan)
        if isinstance(plan, FilterNode):
            return self._filter_stream(plan)
        if isinstance(plan, JoinNode):
            reason = self._join_fallback_reason(plan)
            if reason is None:
                return self._join_stream(plan)
            return self._fallback_stream(plan, reason)
        if isinstance(plan, AggregateNode):
            return self._aggregate_stream(plan)
        if isinstance(plan, PruneNode):
            return self._prune_stream(plan)
        if isinstance(plan, ProjectNode):
            return self._project_stream(plan)
        if isinstance(plan, SortNode):
            return self._sort_stream(plan)
        if isinstance(plan, LimitNode):
            return self._limit_stream(plan)
        return self._fallback_stream(plan, f"unsupported operator: {type(plan).__name__}")

    @staticmethod
    def vectorizes(node: LogicalPlan) -> bool:
        """Whether a plan node runs on the batch pipeline (used by EXPLAIN)."""
        return BatchExecutor.fallback_reason(node) is None

    @staticmethod
    def fallback_reason(node: LogicalPlan) -> str | None:
        """Why a plan node falls back to the row executor, or None if it
        vectorizes.  EXPLAIN renders this as ``[row: <reason>]`` and the
        engine tallies it per reason in ``fallback_reasons``."""
        if isinstance(node, JoinNode):
            return BatchExecutor._join_fallback_reason(node)
        if isinstance(
            node,
            (
                ScanNode,
                IndexScanNode,
                SubqueryNode,
                FilterNode,
                ProjectNode,
                PruneNode,
                AggregateNode,
                SortNode,
                LimitNode,
            ),
        ):
            return None
        return f"unsupported operator: {type(node).__name__}"

    @staticmethod
    def _join_fallback_reason(node: JoinNode) -> str | None:
        """Static (schema-free) classification mirroring the runtime check.

        Without the input schemas a conjunct's side assignment cannot be
        fully resolved; a trivially self-referential equality (``a.x = a.x``)
        is rejected here, and the runtime re-checks against real schemas —
        an unresolvable key still falls back, recorded as
        ``no equi-join keys resolved``.
        """
        if node.join_type == "cross" or node.condition is None:
            return "cross join"
        if node.join_type not in ("inner", "left", "right", "full"):
            return f"unsupported join type: {node.join_type}"
        if node.strategy != "hash":
            return "non-equi join"
        for conjunct in split_conjuncts(node.condition):
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op in ("=", "==")
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
                and conjunct.left.name.lower() != conjunct.right.name.lower()
            ):
                return None
        return "non-equi join"

    # ---------------------------------------------------------------- fallback
    def _fallback_stream(
        self, plan: LogicalPlan, reason: str = "unsupported plan shape"
    ) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Row-executor escape hatch for subtrees without a batch form."""
        record = getattr(self._engine, "record_fallback", None)
        if record is not None:
            record(reason)
        relation = self._row_executor.execute(plan)
        schema = relation.schema

        def generate() -> Iterator[ColumnBatch]:
            values = [row.values for row in relation.rows]
            for start in range(0, len(values), self._batch_rows):
                yield ColumnBatch.from_value_rows(schema, values[start : start + self._batch_rows])

        return schema, generate()

    # ------------------------------------------------------------------- scans
    def _scan_stream(self, node: ScanNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        if node.table == "__dual__":
            return _DUAL_SCHEMA, iter([ColumnBatch.from_value_rows(_DUAL_SCHEMA, [(0,)])])
        table = self._engine.table(node.table)
        schema = Executor._qualified_schema(table.schema, node.alias or node.table)
        predicate = None if node.predicate is None else _PredicateRunner(node.predicate, schema)

        def generate() -> Iterator[ColumnBatch]:
            token = current_token()
            for values in table.scan_batches(self._batch_rows):
                if token is not None:
                    # Cooperative cancellation: a timed-out or abandoned
                    # query stops at the next batch, not at end-of-scan.
                    token.check()
                batch = ColumnBatch.from_value_rows(schema, values)
                if predicate is not None:
                    batch = predicate(batch)
                if len(batch):
                    self._record_morsel()
                    yield batch

        return schema, generate()

    def _index_scan_stream(self, node: IndexScanNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        table = self._engine.table(node.table)
        schema = Executor._qualified_schema(table.schema, node.alias or node.table)
        predicate = None if node.residual is None else _PredicateRunner(node.residual, schema)

        def generate() -> Iterator[ColumnBatch]:
            if node.equals is not None:
                matches = table.index_lookup(node.index_name, node.equals)
            else:
                matches = table.index_range(
                    node.index_name,
                    low=node.low,
                    high=node.high,
                    include_low=node.include_low,
                    include_high=node.include_high,
                )
            token = current_token()
            pending: list[tuple[Any, ...]] = []
            for _row_id, values in matches:
                pending.append(values)
                if len(pending) >= self._batch_rows:
                    if token is not None:
                        token.check()
                    batch = ColumnBatch.from_value_rows(schema, pending)
                    pending = []
                    if predicate is not None:
                        batch = predicate(batch)
                    if len(batch):
                        self._record_morsel()
                        yield batch
            if pending:
                batch = ColumnBatch.from_value_rows(schema, pending)
                if predicate is not None:
                    batch = predicate(batch)
                if len(batch):
                    self._record_morsel()
                    yield batch

        return schema, generate()

    def _subquery_stream(self, node: SubqueryNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        inner_schema, batches = self.stream(node.plan)
        schema = Executor._qualified_schema(inner_schema, node.alias)
        return schema, (batch.with_schema(schema) for batch in batches)

    # --------------------------------------------------------------- operators
    def _filter_stream(self, node: FilterNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        predicate = _PredicateRunner(node.predicate, schema)

        def generate() -> Iterator[ColumnBatch]:
            for batch in batches:
                filtered = predicate(batch)
                if len(filtered):
                    yield filtered

        return schema, generate()

    def _join_stream(self, node: JoinNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Key-encoded batched hash join (inner and left/right/full outer).

        The build side is factorized once into dense int64 codes
        (:class:`~repro.common.keycodes.JoinKeyTable`) and laid out CSR-style
        (rows grouped by code, original order preserved); each probe batch
        then resolves to build rows with ``searchsorted``/``np.repeat``
        index arithmetic and two ``np.take`` gathers — no per-row tuples.
        Only residual (non-equi) conjuncts, if any, run per candidate.

        Outer joins track a matched-build bitmap: unmatched probe rows are
        null-padded inline (left/full, preserving the row executor's
        left-major order) and unmatched build rows are emitted as trailing
        null-padded batches (right/full).
        """
        left_schema, left_batches = self.stream(node.left)
        right_schema, right_batches = self.stream(node.right)
        keys, residual_conjuncts = Executor.split_join_condition(
            node.condition, left_schema, right_schema
        )
        if not keys:
            return self._fallback_stream(node, "no equi-join keys resolved")
        joined_schema = left_schema.concat(right_schema)
        left_indices = [left_schema.index_of(pair[0]) for pair in keys]
        right_indices = [right_schema.index_of(pair[1]) for pair in keys]
        residual = (
            _compile_predicate_or_defer(conjunction(residual_conjuncts), joined_schema)
            if residual_conjuncts
            else None
        )
        # Outer joins probe the left input (left-major output order); inner
        # joins honor the planner's build-side hint.
        build_on_left = node.join_type == "inner" and node.build_side != "right"
        if build_on_left:
            build_schema, build_batches, build_key_idx = left_schema, left_batches, left_indices
            probe_schema, probe_batches, probe_key_idx = right_schema, right_batches, right_indices
        else:
            build_schema, build_batches, build_key_idx = right_schema, right_batches, right_indices
            probe_schema, probe_batches, probe_key_idx = left_schema, left_batches, left_indices
        pad_probe = node.join_type in ("left", "full")
        track_build = node.join_type in ("right", "full")
        batch_rows = self._batch_rows

        def generate() -> Iterator[ColumnBatch]:
            engine = self._engine
            budget = getattr(engine, "join_memory_budget", None)
            # ---------------------------------------------- memory budget gate
            # Stream the build side watching the budget: a statistics-based
            # prediction or a measured overrun hands the whole join (prefix
            # batches already read + the rest of both streams) to the
            # partitioned spill join, which never pins the full build side.
            parts: list[ColumnBatch] = []
            build_iter = iter(build_batches)
            over_budget = False
            approx = 0
            if budget is not None:
                predicted = self._estimated_build_bytes(node)
                over_budget = predicted is not None and predicted > budget
                if not over_budget:
                    for part in build_iter:
                        parts.append(part)
                        approx += approx_batch_bytes(part)
                        if approx > budget:
                            over_budget = True
                            break
            else:
                parts = list(build_iter)
                approx = sum(approx_batch_bytes(part) for part in parts)
            if over_budget:
                spill_partitions = getattr(engine, "join_spill_partitions", 8)
                yield from partitioned_spill_join(
                    joined_schema=joined_schema,
                    build_schema=build_schema,
                    probe_schema=probe_schema,
                    build_batches=itertools.chain(parts, build_iter),
                    probe_batches=probe_batches,
                    build_key_idx=build_key_idx,
                    probe_key_idx=probe_key_idx,
                    residual=residual,
                    build_on_left=build_on_left,
                    pad_probe=pad_probe,
                    track_build=track_build,
                    batch_rows=batch_rows,
                    budget=budget,
                    partitions=spill_partitions,
                    engine=engine,
                )
                return
            record_bytes = getattr(engine, "record_build_bytes", None)
            if record_bytes is not None:
                record_bytes(approx)
            build_block = ColumnBatch.concat(build_schema, parts)
            table = JoinKeyTable(
                [build_block.columns[i] for i in build_key_idx],
                [build_schema.columns[i].dtype for i in build_key_idx],
                [probe_schema.columns[i].dtype for i in probe_key_idx],
            )
            build_codes = table.build_codes
            group_count = table.group_count
            ctx = self._task_context()
            # CSR layout: build row ids grouped by code, original order kept
            # within each code so match order equals build insertion order.
            if ctx.workers > 1 and group_count and len(build_block) >= 2048:
                # Parallel build: each radix partition owns a disjoint set of
                # codes, hence disjoint slices of the shared CSR arrays —
                # scatter targets depend only on codes, never on scheduling.
                valid = build_codes >= 0
                counts = np.bincount(
                    build_codes[valid], minlength=group_count
                ).astype(np.int64)
                starts = np.zeros(group_count, dtype=np.int64)
                if group_count > 1:
                    np.cumsum(counts[:-1], out=starts[1:])
                sorted_rows = np.empty(int(counts.sum()), dtype=np.int64)
                part_rows = partition_codes(
                    build_codes, partition_count_for(ctx.workers)
                )

                def build_partition(rows_p: np.ndarray) -> None:
                    if not rows_p.size:
                        return
                    codes_p = build_codes[rows_p]
                    order_p = np.argsort(codes_p, kind="stable")
                    cs = codes_p[order_p]
                    seg_new = np.concatenate(([True], cs[1:] != cs[:-1]))
                    seg_begin = np.flatnonzero(seg_new)
                    seg_ids = np.cumsum(seg_new) - 1
                    offsets = (
                        np.arange(cs.size, dtype=np.int64) - seg_begin[seg_ids]
                    )
                    sorted_rows[starts[cs] + offsets] = rows_p[order_p]

                ctx.run_all(
                    [
                        (lambda rows=rows: build_partition(rows))
                        for rows in part_rows
                    ]
                )
            else:
                order = np.argsort(build_codes, kind="stable")
                sorted_codes = build_codes[order]
                first_valid = int(np.searchsorted(sorted_codes, 0))
                sorted_rows = order[first_valid:]
                sorted_codes = sorted_codes[first_valid:]
                starts = np.searchsorted(sorted_codes, np.arange(group_count))
                counts = np.bincount(
                    sorted_codes, minlength=group_count
                ).astype(np.int64)
            build_obj = [_object_view(col) for col in build_block.columns]
            build_matched = (
                np.zeros(len(build_block), dtype=np.bool_) if track_build else None
            )

            def probe_one(
                batch: ColumnBatch,
            ) -> tuple[np.ndarray | None, ColumnBatch | None]:
                length = len(batch)
                pcodes = table.probe([batch.columns[i] for i in probe_key_idx])
                hits = np.flatnonzero(pcodes >= 0)
                if hits.size:
                    codes_h = pcodes[hits]
                    cnts = counts[codes_h]
                    total = int(cnts.sum())
                else:
                    cnts = np.zeros(0, dtype=np.int64)
                    total = 0
                if total:
                    probe_rep = np.repeat(hits, cnts)
                    seg_start = np.repeat(starts[codes_h], cnts)
                    cum = np.cumsum(cnts)
                    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - cnts, cnts)
                    build_rows = sorted_rows[seg_start + offsets]
                else:
                    probe_rep = np.zeros(0, dtype=np.int64)
                    build_rows = np.zeros(0, dtype=np.int64)
                probe_obj: list[np.ndarray] | None = None
                cand_build: list[np.ndarray] | None = None
                cand_probe: list[np.ndarray] | None = None
                if residual is not None and total:
                    probe_obj = [_object_view(col) for col in batch.columns]
                    cand_build = [np.take(col, build_rows) for col in build_obj]
                    cand_probe = [np.take(col, probe_rep) for col in probe_obj]
                    ordered = (
                        cand_build + cand_probe if build_on_left else cand_probe + cand_build
                    )
                    keep = np.fromiter(
                        (residual(values) for values in zip(*(c.tolist() for c in ordered))),
                        np.bool_,
                        count=total,
                    )
                    probe_rep = probe_rep[keep]
                    build_rows = build_rows[keep]
                    cand_build = [col[keep] for col in cand_build]
                    cand_probe = [col[keep] for col in cand_probe]
                matched_rows = build_rows if track_build else None
                pads = (
                    np.flatnonzero(np.bincount(probe_rep, minlength=length) == 0)
                    if pad_probe
                    else np.zeros(0, dtype=np.int64)
                )
                out_len = int(probe_rep.size + pads.size)
                if not out_len:
                    return matched_rows, None
                if cand_build is not None:
                    # Residual path: candidate columns are already gathered
                    # and keep-compressed — merge in the pads (if any) with
                    # one concatenate + permutation instead of re-gathering.
                    if pads.size:
                        merge_order = np.argsort(
                            np.concatenate([probe_rep, pads]), kind="stable"
                        )
                        pad_fill = np.full(pads.size, None, dtype=object)
                        probe_cols = [
                            np.concatenate([kept, np.take(view, pads)])[merge_order]
                            for kept, view in zip(cand_probe, probe_obj)
                        ]
                        build_cols = [
                            np.concatenate([kept, pad_fill])[merge_order]
                            for kept in cand_build
                        ]
                    else:
                        probe_cols, build_cols = cand_probe, cand_build
                else:
                    if pads.size:
                        merge_keys = np.concatenate([probe_rep, pads])
                        merge_order = np.argsort(merge_keys, kind="stable")
                        seq_probe = merge_keys[merge_order]
                        seq_build = np.concatenate(
                            [build_rows, np.zeros(pads.size, dtype=np.int64)]
                        )[merge_order]
                        is_pad = np.concatenate(
                            [
                                np.zeros(probe_rep.size, dtype=np.bool_),
                                np.ones(pads.size, dtype=np.bool_),
                            ]
                        )[merge_order]
                    else:
                        seq_probe, seq_build, is_pad = probe_rep, build_rows, None
                    if probe_obj is None:
                        probe_obj = [_object_view(col) for col in batch.columns]
                    probe_cols = [np.take(col, seq_probe) for col in probe_obj]
                    if len(build_block):
                        build_cols = [np.take(col, seq_build) for col in build_obj]
                        if is_pad is not None:
                            for col in build_cols:
                                col[is_pad] = None
                    else:
                        # Empty build side: every emitted row is a pad (only
                        # left/full outer reach here) — nothing to gather.
                        build_cols = [
                            np.full(out_len, None, dtype=object) for _ in build_obj
                        ]
                ordered_cols = (
                    build_cols + probe_cols if build_on_left else probe_cols + build_cols
                )
                return matched_rows, ColumnBatch(
                    joined_schema, [col.tolist() for col in ordered_cols], out_len
                )

            probe_task = probe_one
            tracer = get_tracer()
            if tracer.enabled:

                def probe_task(batch: ColumnBatch):
                    with tracer.span(
                        "join.probe_morsel", kind="operator", rows=len(batch)
                    ):
                        return probe_one(batch)

            try:
                # Morsel-wise probe: the CSR table is read-only after build,
                # so probe batches fan out to workers; results come back in
                # input order (matched-bitmap updates applied here, in
                # order) — output is byte-identical to the serial loop.
                for matched_rows, out in ctx.map_ordered(probe_task, probe_batches):
                    if (
                        build_matched is not None
                        and matched_rows is not None
                        and matched_rows.size
                    ):
                        build_matched[matched_rows] = True
                    if out is not None:
                        yield out
            finally:
                ctx.close()
            if build_matched is not None:
                unmatched = np.flatnonzero(~build_matched)
                if unmatched.size:
                    # One gather for all unmatched build rows, then cheap
                    # list slices per emitted batch.
                    padded = build_block.gather(unmatched)
                    for start in range(0, unmatched.size, batch_rows):
                        size = min(batch_rows, int(unmatched.size) - start)
                        build_cols = [
                            column[start : start + size] for column in padded.columns
                        ]
                        probe_pad = ColumnBatch.nulls(probe_schema, size).columns
                        yield ColumnBatch(
                            joined_schema, probe_pad + build_cols, size
                        )

        return joined_schema, generate()

    def _prune_stream(self, node: PruneNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Optimizer-inserted narrowing: pass through only the kept columns.

        Columns are shared by reference, so this costs one list pick per
        batch — the savings materialize in the operators above (the hash
        join gathers and the group-by representatives touch fewer columns).
        """
        child_schema, batches = self.stream(node.child)
        indices = [child_schema.index_of(name) for name in node.columns]
        schema = child_schema.project(node.columns)

        def generate() -> Iterator[ColumnBatch]:
            for batch in batches:
                yield ColumnBatch(
                    schema, [batch.columns[i] for i in indices], len(batch)
                )

        return schema, generate()

    def _project_stream(self, node: ProjectNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        child_schema, batches = self.stream(node.child)
        first = next(batches, None)
        first_values = next(first.value_rows(), None) if first is not None else None
        columns: list[Column] = []
        for item in node.items:
            if item.star:
                columns.extend(child_schema.columns)
            else:
                dtype = self._expression_type(item.expression, child_schema, first_values)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(Executor._dedupe(columns))
        compiled: list[tuple[bool, Any]] = []  # (star, fn | column index)
        for item in node.items:
            if item.star:
                compiled.append((True, None))
            elif isinstance(item.expression, ColumnRef) and child_schema.has_column(item.expression.name):
                compiled.append((False, child_schema.index_of(item.expression.name)))
            else:
                compiled.append((False, _compile_or_defer(item.expression, child_schema)))
        all_batches = batches if first is None else itertools.chain([first], batches)

        def generate() -> Iterator[ColumnBatch]:
            seen: set[tuple] = set()
            for batch in all_batches:
                if node.distinct:
                    out_rows: list[tuple[Any, ...]] = []
                    for values in batch.value_rows():
                        out: list[Any] = []
                        for star, spec in compiled:
                            if star:
                                out.extend(values)
                            elif isinstance(spec, int):
                                out.append(values[spec])
                            else:
                                out.append(spec(values))
                        candidate = tuple(out)
                        if candidate in seen:
                            continue
                        seen.add(candidate)
                        out_rows.append(candidate)
                    if out_rows:
                        yield ColumnBatch.from_value_rows(schema, out_rows)
                    continue
                out_columns: list[list[Any]] = []
                computed: list[tuple[int, Any]] = []
                for star, spec in compiled:
                    if star:
                        out_columns.extend(batch.columns)
                    elif isinstance(spec, int):
                        out_columns.append(batch.columns[spec])
                    else:
                        slot: list[Any] = []
                        computed.append((len(out_columns), spec))
                        out_columns.append(slot)
                if computed:
                    for values in batch.value_rows():
                        for slot_index, fn in computed:
                            out_columns[slot_index].append(fn(values))
                yield ColumnBatch(schema, out_columns, len(batch))

        return schema, generate()

    def _aggregate_stream(self, node: AggregateNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        child_schema, batches = self.stream(node.child)
        having_items = getattr(node, "having_items", [])
        agg_items = [(i, item) for i, item in enumerate(node.items) if item.aggregate]
        # HAVING-only aggregates get accumulators past the SELECT items'
        # index range; their values feed the predicate, never the output.
        extra_offset = len(node.items)
        agg_items += [(extra_offset + j, item) for j, item in enumerate(having_items)]
        fast = self._fast_aggregate_plan(node, child_schema, agg_items)
        first_values: tuple[Any, ...] | None = None
        rep_cols: list[int] | None = None
        if fast is not None:
            results, saw_rows, first_values = self._run_fast_aggregates(batches, fast)
            groups_out: list[tuple[tuple, dict[int, Any], tuple | None]] = []
            if saw_rows or not node.group_by:
                groups_out.append(((), results, first_values))
        else:
            grouped_plan = self._vector_group_plan(node, child_schema, agg_items)
            if grouped_plan is not None:
                rep_cols = self._representative_columns(node, child_schema)
                if rep_cols is not None:
                    prune = getattr(self._engine, "record_representative_prune", None)
                    if prune is not None:
                        prune(len(child_schema.columns) - len(rep_cols))
            if grouped_plan is not None and getattr(
                self._engine, "streaming_groupby", True
            ):
                groups_out, first_values = self._run_streaming_grouped(
                    node, child_schema, batches, grouped_plan, agg_items, rep_cols
                )
            elif grouped_plan is not None:
                # Legacy block path (``engine.streaming_groupby = False``):
                # materialize the whole input as one columnar block.  Kept as
                # the baseline the streaming benchmark measures against.
                block = ColumnBatch.concat(child_schema, list(batches))
                try:
                    groups_out, first_values = self._run_vector_grouped(
                        node, child_schema, block, grouped_plan, rep_cols
                    )
                    self._record_groupby("block", len(block))
                except _KernelUnsupported:
                    # e.g. int64 overflow risk in a SUM: replay the
                    # materialized block through the per-row accumulators.
                    groups_out, first_values = self._run_grouped_aggregates(
                        node, child_schema, iter([block]), agg_items, rep_cols
                    )
                    self._record_groupby("block_degraded", len(block))
            else:
                self._record_groupby("row", 0)
                groups_out, first_values = self._run_grouped_aggregates(
                    node, child_schema, batches, agg_items
                )
        # Output schema: mirrors the row executor exactly.
        columns = []
        for item in node.items:
            if item.aggregate:
                dtype = DataType.INTEGER if item.aggregate == "count" else DataType.FLOAT
                columns.append(Column(item.output_name, dtype))
            else:
                dtype = self._expression_type(item.expression, child_schema, first_values)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(Executor._dedupe(columns))
        having_schema = Executor._having_schema(schema, node.items, having_items)
        having = (
            _compile_predicate_or_defer(node.having, having_schema)
            if node.having is not None
            else None
        )
        rep_schema = (
            child_schema
            if rep_cols is None
            else Schema([child_schema.columns[i] for i in rep_cols])
        )
        item_fns: dict[int, Any] = {}
        for i, item in enumerate(node.items):
            if not item.aggregate:
                item_fns[i] = _compile_or_defer(item.expression, rep_schema)

        def generate() -> Iterator[ColumnBatch]:
            out_rows: list[tuple[Any, ...]] = []
            for _key, accumulators, representative in groups_out:
                values: list[Any] = []
                for i, item in enumerate(node.items):
                    if item.aggregate:
                        result = accumulators[i]
                        values.append(result.result() if hasattr(result, "result") else result)
                    elif representative is None:
                        values.append(None)
                    else:
                        values.append(item_fns[i](representative))
                out = tuple(values)
                if having is not None:
                    extra: list[Any] = []
                    for j in range(len(having_items)):
                        result = accumulators[extra_offset + j]
                        extra.append(
                            result.result() if hasattr(result, "result") else result
                        )
                    if not having(out + out + tuple(extra)):
                        continue
                out_rows.append(out)
            if out_rows:
                yield ColumnBatch.from_value_rows(schema, out_rows)

        return schema, generate()

    @staticmethod
    def _representative_columns(
        node: AggregateNode, child_schema: Schema
    ) -> list[int] | None:
        """Column indices a group representative must retain, or None for all.

        A grouped aggregation keeps one representative row per group only to
        evaluate non-aggregate SELECT items; when those items (plus the
        grouping keys) reference an unambiguous subset of the child columns,
        storing just that subset bounds per-group memory by the referenced
        width instead of the full row width.  Returns None (keep full rows)
        when any reference fails to resolve — ambiguity and unknown-column
        errors must surface exactly as they would on the full path.
        """
        needed: set[int] = set()
        try:
            for expr in node.group_by:
                for ref in expr.referenced_columns():
                    needed.add(child_schema.index_of(ref))
            for item in node.items:
                if item.aggregate:
                    continue
                if item.star or item.expression is None:
                    return None
                for ref in item.expression.referenced_columns():
                    needed.add(child_schema.index_of(ref))
        except SchemaError:
            return None
        cols = sorted(needed)
        if len(cols) >= len(child_schema.columns):
            return None
        return cols

    def _fast_aggregate_plan(
        self, node: AggregateNode, child_schema: Schema, agg_items: list
    ) -> list[tuple[int, str, int | None]] | None:
        """Column-wise plan [(item index, aggregate, column index | None)] or None.

        Applies only to global (ungrouped) aggregates whose arguments are bare
        column references: those reduce per batch with C-speed builtins whose
        accumulation order matches the row accumulators value for value.
        """
        if node.group_by or node.having is not None:
            return None
        if any(not item.aggregate for item in node.items):
            # Non-aggregate outputs need a representative row; the general
            # path tracks one, the fast path does not.
            return None
        plan: list[tuple[int, str, int | None]] = []
        for i, item in agg_items:
            name = item.aggregate
            if name not in _FAST_AGGREGATES or item.distinct:
                return None
            if item.expression is None:
                plan.append((i, "count_star", None))
            elif isinstance(item.expression, ColumnRef) and child_schema.has_column(
                item.expression.name
            ):
                index = child_schema.index_of(item.expression.name)
                if name in ("sum", "avg") and child_schema.columns[index].dtype not in _KERNEL_DTYPES:
                    # sum(values, 0) over e.g. TEXT would raise where the row
                    # accumulator (seeded from the first value) does not.
                    return None
                plan.append((i, name, index))
            else:
                return None
        return plan

    @staticmethod
    def _run_fast_aggregates(
        batches: Iterator[ColumnBatch], plan: list[tuple[int, str, int | None]]
    ) -> tuple[dict[int, Any], bool, tuple[Any, ...] | None]:
        counts = {i: 0 for i, _name, _col in plan}
        totals: dict[int, Any] = {i: None for i, _name, _col in plan}
        saw_rows = False
        first_values: tuple[Any, ...] | None = None
        for batch in batches:
            if len(batch) == 0:
                continue
            if not saw_rows:
                first_values = next(batch.value_rows())
                saw_rows = True
            for i, name, col_index in plan:
                if name == "count_star":
                    counts[i] += len(batch)
                    continue
                column = batch.columns[col_index]
                if name == "count":
                    counts[i] += len(column) - _count_nulls(column)
                    continue
                present = [v for v in column if v is not None]
                if not present:
                    continue
                counts[i] += len(present)
                if name in ("sum", "avg"):
                    # sum(values, start) adds sequentially, reproducing the
                    # row accumulator's += order bit for bit.
                    start = totals[i] if totals[i] is not None else (0.0 if name == "avg" else 0)
                    totals[i] = sum(present, start)
                elif name == "min":
                    low = min(present)
                    totals[i] = low if totals[i] is None or low < totals[i] else totals[i]
                elif name == "max":
                    high = max(present)
                    totals[i] = high if totals[i] is None or high > totals[i] else totals[i]
        results: dict[int, Any] = {}
        for i, name, _col in plan:
            if name in ("count_star", "count"):
                results[i] = counts[i]
            elif name == "avg":
                results[i] = None if counts[i] == 0 else totals[i] / counts[i]
            elif name == "sum":
                results[i] = None if counts[i] == 0 else totals[i]
            else:
                results[i] = totals[i]
        return results, saw_rows, first_values

    @staticmethod
    def _reject_nan(column: Sequence[Any], reason: str) -> None:
        try:
            values = np.fromiter(
                (0.0 if v is None else v for v in column), np.float64, count=len(column)
            )
        except (TypeError, ValueError) as exc:
            raise _KernelUnsupported(str(exc)) from exc
        if bool(np.isnan(values).any()):
            raise _KernelUnsupported(reason)

    @staticmethod
    def _vector_group_plan(
        node: AggregateNode, child_schema: Schema, agg_items: list
    ) -> list[tuple[int, str, int | None]] | None:
        """Plan for the key-encoded numpy group-by, or None to run per-row.

        Requirements: grouping keys are bare column references (any dtype —
        TEXT keys use the dict-based encoder), and every aggregate is a
        non-distinct count/sum/avg/min/max over a bare column (or ``*``);
        sum/avg/min/max additionally need a fixed-width numeric column so
        the segmented numpy reductions apply.
        """
        if not node.group_by:
            return None
        for expr in node.group_by:
            if not (isinstance(expr, ColumnRef) and child_schema.has_column(expr.name)):
                return None
        plan: list[tuple[int, str, int | None]] = []
        for i, item in agg_items:
            name = item.aggregate
            if name not in _FAST_AGGREGATES or item.distinct:
                return None
            if item.expression is None:
                plan.append((i, "count_star", None))
                continue
            if not (
                isinstance(item.expression, ColumnRef)
                and child_schema.has_column(item.expression.name)
            ):
                return None
            index = child_schema.index_of(item.expression.name)
            if name != "count" and child_schema.columns[index].dtype not in _KERNEL_DTYPES:
                return None
            plan.append((i, name, index))
        return plan

    def _run_vector_grouped(
        self,
        node: AggregateNode,
        child_schema: Schema,
        block: ColumnBatch,
        plan: list[tuple[int, str, int | None]],
        rep_cols: list[int] | None = None,
    ) -> tuple[list[tuple[tuple, dict[int, Any], tuple | None]], tuple[Any, ...] | None]:
        """Key-encoded group-by: one factorization, then segmented reductions.

        Group keys become dense first-appearance int64 codes
        (:func:`~repro.common.keycodes.encode_group_keys`), so emitting
        groups in code order reproduces the row executor's dict-insertion
        order.  Accumulation uses ``np.bincount`` (a strictly sequential
        C loop, matching the row accumulators' per-group addition order bit
        for bit — unlike ``np.sum``'s pairwise summation) and
        ``np.minimum/maximum.reduceat`` over stable-sorted segments.
        """
        n = len(block)
        if n == 0:
            return [], None
        columns = block.columns
        first_values = tuple(col[0] for col in columns)
        key_indices = [child_schema.index_of(expr.name) for expr in node.group_by]
        for index in key_indices:
            # NaN grouping keys: np.unique collapses all NaNs into one group
            # while the row path's dict keeps distinct NaN objects distinct —
            # only the per-row accumulators reproduce that faithfully.
            if child_schema.columns[index].dtype is DataType.FLOAT:
                self._reject_nan(columns[index], "NaN grouping key")
        encoding = encode_group_keys(
            [columns[i] for i in key_indices],
            [child_schema.columns[i].dtype for i in key_indices],
        )
        codes, group_count = encoding.codes, encoding.group_count
        star_counts: list[int] | None = None
        per_item: dict[int, list[Any]] = {}
        for i, name, col_index in plan:
            if name == "count_star":
                if star_counts is None:
                    star_counts = np.bincount(codes, minlength=group_count).tolist()
                per_item[i] = star_counts
                continue
            column = columns[col_index]
            present = ~_null_mask_of(column)
            sub_codes = codes[present]
            group_sizes = np.bincount(sub_codes, minlength=group_count)
            if name == "count":
                per_item[i] = group_sizes.tolist()
                continue
            dtype = _KERNEL_DTYPES[child_schema.columns[col_index].dtype]
            try:
                values = np.fromiter(
                    (0 if v is None else v for v in column), dtype, count=n
                )[present]
            except (OverflowError, TypeError, ValueError) as exc:
                # e.g. Python ints beyond int64: the row accumulators'
                # arbitrary precision is the only faithful path.
                raise _KernelUnsupported(str(exc)) from exc
            sizes = group_sizes.tolist()
            if name == "avg":
                totals = np.bincount(
                    sub_codes, weights=values.astype(np.float64), minlength=group_count
                ).tolist()
                per_item[i] = [
                    None if size == 0 else total / size
                    for total, size in zip(totals, sizes)
                ]
            elif name == "sum":
                if dtype is np.float64:
                    totals = np.bincount(
                        sub_codes, weights=values, minlength=group_count
                    ).tolist()
                else:
                    ints = values.astype(np.int64)
                    peak = int(np.abs(ints).max()) if ints.size else 0
                    biggest = int(group_sizes.max()) if group_sizes.size else 0
                    if peak and biggest and peak > (2**62) // biggest:
                        raise _KernelUnsupported("int64 overflow risk in SUM")
                    acc = np.zeros(group_count, dtype=np.int64)
                    np.add.at(acc, sub_codes, ints)
                    totals = acc.tolist()
                per_item[i] = [
                    None if size == 0 else total
                    for total, size in zip(totals, sizes)
                ]
            else:  # min / max over stable-sorted segments
                if dtype is np.float64 and values.size and bool(np.isnan(values).any()):
                    # The row fold never replaces on NaN (NaN < x is False),
                    # making min/max position-dependent; reduceat cannot
                    # reproduce that, so replay through the accumulators.
                    raise _KernelUnsupported("NaN in MIN/MAX column")
                out: list[Any] = [None] * group_count
                if sub_codes.size:
                    seg_order = np.argsort(sub_codes, kind="stable")
                    seg_codes = sub_codes[seg_order]
                    seg_values = values[seg_order]
                    seg_starts = np.flatnonzero(
                        np.concatenate(([True], seg_codes[1:] != seg_codes[:-1]))
                    )
                    reducer = np.minimum if name == "min" else np.maximum
                    reduced = reducer.reduceat(seg_values, seg_starts)
                    for code, value in zip(
                        seg_codes[seg_starts].tolist(), reduced.tolist()
                    ):
                        out[code] = value
                per_item[i] = out
        if rep_cols is None:
            representatives = [
                tuple(col[row] for col in columns)
                for row in encoding.first_rows.tolist()
            ]
        else:
            representatives = [
                tuple(columns[i][row] for i in rep_cols)
                for row in encoding.first_rows.tolist()
            ]
        groups_out: list[tuple[tuple, dict[int, Any], tuple | None]] = []
        for g in range(group_count):
            accumulators = {i: per_item[i][g] for i, _name, _col in plan}
            groups_out.append(((), accumulators, representatives[g]))
        return groups_out, first_values

    def _record_groupby(self, path: str, peak_rows: int) -> None:
        """Report which grouped-aggregation path ran and its peak resident
        rows to the engine (surfaced by the runtime's metrics snapshot)."""
        record = getattr(self._engine, "record_groupby", None)
        if record is not None:
            record(path, peak_rows)

    def _run_streaming_grouped(
        self,
        node: AggregateNode,
        child_schema: Schema,
        batches: Iterator[ColumnBatch],
        plan: list[tuple[int, str, int | None]],
        agg_items: list,
        rep_cols: list[int] | None = None,
    ) -> tuple[list[tuple[tuple, dict[int, Any], tuple | None]], tuple[Any, ...] | None]:
        """Streaming two-pass group-by: encode per batch, merge partials.

        Each batch's grouping keys are factorized locally and mapped through
        a shared :class:`~repro.common.keycodes.IncrementalGroupEncoder`
        dictionary, and its values fold into per-group accumulator arrays
        (:class:`_StreamingGroupAggregator`) — so peak resident rows are
        O(batch_size + groups) instead of the whole input, while per-group
        accumulation order stays strictly sequential in row order (the
        bit-for-bit parity contract with the row executor's accumulators).

        Shapes the vector kernels cannot reproduce faithfully (NaN grouping
        keys, NaN in MIN/MAX, int64 overflow risk) are detected *before* a
        batch is folded in; the stream then degrades by seeding per-row
        accumulators from the vectorized partial state and folding the
        remaining rows through them — never re-reading consumed input.
        """
        key_indices = [child_schema.index_of(expr.name) for expr in node.group_by]
        key_dtypes = [child_schema.columns[i].dtype for i in key_indices]
        float_keys = [
            i for i in key_indices if child_schema.columns[i].dtype is DataType.FLOAT
        ]
        encoder = IncrementalGroupEncoder(key_dtypes)
        ctx = self._task_context()
        partitions = partition_count_for(ctx.workers) if ctx.workers > 1 else 1
        state: _StreamingGroupAggregator | _PartitionedGroupAggregator
        if partitions > 1:
            state = _PartitionedGroupAggregator(plan, child_schema, partitions, ctx)
        else:
            state = _StreamingGroupAggregator(plan, child_schema)
        representatives: list[tuple[Any, ...]] = []
        first_values: tuple[Any, ...] | None = None
        peak = 0
        iterator = iter(batches)
        try:
            for batch in iterator:
                n = len(batch)
                if n == 0:
                    continue
                columns = batch.columns
                if first_values is None:
                    first_values = next(batch.value_rows())
                try:
                    for index in float_keys:
                        self._reject_nan(columns[index], "NaN grouping key")
                    prepared = state.prepare(columns, n)
                except _KernelUnsupported:
                    groups_out = self._degrade_streaming(
                        node,
                        child_schema,
                        agg_items,
                        state,
                        key_indices,
                        representatives,
                        itertools.chain([batch], iterator),
                        rep_cols,
                    )
                    self._record_groupby("stream_degraded", peak)
                    return groups_out, first_values
                codes, new_first_rows = encoder.encode_batch(
                    [columns[i] for i in key_indices]
                )
                if rep_cols is None:
                    for row in new_first_rows:
                        representatives.append(
                            tuple(column[row] for column in columns)
                        )
                else:
                    for row in new_first_rows:
                        representatives.append(
                            tuple(columns[i][row] for i in rep_cols)
                        )
                state.accumulate(codes, prepared, encoder.group_count)
                peak = max(peak, n + encoder.group_count)
        finally:
            ctx.close()
        per_item = state.results()
        groups_out = [
            ((), {i: per_item[i][g] for i, _name, _col in plan}, representatives[g])
            for g in range(encoder.group_count)
        ]
        self._record_groupby("stream_parallel" if partitions > 1 else "stream", peak)
        return groups_out, first_values

    def _degrade_streaming(
        self,
        node: AggregateNode,
        child_schema: Schema,
        agg_items: list,
        state: "_StreamingGroupAggregator | _PartitionedGroupAggregator",
        key_indices: list[int],
        representatives: list[tuple[Any, ...]],
        remaining: Iterator[ColumnBatch],
        rep_cols: list[int] | None = None,
    ) -> list[tuple[tuple, dict[int, Any], tuple | None]]:
        """Hand a partially-streamed group-by over to the row accumulators.

        The vectorized per-group state is loaded into freshly-made row
        accumulators (every already-consumed row was folded in strictly
        sequential order, so the seeded state is exactly what the row path
        would hold at this point); the tripping batch and everything after
        it then fold per row.
        """
        items_by_index = dict(agg_items)
        groups: dict[tuple, dict[int, Any]] = {}
        group_reprs: dict[tuple, tuple[Any, ...]] = {}
        if rep_cols is None:
            key_positions = key_indices
        else:
            positions = {col: pos for pos, col in enumerate(rep_cols)}
            key_positions = [positions[i] for i in key_indices]
        for code, repr_values in enumerate(representatives):
            key = tuple(repr_values[i] for i in key_positions)
            groups[key] = state.seeded_accumulators(code, items_by_index)
            group_reprs[key] = repr_values
        out, _first = self._fold_grouped_rows(
            node, child_schema, remaining, agg_items, groups, group_reprs, rep_cols
        )
        return out

    def _run_grouped_aggregates(
        self,
        node: AggregateNode,
        child_schema: Schema,
        batches: Iterator[ColumnBatch],
        agg_items: list,
        rep_cols: list[int] | None = None,
    ) -> tuple[list[tuple[tuple, dict[int, Any], tuple | None]], tuple[Any, ...] | None]:
        return self._fold_grouped_rows(
            node, child_schema, batches, agg_items, rep_cols=rep_cols
        )

    def _fold_grouped_rows(
        self,
        node: AggregateNode,
        child_schema: Schema,
        batches: Iterator[ColumnBatch],
        agg_items: list,
        groups: dict[tuple, dict[int, Any]] | None = None,
        group_reprs: dict[tuple, tuple[Any, ...]] | None = None,
        rep_cols: list[int] | None = None,
    ) -> tuple[list[tuple[tuple, dict[int, Any], tuple | None]], tuple[Any, ...] | None]:
        group_fns = [_compile_or_defer(expr, child_schema) for expr in node.group_by]
        agg_fns: dict[int, Any] = {}
        for i, item in agg_items:
            if item.expression is not None:
                agg_fns[i] = _compile_or_defer(item.expression, child_schema)
        if groups is None:
            groups = {}
        if group_reprs is None:
            group_reprs = {}
        first_values: tuple[Any, ...] | None = None
        for batch in batches:
            for values in batch.value_rows():
                if first_values is None:
                    first_values = values
                key = tuple(fn(values) for fn in group_fns)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = {
                        i: make_aggregate(
                            item.aggregate,
                            count_star=(item.expression is None),
                            distinct=item.distinct,
                        )
                        for i, item in agg_items
                    }
                    groups[key] = accumulators
                    group_reprs[key] = (
                        values
                        if rep_cols is None
                        else tuple(values[i] for i in rep_cols)
                    )
                for i, item in agg_items:
                    value = 1 if item.expression is None else agg_fns[i](values)
                    accumulators[i].add(value)
        if not groups and not node.group_by:
            groups[()] = {
                i: make_aggregate(
                    item.aggregate,
                    count_star=(item.expression is None),
                    distinct=item.distinct,
                )
                for i, item in agg_items
            }
            group_reprs[()] = None  # type: ignore[assignment]
        out = [(key, accs, group_reprs[key]) for key, accs in groups.items()]
        return out, first_values

    def _sort_stream(self, node: SortNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        key_fns = [_compile_or_defer(item.expression, schema) for item in node.order_by]

        def generate() -> Iterator[ColumnBatch]:
            rows: list[tuple[Any, ...]] = []
            for batch in batches:
                rows.extend(batch.value_rows())
            # Stable sort applied right-to-left, exactly like the row executor.
            for item, fn in zip(reversed(node.order_by), reversed(key_fns)):

                def sort_key(values: tuple[Any, ...], fn=fn) -> tuple:
                    value = fn(values)
                    return (value is None, value)

                rows.sort(key=sort_key, reverse=item.descending)
            for start in range(0, len(rows), self._batch_rows):
                yield ColumnBatch.from_value_rows(schema, rows[start : start + self._batch_rows])

        return schema, generate()

    def _limit_stream(self, node: LimitNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        start = node.offset or 0
        limit = node.limit

        def generate() -> Iterator[ColumnBatch]:
            to_skip = start
            remaining = limit
            for batch in batches:
                rows = list(batch.value_rows())
                if to_skip:
                    if to_skip >= len(rows):
                        to_skip -= len(rows)
                        continue
                    rows = rows[to_skip:]
                    to_skip = 0
                if remaining is not None:
                    if remaining <= 0:
                        return
                    rows = rows[:remaining]
                    remaining -= len(rows)
                if rows:
                    yield ColumnBatch.from_value_rows(schema, rows)
                if remaining is not None and remaining <= 0:
                    return

        return schema, generate()

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _expression_type(
        expression: Expression | None,
        child_schema: Schema,
        first_values: tuple[Any, ...] | None,
    ) -> DataType:
        """Mirror of the row executor's output-type inference, over batches."""
        if expression is None:
            return DataType.INTEGER
        if isinstance(expression, ColumnRef) and child_schema.has_column(expression.name):
            return child_schema.column(expression.name).dtype
        if first_values is not None:
            try:
                return infer_type(expression.compile(child_schema)(first_values))
            except Exception:  # noqa: BLE001 - fall back to float, like the row path
                return DataType.FLOAT
        return DataType.FLOAT


class _StreamingGroupAggregator:
    """Growable per-group accumulator arrays for the streaming group-by.

    One instance serves one aggregation; arrays are indexed by the global
    group codes handed out by the shared incremental key dictionary and
    grow geometrically as new groups appear.  The merge discipline keeps
    every per-group fold strictly sequential in row order:

    * float SUM/AVG use a **seeded bincount** — the running totals ride
      along as one leading entry per group, so ``np.bincount``'s
      sequential C loop continues the exact ``((t + v1) + v2)...`` fold
      the row accumulators perform (plain partial-sum merging would round
      differently);
    * integer SUM uses ``np.add.at`` (unbuffered, in input order) with a
      conservative overflow guard that trips *before* a batch is folded;
    * COUNT merges with plain bincount addition and MIN/MAX with segmented
      reductions — both order-insensitive (NaN is rejected up front).
    """

    def __init__(
        self, plan: list[tuple[int, str, int | None]], child_schema: Schema
    ) -> None:
        self._plan = plan
        self._size = 0
        self._cap = 0
        self._state: dict[int, dict[str, Any]] = {}
        for i, name, col in plan:
            st: dict[str, Any] = {}
            if name in ("count_star", "count"):
                st["counts"] = np.zeros(0, dtype=np.int64)
            else:
                dtype = _KERNEL_DTYPES[child_schema.columns[col].dtype]
                st["dtype"] = dtype
                if name == "sum":
                    st["float"] = dtype is np.float64
                    st["acc"] = np.zeros(
                        0, dtype=np.float64 if st["float"] else np.int64
                    )
                    st["sizes"] = np.zeros(0, dtype=np.int64)
                    st["abs_max"] = 0
                elif name == "avg":
                    st["acc"] = np.zeros(0, dtype=np.float64)
                    st["sizes"] = np.zeros(0, dtype=np.int64)
                else:  # min / max
                    st["vals"] = np.zeros(0, dtype=dtype)
                    st["has"] = np.zeros(0, dtype=np.bool_)
            self._state[i] = st

    # ---------------------------------------------------------------- batches
    def prepare(self, columns: list, n: int) -> list:
        """Pack and vet one batch's aggregate inputs **before** any state
        mutation, raising :class:`_KernelUnsupported` on shapes the vector
        fold cannot reproduce faithfully (so the caller can still hand the
        untouched batch to the row accumulators)."""
        prepared: list[Any] = []
        # Several aggregates over one column (count/sum/avg/max of `value`)
        # share a single null-mask pass and a single packed array per batch.
        present_cache: dict[int, np.ndarray] = {}
        packed_cache: dict[int, np.ndarray] = {}
        for i, name, col in self._plan:
            if name == "count_star":
                prepared.append(None)
                continue
            present = present_cache.get(col)
            if present is None:
                present = ~_null_mask_of(columns[col])
                present_cache[col] = present
            if name == "count":
                prepared.append((present, None))
                continue
            st = self._state[i]
            dtype = st["dtype"]
            values = packed_cache.get(col)
            if values is None:
                try:
                    values = np.fromiter(
                        (0 if v is None else v for v in columns[col]),
                        dtype,
                        count=n,
                    )
                except (OverflowError, TypeError, ValueError) as exc:
                    # e.g. Python ints beyond int64: only the row
                    # accumulators' arbitrary precision is faithful.
                    raise _KernelUnsupported(str(exc)) from exc
                packed_cache[col] = values
            if name in ("min", "max"):
                if dtype is np.float64 and bool(np.isnan(values[present]).any()):
                    # The row fold never replaces on NaN, making MIN/MAX
                    # position-dependent; reductions cannot reproduce that.
                    raise _KernelUnsupported("NaN in MIN/MAX column")
                prepared.append((present, values))
                continue
            if name == "sum" and not st["float"]:
                ints = values.astype(np.int64, copy=False)
                peak = int(np.abs(ints[present]).max()) if present.any() else 0
                if peak < 0 or (peak and st["abs_max"] + peak * n > 2**62):
                    raise _KernelUnsupported("int64 overflow risk in SUM")
                prepared.append((present, ints))
                continue
            prepared.append((present, values))
        return prepared

    def accumulate(self, codes: np.ndarray, prepared: list, group_count: int) -> None:
        """Fold one prepared batch into the per-group state."""
        self._ensure(group_count)
        size = self._size
        for (i, name, _col), payload in zip(self._plan, prepared):
            st = self._state[i]
            if name == "count_star":
                st["counts"][:size] += np.bincount(codes, minlength=size)
                continue
            present, values = payload
            sub = codes[present]
            if name == "count":
                st["counts"][:size] += np.bincount(sub, minlength=size)
                continue
            if name == "avg" or (name == "sum" and st.get("float")):
                weights = values[present]
                if weights.dtype != np.float64:
                    weights = weights.astype(np.float64)
                seeded_codes = np.concatenate(
                    [np.arange(size, dtype=np.int64), sub]
                )
                seeded_weights = np.concatenate([st["acc"][:size], weights])
                st["acc"][:size] = np.bincount(
                    seeded_codes, weights=seeded_weights, minlength=size
                )
                st["sizes"][:size] += np.bincount(sub, minlength=size)
                continue
            if name == "sum":
                np.add.at(st["acc"][:size], sub, values[present])
                st["sizes"][:size] += np.bincount(sub, minlength=size)
                if sub.size:
                    st["abs_max"] = max(
                        st["abs_max"], int(np.abs(st["acc"][:size]).max())
                    )
                continue
            # min / max: per-batch segmented reduction, then an
            # order-insensitive merge into the running extremes.
            if not sub.size:
                continue
            vals = values[present]
            order = np.argsort(sub, kind="stable")
            seg_codes = sub[order]
            seg_vals = vals[order]
            seg_starts = np.flatnonzero(
                np.concatenate(([True], seg_codes[1:] != seg_codes[:-1]))
            )
            reducer = np.minimum if name == "min" else np.maximum
            reduced = reducer.reduceat(seg_vals, seg_starts)
            idx = seg_codes[seg_starts]
            current = st["vals"][idx]
            merged = np.where(st["has"][idx], reducer(current, reduced), reduced)
            st["vals"][idx] = merged
            st["has"][idx] = True

    def _ensure(self, group_count: int) -> None:
        self._size = group_count
        if group_count <= self._cap:
            return
        cap = max(64, self._cap * 2, group_count)
        for st in self._state.values():
            for key in ("counts", "acc", "sizes", "vals", "has"):
                if key in st:
                    old = st[key]
                    grown = np.zeros(cap, dtype=old.dtype)
                    grown[: len(old)] = old
                    st[key] = grown
        self._cap = cap

    # ---------------------------------------------------------------- results
    def results(self) -> dict[int, list[Any]]:
        """Per-item result lists indexed by global group code (Python
        scalars, matching the row accumulators' output types)."""
        size = self._size
        out: dict[int, list[Any]] = {}
        for i, name, _col in self._plan:
            st = self._state[i]
            if name in ("count_star", "count"):
                out[i] = st["counts"][:size].tolist()
            elif name in ("sum", "avg"):
                totals = st["acc"][:size].tolist()
                sizes = st["sizes"][:size].tolist()
                if name == "avg":
                    out[i] = [
                        None if count == 0 else total / count
                        for total, count in zip(totals, sizes)
                    ]
                else:
                    out[i] = [
                        None if count == 0 else total
                        for total, count in zip(totals, sizes)
                    ]
            else:
                values = st["vals"][:size].tolist()
                present = st["has"][:size].tolist()
                out[i] = [
                    value if has else None for value, has in zip(values, present)
                ]
        return out

    def seeded_accumulators(self, code: int, items_by_index: dict) -> dict[int, Any]:
        """Row accumulators pre-loaded with one group's vectorized state
        (the degrade handoff: consumed rows were folded in row order, so
        this state is bit-for-bit what the row path would hold)."""
        accumulators: dict[int, Any] = {}
        for i, name, _col in self._plan:
            item = items_by_index[i]
            accumulator = make_aggregate(
                item.aggregate,
                count_star=(item.expression is None),
                distinct=item.distinct,
            )
            st = self._state[i]
            if name in ("count_star", "count"):
                accumulator.load(int(st["counts"][code]))
            elif name == "sum":
                if int(st["sizes"][code]):
                    total = st["acc"][code]
                    accumulator.load(float(total) if st["float"] else int(total))
            elif name == "avg":
                accumulator.load(float(st["acc"][code]), int(st["sizes"][code]))
            else:
                if bool(st["has"][code]):
                    accumulator.load(st["vals"][code].item())
            accumulators[i] = accumulator
        return accumulators


class _PartitionedGroupAggregator:
    """K radix-partitioned streaming aggregators folded by parallel tasks.

    Global group ``g`` lives in partition ``g % k`` under local code
    ``g // k`` (locals stay dense and first-appearance ordered within each
    partition).  Each batch dispatches one task per partition and
    **barriers** before the next batch, so every partition folds batches in
    stream order and each group's accumulation sequence — including the
    seeded-bincount float folds — is bit-for-bit the serial aggregator's.
    The outward interface (prepare/accumulate/results/seeded_accumulators)
    matches :class:`_StreamingGroupAggregator` exactly.
    """

    def __init__(
        self,
        plan: list[tuple[int, str, int | None]],
        child_schema: Schema,
        partitions: int,
        ctx: TaskContext,
    ) -> None:
        self._plan = plan
        self._k = partitions
        self._ctx = ctx
        self._parts = [
            _StreamingGroupAggregator(plan, child_schema) for _ in range(partitions)
        ]
        # Never accumulated into: used only to run ``prepare``'s vetting
        # (dtype packing, NaN checks, the int-SUM overflow guard).
        self._probe = _StreamingGroupAggregator(plan, child_schema)
        self._group_count = 0

    def prepare(self, columns: list, n: int) -> list:
        # The overflow guard consults accumulated |acc| maxima; sync the
        # probe's to the max across partitions — which IS the serial
        # aggregator's abs_max (the global max over all groups) — so the
        # guard trips on exactly the same batch as single-threaded mode.
        for i, _name, _col in self._plan:
            probe_state = self._probe._state[i]
            if "abs_max" in probe_state:
                probe_state["abs_max"] = max(
                    part._state[i]["abs_max"] for part in self._parts
                )
        return self._probe.prepare(columns, n)

    def accumulate(self, codes: np.ndarray, prepared: list, group_count: int) -> None:
        self._group_count = group_count
        k = self._k
        part_rows = partition_codes(codes, k)

        def make_task(p: int, rows: np.ndarray):
            part = self._parts[p]
            local_count = (group_count - p + k - 1) // k if group_count > p else 0

            def task() -> None:
                local_codes = codes[rows] // k
                local_prepared: list[Any] = []
                for payload in prepared:
                    if payload is None:
                        local_prepared.append(None)
                    else:
                        present, values = payload
                        local_prepared.append(
                            (
                                present[rows],
                                None if values is None else values[rows],
                            )
                        )
                part.accumulate(local_codes, local_prepared, local_count)

            return task

        self._ctx.run_all([make_task(p, part_rows[p]) for p in range(k)])

    def results(self) -> dict[int, list[Any]]:
        part_results = [part.results() for part in self._parts]
        k = self._k
        out: dict[int, list[Any]] = {}
        for i, _name, _col in self._plan:
            out[i] = [
                part_results[g % k][i][g // k] for g in range(self._group_count)
            ]
        return out

    def seeded_accumulators(self, code: int, items_by_index: dict) -> dict[int, Any]:
        return self._parts[code % self._k].seeded_accumulators(
            code // self._k, items_by_index
        )
