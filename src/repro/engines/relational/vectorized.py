"""Vectorized (columnar batch) execution for the relational engine.

The classic executor in :mod:`repro.engines.relational.executor` materializes
a :class:`~repro.common.schema.Row` object per tuple and tree-walks
``Expression.evaluate`` per row per predicate — exactly the interpreted
per-tuple overhead the Cambridge report calls out.  This module is the cure:

* **Batches, not rows.**  Operators stream
  :class:`~repro.common.schema.ColumnBatch` objects (bounded column-wise
  slices) straight out of :class:`HeapTable.scan_batches`, so no operator
  ever builds a full ``Relation`` of ``Row`` objects.
* **Compile once, run per batch.**  Predicates, projections, join keys,
  group keys and sort keys are lowered once per plan node with
  :meth:`Expression.compile` into positional-tuple closures — no per-row
  name resolution or isinstance dispatch.
* **numpy kernels where the data allows.**  When a predicate only touches
  numeric columns (dtype mapping shared with the array island), it is
  lowered to a numpy mask kernel with SQL three-valued NULL semantics, so a
  filter over a 100k-row batch is a handful of vector ops.

Operators the batch path does not cover (outer and nested-loop joins) fall
back to the row executor for that subtree, so every query still answers —
the two modes return identical results, which `tests/test_vectorized_execution.py`
asserts property-style.
"""

from __future__ import annotations

import itertools
import operator
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.common.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    compile_predicate,
    evaluate_predicate,
    split_conjuncts,
)
from repro.common.schema import Column, ColumnBatch, Relation, Row, Schema
from repro.common.types import DataType, infer_type
from repro.engines.array.storage import _NUMPY_DTYPES as _ARRAY_ISLAND_DTYPES
from repro.engines.relational.executor import _DUAL_SCHEMA, Executor
from repro.engines.relational.functions import make_aggregate
from repro.engines.relational.planner import (
    AggregateNode,
    FilterNode,
    IndexScanNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    ProjectNode,
    ScanNode,
    SortNode,
    SubqueryNode,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.relational.engine import RelationalEngine

#: Rows per batch on the vectorized pipeline (bounded memory per operator).
DEFAULT_BATCH_ROWS = 4096

#: numpy dtype per scalar type, shared with the array island's buffers so a
#: relational batch and an array chunk agree on the wire representation.
#: Only types whose Python values pack losslessly into a fixed-width numpy
#: array participate in kernels; TEXT/TIMESTAMP predicates use the compiled
#: row closure instead.
_KERNEL_DTYPES = {
    dtype: _ARRAY_ISLAND_DTYPES[dtype]
    for dtype in (DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN)
}

_COMPARE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Division and modulo are excluded: their by-zero behaviour must match the
#: row path's per-row ExecutionError exactly, which a whole-batch kernel
#: cannot reproduce when short-circuiting would have skipped the bad row.
_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


class _KernelUnsupported(Exception):
    """Raised during lowering when an expression has no vector form."""


def _compile_or_defer(expression: Expression, schema: Schema) -> Callable[[Sequence[Any]], Any]:
    """Compile an expression, deferring compile-time errors to evaluation time.

    The row executor only surfaces a bad column reference when a row is
    actually evaluated (an empty input never errors); eager compilation would
    move that error to plan time.  Deferring keeps the two modes identical.
    """
    try:
        return expression.compile(schema)
    except Exception:  # noqa: BLE001 - re-raised on first evaluation, like the row path
        return lambda values: expression.evaluate(Row(schema, values))


def _compile_predicate_or_defer(
    predicate: Expression | None, schema: Schema
) -> Callable[[Sequence[Any]], bool]:
    try:
        return compile_predicate(predicate, schema)
    except Exception:  # noqa: BLE001
        return lambda values: evaluate_predicate(predicate, Row(schema, values))


def _union_nulls(left: np.ndarray | None, right: np.ndarray | None) -> np.ndarray | None:
    if left is None:
        return right
    if right is None:
        return left
    return left | right


def _as_bool(values: Any) -> np.ndarray:
    return np.asarray(values).astype(np.bool_, copy=False)


# Each lowered node maps {column index: (values array, null mask | None)} to
# its own (values, null mask | None) pair.  Values at null positions are
# unspecified; the final mask removes them (SQL: NULL is not satisfied).
_KernelNode = Callable[[dict[int, tuple[np.ndarray, "np.ndarray | None"]]], tuple[Any, "np.ndarray | None"]]


def _require_float_columns(expr: Expression, schema: Schema) -> None:
    """Reject arithmetic over INTEGER columns: int64 wraps on overflow where
    Python's arbitrary-precision ints do not, which could silently change a
    mask.  float64 arithmetic matches the row path's float semantics exactly.
    """
    for name in expr.referenced_columns():
        if schema.columns[schema.index_of(name)].dtype is not DataType.FLOAT:
            raise _KernelUnsupported(f"arithmetic over non-float column {name!r}")


def _lower(expr: Expression, schema: Schema, columns: dict[int, Any]) -> tuple[_KernelNode, bool]:
    """Lower ``expr``; returns (kernel node, produces-boolean-values).

    The boolean flag matters for AND/OR: the row path short-circuits only on
    the literal ``False`` (``value is False``), so ``0 AND NULL`` is NULL
    there while a truthiness-based kernel would call it False.  Restricting
    AND/OR to operands that produce genuine booleans keeps the two paths
    identical; anything else falls back to the compiled row closure.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if not isinstance(value, (bool, int, float)) or value is None:
            raise _KernelUnsupported(f"literal {value!r}")
        return (lambda env: (value, None)), isinstance(value, bool)
    if isinstance(expr, ColumnRef):
        index = schema.index_of(expr.name)
        dtype = schema.columns[index].dtype
        if dtype not in _KERNEL_DTYPES:
            raise _KernelUnsupported(f"column {expr.name!r} has non-numeric type {dtype}")
        columns[index] = _KERNEL_DTYPES[dtype]
        return (lambda env: env[index]), dtype is DataType.BOOLEAN
    if isinstance(expr, BinaryOp):
        op = expr.op.lower()
        if op in ("and", "or"):
            left, left_boolean = _lower(expr.left, schema, columns)
            right, right_boolean = _lower(expr.right, schema, columns)
            if not (left_boolean and right_boolean):
                raise _KernelUnsupported("AND/OR over non-boolean operands")
            conjunctive = op == "and"

            def _logic(env: dict) -> tuple[Any, np.ndarray | None]:
                lv, ln = left(env)
                rv, rn = right(env)
                lb, rb = _as_bool(lv), _as_bool(rv)
                vals = (lb & rb) if conjunctive else (lb | rb)
                if ln is None and rn is None:
                    return vals, None
                if conjunctive:
                    # AND is NULL unless either side is definitely False.
                    decided_l = ~lb if ln is None else (~lb & ~ln)
                    decided_r = ~rb if rn is None else (~rb & ~rn)
                else:
                    # OR is NULL unless either side is definitely True.
                    decided_l = lb if ln is None else (lb & ~ln)
                    decided_r = rb if rn is None else (rb & ~rn)
                nulls = _union_nulls(ln, rn) & ~decided_l & ~decided_r
                return vals, nulls

            return _logic, True
        if op in _COMPARE_OPS or op in _ARITH_OPS:
            fn = _COMPARE_OPS.get(op) or _ARITH_OPS[op]
            if op in _ARITH_OPS:
                _require_float_columns(expr, schema)
            left, _lb = _lower(expr.left, schema, columns)
            right, _rb = _lower(expr.right, schema, columns)

            def _binary(env: dict) -> tuple[Any, np.ndarray | None]:
                lv, ln = left(env)
                rv, rn = right(env)
                return fn(lv, rv), _union_nulls(ln, rn)

            return _binary, op in _COMPARE_OPS
        raise _KernelUnsupported(f"operator {expr.op!r}")
    if isinstance(expr, UnaryOp):
        op = expr.op.lower()
        if op == "not":
            operand, _ob = _lower(expr.operand, schema, columns)

            def _not(env: dict) -> tuple[Any, np.ndarray | None]:
                vals, nulls = operand(env)
                return ~_as_bool(vals), nulls

            return _not, True
        if op == "-":
            _require_float_columns(expr, schema)
            operand, _ob = _lower(expr.operand, schema, columns)

            def _neg(env: dict) -> tuple[Any, np.ndarray | None]:
                vals, nulls = operand(env)
                return operator.neg(vals), nulls

            return _neg, False
        raise _KernelUnsupported(f"unary operator {expr.op!r}")
    if isinstance(expr, IsNull):
        operand, _ob = _lower(expr.operand, schema, columns)
        negated = expr.negated

        def _is_null(env: dict) -> tuple[Any, np.ndarray | None]:
            vals, nulls = operand(env)
            shaped = np.asarray(vals)
            if shaped.ndim == 0:
                raise _KernelUnsupported("IS NULL over a scalar")
            base = nulls if nulls is not None else np.zeros(shaped.shape, dtype=np.bool_)
            return (~base if negated else base), None

        return _is_null, True
    if isinstance(expr, InList):
        if any(not isinstance(v, (bool, int, float)) or v is None for v in expr.values):
            raise _KernelUnsupported("non-numeric IN list")
        operand, _ob = _lower(expr.operand, schema, columns)
        members = list(expr.values)
        negated = expr.negated

        def _in(env: dict) -> tuple[Any, np.ndarray | None]:
            vals, nulls = operand(env)
            result = np.isin(vals, members)
            return (~result if negated else result), nulls

        return _in, True
    raise _KernelUnsupported(type(expr).__name__)


class FilterKernel:
    """A predicate lowered to a numpy mask function over a ColumnBatch."""

    def __init__(self, fn: _KernelNode, columns: dict[int, Any]) -> None:
        self._fn = fn
        self._columns = tuple(columns.items())

    def __call__(self, batch: ColumnBatch) -> np.ndarray:
        length = len(batch)
        env: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        for index, dtype in self._columns:
            column = batch.columns[index]
            if None in column:
                nulls = np.fromiter((v is None for v in column), np.bool_, count=length)
                vals = np.asarray([0 if v is None else v for v in column], dtype=dtype)
            else:
                nulls = None
                vals = np.asarray(column, dtype=dtype)
            env[index] = (vals, nulls)
        vals, nulls = self._fn(env)
        mask = _as_bool(vals)
        if mask.ndim == 0:
            mask = np.full(length, bool(mask), dtype=np.bool_)
        if nulls is not None:
            mask = mask & ~nulls
        return mask


def compile_filter_kernel(predicate: Expression, schema: Schema) -> FilterKernel | None:
    """Lower a predicate to a numpy kernel, or None when it has no vector form."""
    columns: dict[int, Any] = {}
    try:
        fn, _boolean = _lower(predicate, schema, columns)
    except _KernelUnsupported:
        return None
    except Exception:  # noqa: BLE001 - malformed predicates fail on the row path
        return None
    if not columns:
        return None  # constant predicate: nothing to vectorize
    return FilterKernel(fn, columns)


class _PredicateRunner:
    """Applies one predicate to batches: numpy kernel first, row closure fallback."""

    def __init__(self, predicate: Expression, schema: Schema) -> None:
        self.kernel = compile_filter_kernel(predicate, schema)
        self._row_predicate = _compile_predicate_or_defer(predicate, schema)

    def __call__(self, batch: ColumnBatch) -> ColumnBatch:
        if self.kernel is not None:
            try:
                mask = self.kernel(batch)
            except (_KernelUnsupported, TypeError, OverflowError):
                mask = None  # fall back; the row path reproduces exact semantics
            if mask is not None:
                if mask.all():
                    return batch
                return batch.compress(mask)
        fn = self._row_predicate
        flags = [fn(values) for values in batch.value_rows()]
        if all(flags):
            return batch
        return batch.compress(flags)


_FAST_AGGREGATES = ("count", "sum", "avg", "min", "max")


class BatchExecutor:
    """Executes logical plans as a streaming columnar batch pipeline.

    Produces results identical to :class:`Executor` (the row-at-a-time
    volcano executor), which stays available both as the ``row`` execution
    mode and as the fallback for plan shapes the batch pipeline does not
    cover yet.
    """

    def __init__(
        self,
        engine: "RelationalEngine",
        batch_rows: int = DEFAULT_BATCH_ROWS,
        row_executor: Executor | None = None,
    ) -> None:
        self._engine = engine
        self._batch_rows = batch_rows
        self._row_executor = row_executor if row_executor is not None else Executor(engine)

    # ------------------------------------------------------------------ public
    def execute(self, plan: LogicalPlan) -> Relation:
        schema, batches = self.stream(plan)
        relation = Relation(schema)
        rows = relation.rows
        for batch in batches:
            rows.extend(Row(schema, values) for values in batch.value_rows())
        return relation

    def stream(self, plan: LogicalPlan) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Output schema plus a bounded-batch iterator for a plan subtree."""
        if isinstance(plan, ScanNode):
            return self._scan_stream(plan)
        if isinstance(plan, IndexScanNode):
            return self._index_scan_stream(plan)
        if isinstance(plan, SubqueryNode):
            return self._subquery_stream(plan)
        if isinstance(plan, FilterNode):
            return self._filter_stream(plan)
        if isinstance(plan, JoinNode):
            if self._join_shape_vectorizable(plan):
                return self._join_stream(plan)
            return self._fallback_stream(plan)
        if isinstance(plan, AggregateNode):
            return self._aggregate_stream(plan)
        if isinstance(plan, ProjectNode):
            return self._project_stream(plan)
        if isinstance(plan, SortNode):
            return self._sort_stream(plan)
        if isinstance(plan, LimitNode):
            return self._limit_stream(plan)
        return self._fallback_stream(plan)

    @staticmethod
    def vectorizes(node: LogicalPlan) -> bool:
        """Whether a plan node runs on the batch pipeline (used by EXPLAIN)."""
        if isinstance(node, JoinNode):
            return BatchExecutor._join_shape_vectorizable(node)
        return isinstance(
            node,
            (
                ScanNode,
                IndexScanNode,
                SubqueryNode,
                FilterNode,
                ProjectNode,
                AggregateNode,
                SortNode,
                LimitNode,
            ),
        )

    # ---------------------------------------------------------------- fallback
    def _fallback_stream(self, plan: LogicalPlan) -> tuple[Schema, Iterator[ColumnBatch]]:
        """Row-executor escape hatch for subtrees without a batch form."""
        relation = self._row_executor.execute(plan)
        schema = relation.schema

        def generate() -> Iterator[ColumnBatch]:
            values = [row.values for row in relation.rows]
            for start in range(0, len(values), self._batch_rows):
                yield ColumnBatch.from_value_rows(schema, values[start : start + self._batch_rows])

        return schema, generate()

    # ------------------------------------------------------------------- scans
    def _scan_stream(self, node: ScanNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        if node.table == "__dual__":
            return _DUAL_SCHEMA, iter([ColumnBatch.from_value_rows(_DUAL_SCHEMA, [(0,)])])
        table = self._engine.table(node.table)
        schema = Executor._qualified_schema(table.schema, node.alias or node.table)
        predicate = None if node.predicate is None else _PredicateRunner(node.predicate, schema)

        def generate() -> Iterator[ColumnBatch]:
            for values in table.scan_batches(self._batch_rows):
                batch = ColumnBatch.from_value_rows(schema, values)
                if predicate is not None:
                    batch = predicate(batch)
                if len(batch):
                    yield batch

        return schema, generate()

    def _index_scan_stream(self, node: IndexScanNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        table = self._engine.table(node.table)
        schema = Executor._qualified_schema(table.schema, node.alias or node.table)
        predicate = None if node.residual is None else _PredicateRunner(node.residual, schema)

        def generate() -> Iterator[ColumnBatch]:
            if node.equals is not None:
                matches = table.index_lookup(node.index_name, node.equals)
            else:
                matches = table.index_range(
                    node.index_name,
                    low=node.low,
                    high=node.high,
                    include_low=node.include_low,
                    include_high=node.include_high,
                )
            pending: list[tuple[Any, ...]] = []
            for _row_id, values in matches:
                pending.append(values)
                if len(pending) >= self._batch_rows:
                    batch = ColumnBatch.from_value_rows(schema, pending)
                    pending = []
                    if predicate is not None:
                        batch = predicate(batch)
                    if len(batch):
                        yield batch
            if pending:
                batch = ColumnBatch.from_value_rows(schema, pending)
                if predicate is not None:
                    batch = predicate(batch)
                if len(batch):
                    yield batch

        return schema, generate()

    def _subquery_stream(self, node: SubqueryNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        inner_schema, batches = self.stream(node.plan)
        schema = Executor._qualified_schema(inner_schema, node.alias)
        return schema, (batch.with_schema(schema) for batch in batches)

    # --------------------------------------------------------------- operators
    def _filter_stream(self, node: FilterNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        predicate = _PredicateRunner(node.predicate, schema)

        def generate() -> Iterator[ColumnBatch]:
            for batch in batches:
                filtered = predicate(batch)
                if len(filtered):
                    yield filtered

        return schema, generate()

    @staticmethod
    def _join_shape_vectorizable(node: JoinNode) -> bool:
        if node.strategy != "hash" or node.join_type != "inner" or node.condition is None:
            return False
        for conjunct in split_conjuncts(node.condition):
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op in ("=", "==")
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                return True
        return False

    def _join_stream(self, node: JoinNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        left_schema, left_batches = self.stream(node.left)
        right_schema, right_batches = self.stream(node.right)
        keys = Executor._equi_join_keys(node.condition, left_schema, right_schema)
        if not keys:
            return self._fallback_stream(node)
        joined_schema = left_schema.concat(right_schema)
        left_indices = [left_schema.index_of(pair[0]) for pair in keys]
        right_indices = [right_schema.index_of(pair[1]) for pair in keys]
        condition = _compile_predicate_or_defer(node.condition, joined_schema)

        def generate() -> Iterator[ColumnBatch]:
            # Build on the left side (the planner already made it the smaller
            # one), keyed exactly like the row executor's hash join.
            build: dict[tuple, list[tuple[Any, ...]]] = {}
            for batch in left_batches:
                for values in batch.value_rows():
                    key = tuple(values[i] for i in left_indices)
                    build.setdefault(key, []).append(values)
            for batch in right_batches:
                joined: list[tuple[Any, ...]] = []
                for right_values in batch.value_rows():
                    key = tuple(right_values[i] for i in right_indices)
                    for left_values in build.get(key, ()):
                        candidate = left_values + right_values
                        if condition(candidate):
                            joined.append(candidate)
                if joined:
                    yield ColumnBatch.from_value_rows(joined_schema, joined)

        return joined_schema, generate()

    def _project_stream(self, node: ProjectNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        child_schema, batches = self.stream(node.child)
        first = next(batches, None)
        first_values = next(first.value_rows(), None) if first is not None else None
        columns: list[Column] = []
        for item in node.items:
            if item.star:
                columns.extend(child_schema.columns)
            else:
                dtype = self._expression_type(item.expression, child_schema, first_values)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(Executor._dedupe(columns))
        compiled: list[tuple[bool, Any]] = []  # (star, fn | column index)
        for item in node.items:
            if item.star:
                compiled.append((True, None))
            elif isinstance(item.expression, ColumnRef) and child_schema.has_column(item.expression.name):
                compiled.append((False, child_schema.index_of(item.expression.name)))
            else:
                compiled.append((False, _compile_or_defer(item.expression, child_schema)))
        all_batches = batches if first is None else itertools.chain([first], batches)

        def generate() -> Iterator[ColumnBatch]:
            seen: set[tuple] = set()
            for batch in all_batches:
                if node.distinct:
                    out_rows: list[tuple[Any, ...]] = []
                    for values in batch.value_rows():
                        out: list[Any] = []
                        for star, spec in compiled:
                            if star:
                                out.extend(values)
                            elif isinstance(spec, int):
                                out.append(values[spec])
                            else:
                                out.append(spec(values))
                        candidate = tuple(out)
                        if candidate in seen:
                            continue
                        seen.add(candidate)
                        out_rows.append(candidate)
                    if out_rows:
                        yield ColumnBatch.from_value_rows(schema, out_rows)
                    continue
                out_columns: list[list[Any]] = []
                computed: list[tuple[int, Any]] = []
                for star, spec in compiled:
                    if star:
                        out_columns.extend(batch.columns)
                    elif isinstance(spec, int):
                        out_columns.append(batch.columns[spec])
                    else:
                        slot: list[Any] = []
                        computed.append((len(out_columns), spec))
                        out_columns.append(slot)
                if computed:
                    for values in batch.value_rows():
                        for slot_index, fn in computed:
                            out_columns[slot_index].append(fn(values))
                yield ColumnBatch(schema, out_columns, len(batch))

        return schema, generate()

    def _aggregate_stream(self, node: AggregateNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        child_schema, batches = self.stream(node.child)
        agg_items = [(i, item) for i, item in enumerate(node.items) if item.aggregate]
        fast = self._fast_aggregate_plan(node, child_schema, agg_items)
        first_values: tuple[Any, ...] | None = None
        if fast is not None:
            results, saw_rows, first_values = self._run_fast_aggregates(batches, fast)
            groups_out: list[tuple[tuple, dict[int, Any], tuple | None]] = []
            if saw_rows or not node.group_by:
                groups_out.append(((), results, first_values))
        else:
            groups_out, first_values = self._run_grouped_aggregates(
                node, child_schema, batches, agg_items
            )
        # Output schema: mirrors the row executor exactly.
        columns = []
        for item in node.items:
            if item.aggregate:
                dtype = DataType.INTEGER if item.aggregate == "count" else DataType.FLOAT
                columns.append(Column(item.output_name, dtype))
            else:
                dtype = self._expression_type(item.expression, child_schema, first_values)
                columns.append(Column(item.output_name, dtype))
        schema = Schema(Executor._dedupe(columns))
        having_schema = Executor._having_schema(schema, node.items)
        having = (
            _compile_predicate_or_defer(node.having, having_schema)
            if node.having is not None
            else None
        )
        item_fns: dict[int, Any] = {}
        for i, item in enumerate(node.items):
            if not item.aggregate:
                item_fns[i] = _compile_or_defer(item.expression, child_schema)

        def generate() -> Iterator[ColumnBatch]:
            out_rows: list[tuple[Any, ...]] = []
            for _key, accumulators, representative in groups_out:
                values: list[Any] = []
                for i, item in enumerate(node.items):
                    if item.aggregate:
                        result = accumulators[i]
                        values.append(result.result() if hasattr(result, "result") else result)
                    elif representative is None:
                        values.append(None)
                    else:
                        values.append(item_fns[i](representative))
                out = tuple(values)
                if having is not None and not having(out + out):
                    continue
                out_rows.append(out)
            if out_rows:
                yield ColumnBatch.from_value_rows(schema, out_rows)

        return schema, generate()

    def _fast_aggregate_plan(
        self, node: AggregateNode, child_schema: Schema, agg_items: list
    ) -> list[tuple[int, str, int | None]] | None:
        """Column-wise plan [(item index, aggregate, column index | None)] or None.

        Applies only to global (ungrouped) aggregates whose arguments are bare
        column references: those reduce per batch with C-speed builtins whose
        accumulation order matches the row accumulators value for value.
        """
        if node.group_by or node.having is not None:
            return None
        if any(not item.aggregate for item in node.items):
            # Non-aggregate outputs need a representative row; the general
            # path tracks one, the fast path does not.
            return None
        plan: list[tuple[int, str, int | None]] = []
        for i, item in agg_items:
            name = item.aggregate
            if name not in _FAST_AGGREGATES or item.distinct:
                return None
            if item.expression is None:
                plan.append((i, "count_star", None))
            elif isinstance(item.expression, ColumnRef) and child_schema.has_column(
                item.expression.name
            ):
                index = child_schema.index_of(item.expression.name)
                if name in ("sum", "avg") and child_schema.columns[index].dtype not in _KERNEL_DTYPES:
                    # sum(values, 0) over e.g. TEXT would raise where the row
                    # accumulator (seeded from the first value) does not.
                    return None
                plan.append((i, name, index))
            else:
                return None
        return plan

    @staticmethod
    def _run_fast_aggregates(
        batches: Iterator[ColumnBatch], plan: list[tuple[int, str, int | None]]
    ) -> tuple[dict[int, Any], bool, tuple[Any, ...] | None]:
        counts = {i: 0 for i, _name, _col in plan}
        totals: dict[int, Any] = {i: None for i, _name, _col in plan}
        saw_rows = False
        first_values: tuple[Any, ...] | None = None
        for batch in batches:
            if len(batch) == 0:
                continue
            if not saw_rows:
                first_values = next(batch.value_rows())
                saw_rows = True
            for i, name, col_index in plan:
                if name == "count_star":
                    counts[i] += len(batch)
                    continue
                column = batch.columns[col_index]
                if name == "count":
                    counts[i] += len(column) - column.count(None)
                    continue
                present = [v for v in column if v is not None]
                if not present:
                    continue
                counts[i] += len(present)
                if name in ("sum", "avg"):
                    # sum(values, start) adds sequentially, reproducing the
                    # row accumulator's += order bit for bit.
                    start = totals[i] if totals[i] is not None else (0.0 if name == "avg" else 0)
                    totals[i] = sum(present, start)
                elif name == "min":
                    low = min(present)
                    totals[i] = low if totals[i] is None or low < totals[i] else totals[i]
                elif name == "max":
                    high = max(present)
                    totals[i] = high if totals[i] is None or high > totals[i] else totals[i]
        results: dict[int, Any] = {}
        for i, name, _col in plan:
            if name in ("count_star", "count"):
                results[i] = counts[i]
            elif name == "avg":
                results[i] = None if counts[i] == 0 else totals[i] / counts[i]
            elif name == "sum":
                results[i] = None if counts[i] == 0 else totals[i]
            else:
                results[i] = totals[i]
        return results, saw_rows, first_values

    def _run_grouped_aggregates(
        self,
        node: AggregateNode,
        child_schema: Schema,
        batches: Iterator[ColumnBatch],
        agg_items: list,
    ) -> tuple[list[tuple[tuple, dict[int, Any], tuple | None]], tuple[Any, ...] | None]:
        group_fns = [_compile_or_defer(expr, child_schema) for expr in node.group_by]
        agg_fns: dict[int, Any] = {}
        for i, item in agg_items:
            if item.expression is not None:
                agg_fns[i] = _compile_or_defer(item.expression, child_schema)
        groups: dict[tuple, dict[int, Any]] = {}
        group_reprs: dict[tuple, tuple[Any, ...]] = {}
        first_values: tuple[Any, ...] | None = None
        for batch in batches:
            for values in batch.value_rows():
                if first_values is None:
                    first_values = values
                key = tuple(fn(values) for fn in group_fns)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = {
                        i: make_aggregate(
                            item.aggregate,
                            count_star=(item.expression is None),
                            distinct=item.distinct,
                        )
                        for i, item in agg_items
                    }
                    groups[key] = accumulators
                    group_reprs[key] = values
                for i, item in agg_items:
                    value = 1 if item.expression is None else agg_fns[i](values)
                    accumulators[i].add(value)
        if not groups and not node.group_by:
            groups[()] = {
                i: make_aggregate(
                    item.aggregate,
                    count_star=(item.expression is None),
                    distinct=item.distinct,
                )
                for i, item in agg_items
            }
            group_reprs[()] = None  # type: ignore[assignment]
        out = [(key, accs, group_reprs[key]) for key, accs in groups.items()]
        return out, first_values

    def _sort_stream(self, node: SortNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        key_fns = [_compile_or_defer(item.expression, schema) for item in node.order_by]

        def generate() -> Iterator[ColumnBatch]:
            rows: list[tuple[Any, ...]] = []
            for batch in batches:
                rows.extend(batch.value_rows())
            # Stable sort applied right-to-left, exactly like the row executor.
            for item, fn in zip(reversed(node.order_by), reversed(key_fns)):

                def sort_key(values: tuple[Any, ...], fn=fn) -> tuple:
                    value = fn(values)
                    return (value is None, value)

                rows.sort(key=sort_key, reverse=item.descending)
            for start in range(0, len(rows), self._batch_rows):
                yield ColumnBatch.from_value_rows(schema, rows[start : start + self._batch_rows])

        return schema, generate()

    def _limit_stream(self, node: LimitNode) -> tuple[Schema, Iterator[ColumnBatch]]:
        schema, batches = self.stream(node.child)
        start = node.offset or 0
        limit = node.limit

        def generate() -> Iterator[ColumnBatch]:
            to_skip = start
            remaining = limit
            for batch in batches:
                rows = list(batch.value_rows())
                if to_skip:
                    if to_skip >= len(rows):
                        to_skip -= len(rows)
                        continue
                    rows = rows[to_skip:]
                    to_skip = 0
                if remaining is not None:
                    if remaining <= 0:
                        return
                    rows = rows[:remaining]
                    remaining -= len(rows)
                if rows:
                    yield ColumnBatch.from_value_rows(schema, rows)
                if remaining is not None and remaining <= 0:
                    return

        return schema, generate()

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _expression_type(
        expression: Expression | None,
        child_schema: Schema,
        first_values: tuple[Any, ...] | None,
    ) -> DataType:
        """Mirror of the row executor's output-type inference, over batches."""
        if expression is None:
            return DataType.INTEGER
        if isinstance(expression, ColumnRef) and child_schema.has_column(expression.name):
            return child_schema.column(expression.name).dtype
        if first_values is not None:
            try:
                return infer_type(expression.compile(child_schema)(first_values))
            except Exception:  # noqa: BLE001 - fall back to float, like the row path
                return DataType.FLOAT
        return DataType.FLOAT
