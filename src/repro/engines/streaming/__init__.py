"""The streaming engine (S-Store stand-in): transactional stream processing."""

from repro.engines.streaming.aging import AgingPolicy
from repro.engines.streaming.engine import StreamingEngine, windowed_average_procedure
from repro.engines.streaming.ingestion import FeedConnection, IngestionModule
from repro.engines.streaming.procedures import (
    ProcedureContext,
    StoredProcedure,
    TransactionScheduler,
)
from repro.engines.streaming.recovery import RecoveryManager
from repro.engines.streaming.streams import SlidingWindow, Stream, StreamTuple, TumblingWindow

__all__ = [
    "AgingPolicy",
    "FeedConnection",
    "IngestionModule",
    "ProcedureContext",
    "RecoveryManager",
    "SlidingWindow",
    "StoredProcedure",
    "Stream",
    "StreamTuple",
    "StreamingEngine",
    "TransactionScheduler",
    "TumblingWindow",
    "windowed_average_procedure",
]
