"""Aging streaming data out of S-Store into the historical array store.

Section 3 of the paper: waveform data enters BigDAWG through S-Store, is
processed in real time, and "ultimately, the data ages out of S-Store and is
loaded into SciDB, for historical analysis".  The :class:`AgingPolicy` is the
piece that does that hand-off: it drains tuples evicted from a stream's
retention window and appends them to an array in the array engine, so
cross-system queries over hot + cold data see every tuple exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import SchemaError
from repro.common.types import DataType
from repro.engines.array.engine import ArrayEngine
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.array.storage import StoredArray
from repro.engines.streaming.streams import Stream, StreamTuple


@dataclass
class AgingPolicy:
    """Moves evicted stream tuples into a 2-D (series, sample) array.

    The stream's tuples must carry ``(series_id, sample_index, value)`` —
    the shape of the MIMIC waveform feed — where ``series_id`` selects the
    array row and ``sample_index`` the position along the time dimension.
    """

    stream: Stream
    array_engine: ArrayEngine
    array_name: str
    series_column: str = "signal_id"
    index_column: str = "sample_index"
    value_column: str = "value"
    max_series: int = 64
    max_samples: int = 500_000
    tuples_aged: int = 0
    _array: StoredArray | None = field(default=None, repr=False)

    def _ensure_array(self) -> StoredArray:
        if self._array is not None:
            return self._array
        if self.array_engine.has_object(self.array_name):
            self._array = self.array_engine.array(self.array_name)
            return self._array
        schema = ArraySchema(
            self.array_name,
            [
                Dimension("series", 0, self.max_series - 1, 1),
                Dimension("sample", 0, self.max_samples - 1, 10_000),
            ],
            [Attribute(self.value_column, DataType.FLOAT)],
        )
        self._array = self.array_engine.create_array(schema)
        return self._array

    def age_out(self) -> int:
        """Drain the stream's evicted tuples into the array. Returns tuples moved."""
        evicted = self.stream.drain_evicted()
        if not evicted:
            return 0
        array = self._ensure_array()
        series_idx = self.stream.schema.index_of(self.series_column)
        sample_idx = self.stream.schema.index_of(self.index_column)
        value_idx = self.stream.schema.index_of(self.value_column)
        buffer = array.buffer(self.value_column)
        present = array.present_mask
        moved = 0
        for item in evicted:
            series = int(item.values[series_idx])
            sample = int(item.values[sample_idx])
            if not (0 <= series < self.max_series and 0 <= sample < self.max_samples):
                raise SchemaError(
                    f"aged tuple (series={series}, sample={sample}) exceeds the array bounds"
                )
            buffer[series, sample] = float(item.values[value_idx])
            present[series, sample] = True
            moved += 1
        array._synopsis_dirty = True
        self.tuples_aged += moved
        return moved

    def hot_tuples(self, series_id: int) -> list[StreamTuple]:
        """Tuples for a series still inside the stream's retention window."""
        series_idx = self.stream.schema.index_of(self.series_column)
        return [t for t in self.stream.tuples() if int(t.values[series_idx]) == series_id]

    def cold_values(self, series_id: int) -> np.ndarray:
        """Values for a series already aged into the array (in sample order)."""
        array = self._ensure_array()
        row = array.buffer(self.value_column)[series_id]
        mask = array.present_mask[series_id]
        return row[mask]

    def combined_series(self, series_id: int) -> np.ndarray:
        """Hot + cold samples for one series, oldest first — the 'complete picture'."""
        sample_idx = self.stream.schema.index_of(self.index_column)
        value_idx = self.stream.schema.index_of(self.value_column)
        hot = sorted(
            ((int(t.values[sample_idx]), float(t.values[value_idx]))
             for t in self.hot_tuples(series_id)),
        )
        cold = self.cold_values(series_id)
        return np.concatenate([cold, np.array([v for _i, v in hot], dtype=float)])
