"""The streaming engine facade: the S-Store stand-in federated by BigDAWG.

The engine owns streams (time-varying tables), registers stored procedures
against them, ingests feeds through the ingestion module, executes procedures
tuple-at-a-time (or in small batches) under the transaction scheduler, logs
commits for lightweight recovery, and ages old tuples into the array engine.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.errors import DuplicateObjectError, ObjectNotFoundError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.engines.base import Engine, EngineCapability
from repro.engines.streaming.aging import AgingPolicy
from repro.engines.streaming.ingestion import FeedConnection, IngestionModule
from repro.engines.streaming.procedures import (
    ProcedureBody,
    ProcedureContext,
    StoredProcedure,
    TransactionScheduler,
)
from repro.engines.streaming.recovery import CommandLogRecord, RecoveryManager
from repro.engines.streaming.streams import SlidingWindow, Stream, StreamTuple


class StreamingEngine(Engine):
    """A transactional stream processing engine with tuple-at-a-time latency."""

    kind = "streaming"

    def __init__(self, name: str = "sstore", snapshot_interval: int = 500) -> None:
        super().__init__(name)
        self._streams: dict[str, Stream] = {}
        self._procedures: dict[str, StoredProcedure] = {}
        self._procedure_state: dict[str, dict[str, Any]] = {}
        self._by_input_stream: dict[str, list[str]] = {}
        self.scheduler = TransactionScheduler()
        self.recovery = RecoveryManager(snapshot_interval=snapshot_interval)
        self.ingestion = IngestionModule(on_batch=self._on_ingest)
        self.alerts: list[dict[str, Any]] = []
        self.aging_policies: list[AgingPolicy] = []

    # ------------------------------------------------------------- Engine API
    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.STREAMING | EngineCapability.TRANSACTIONS

    def list_objects(self) -> list[str]:
        return sorted(self._streams)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._streams

    def export_relation(self, name: str) -> Relation:
        """Export the live (retained) contents of a stream as a relation."""
        stream = self.stream(name)
        schema = Schema(
            [Column("timestamp", DataType.FLOAT)] + list(stream.schema.columns)
        )
        relation = Relation(schema)
        for item in stream.tuples():
            relation.append([item.timestamp, *item.values])
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        """Create a stream from a relation; a ``timestamp`` column orders the tuples."""
        retention = float(options.get("retention_seconds", 3600.0))
        names = relation.schema.names
        ts_column = options.get("timestamp_column", "timestamp" if "timestamp" in [n.lower() for n in names] else names[0])
        payload_columns = [c for c in relation.schema.columns if c.name.lower() != ts_column.lower()]
        stream = self.create_stream(name, Schema(payload_columns), retention, replace=True)
        ordered = sorted(relation.rows, key=lambda r: r[ts_column])
        for row in ordered:
            stream.append(float(row[ts_column]), [row[c.name] for c in payload_columns])

    def drop_object(self, name: str) -> None:
        if name.lower() not in self._streams:
            raise ObjectNotFoundError(f"stream {name!r} does not exist")
        del self._streams[name.lower()]

    # ---------------------------------------------------------------- streams
    def create_stream(self, name: str, schema: Schema, retention_seconds: float = 60.0,
                      replace: bool = False) -> Stream:
        key = name.lower()
        if key in self._streams and not replace:
            raise DuplicateObjectError(f"stream {name!r} already exists")
        stream = Stream(name, schema, retention_seconds)
        self._streams[key] = stream
        return stream

    def stream(self, name: str) -> Stream:
        key = name.lower()
        if key not in self._streams:
            raise ObjectNotFoundError(f"stream {name!r} does not exist in {self.name!r}")
        return self._streams[key]

    # ------------------------------------------------------------- procedures
    def register_procedure(
        self,
        name: str,
        input_stream: str,
        body: ProcedureBody,
        window_seconds: float | None = None,
        batch_size: int = 1,
    ) -> StoredProcedure:
        """Register a stored procedure triggered by new tuples on a stream."""
        if name in self._procedures:
            raise DuplicateObjectError(f"procedure {name!r} already exists")
        stream = self.stream(input_stream)
        window = SlidingWindow(stream, window_seconds) if window_seconds else None
        procedure = StoredProcedure(name, input_stream, body, window, batch_size)
        self._procedures[name] = procedure
        self._procedure_state[name] = {}
        self._by_input_stream.setdefault(input_stream.lower(), []).append(name)
        return procedure

    def procedure(self, name: str) -> StoredProcedure:
        if name not in self._procedures:
            raise ObjectNotFoundError(f"procedure {name!r} is not registered")
        return self._procedures[name]

    def procedure_state(self, name: str) -> dict[str, Any]:
        return self._procedure_state[name]

    # -------------------------------------------------------------- ingestion
    def attach_feed(self, connection: FeedConnection, stream_name: str) -> None:
        """Attach a feed connection to a stream."""
        self.ingestion.attach(connection, self.stream(stream_name))

    def pump(self, max_tuples: int = 1000) -> int:
        """Pump every attached feed once (triggering procedures per batch)."""
        pumped = self.ingestion.pump_all(max_tuples)
        if pumped:
            self.bump_write_version()
        return pumped

    def append(self, stream_name: str, timestamp: float, values: tuple | list) -> list[ProcedureContext]:
        """Append one tuple directly and run the procedures it triggers.

        This is the lowest-latency path: the tuple is processed immediately,
        which is what gives S-Store its tens-of-milliseconds responses.
        """
        stream = self.stream(stream_name)
        item = stream.append(timestamp, values)
        self.bump_write_version()
        return self._trigger(stream_name, [item], timestamp)

    def _on_ingest(self, stream_name: str, count: int, timestamp: float) -> None:
        stream = self.stream(stream_name)
        batch = list(stream.tuples())[-count:]
        self._trigger(stream_name, batch, timestamp)

    def _trigger(self, stream_name: str, batch: list[StreamTuple], timestamp: float) -> list[ProcedureContext]:
        contexts = []
        for proc_name in self._by_input_stream.get(stream_name.lower(), []):
            procedure = self._procedures[proc_name]
            state = self._procedure_state[proc_name]
            context = self.scheduler.execute(
                procedure, batch, timestamp, state, self._streams_by_name()
            )
            self.queries_executed += 1
            self.alerts.extend(context.alerts)
            self.recovery.record(
                CommandLogRecord(
                    transaction_id=context.transaction_id,
                    procedure=proc_name,
                    timestamp=timestamp,
                    batch=[(t.timestamp, t.values) for t in batch],
                )
            )
            self.recovery.maybe_snapshot(context.transaction_id, self._procedure_state)
            contexts.append(context)
        for policy in self.aging_policies:
            policy.age_out()
        return contexts

    def _streams_by_name(self) -> dict[str, Stream]:
        return {stream.name: stream for stream in self._streams.values()}

    # ----------------------------------------------------------------- aging
    def add_aging_policy(self, policy: AgingPolicy) -> None:
        """Register a policy that moves evicted tuples to the array engine."""
        self.aging_policies.append(policy)

    # --------------------------------------------------------------- recovery
    def simulate_crash_and_recover(self) -> int:
        """Rebuild procedure state from the latest snapshot plus the command log.

        Returns the number of command-log records replayed.  Procedure bodies
        are re-executed against the recovered state, so deterministic bodies
        end up in exactly the pre-crash state.
        """
        recovered_state = self.recovery.recovery_state()
        self._procedure_state = {name: recovered_state.get(name, {}) for name in self._procedures}
        replayed = 0
        for record in self.recovery.records_to_replay():
            procedure = self._procedures.get(record.procedure)
            if procedure is None:
                continue
            batch = [StreamTuple(ts, tuple(values)) for ts, values in record.batch]
            state = self._procedure_state[record.procedure]
            context = ProcedureContext(
                transaction_id=record.transaction_id,
                timestamp=record.timestamp,
                batch=batch,
                window=procedure.window,
                state=state,
            )
            procedure.body(context)
            replayed += 1
        return replayed

    # ------------------------------------------------------------------ stats
    def statistics(self) -> dict[str, Any]:
        return {
            "streams": {name: len(stream) for name, stream in self._streams.items()},
            "procedures": {name: proc.invocations for name, proc in self._procedures.items()},
            "committed_transactions": len(self.scheduler.committed),
            "aborted_transactions": self.scheduler.aborted,
            "alerts": len(self.alerts),
            "snapshots": len(self.recovery.snapshots),
        }


def windowed_average_procedure(column: str, threshold: float, alert_kind: str = "threshold") -> Callable[[ProcedureContext], None]:
    """A ready-made procedure body: alert when the window average crosses a threshold."""

    def body(context: ProcedureContext) -> None:
        if context.window is None:
            return
        average = context.window.aggregate(column, lambda vs: sum(vs) / len(vs), context.timestamp)
        context.state["last_average"] = average
        if average is not None and average > threshold:
            context.alert(kind=alert_kind, average=average, threshold=threshold)

    return body
