"""The ingestion module: absorbing data feeds into streams.

The paper lists "an ingestion module for absorbing data feeds directly from a
TCP/IP connection" as one of S-Store's extensions.  Real sockets would make
the benchmarks depend on the host's networking stack, so a
:class:`FeedConnection` models the connection as an ordered tuple source with
the same failure modes (malformed tuples, out-of-order arrival) and the same
per-tuple accounting, and :class:`IngestionModule` pulls from any number of
connections into named streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import IngestionError
from repro.engines.streaming.streams import Stream


@dataclass
class FeedConnection:
    """An ordered source of (timestamp, values) tuples, like one TCP connection."""

    name: str
    source: Iterator[tuple[float, tuple[Any, ...]]]
    tuples_delivered: int = 0
    tuples_rejected: int = 0

    @classmethod
    def from_iterable(cls, name: str, items: Iterable[tuple[float, tuple[Any, ...]]]) -> "FeedConnection":
        return cls(name=name, source=iter(items))

    def read(self, max_tuples: int) -> list[tuple[float, tuple[Any, ...]]]:
        """Pull up to ``max_tuples`` tuples off the connection."""
        batch = []
        for _ in range(max_tuples):
            try:
                batch.append(next(self.source))
            except StopIteration:
                break
        return batch


@dataclass
class IngestionModule:
    """Routes feed connections into streams, tolerating malformed tuples."""

    on_batch: Callable[[str, int, float], None] | None = None
    connections: dict[str, tuple[FeedConnection, str]] = field(default_factory=dict)

    def attach(self, connection: FeedConnection, stream: Stream) -> None:
        """Bind a connection to a destination stream."""
        self.connections[connection.name] = (connection, stream.name)
        self._streams = getattr(self, "_streams", {})
        self._streams[stream.name] = stream

    def pump(self, connection_name: str, max_tuples: int = 1000) -> int:
        """Pull one batch from a connection into its stream.

        Returns the number of tuples successfully ingested.  Malformed or
        out-of-order tuples are counted as rejected rather than failing the
        whole batch, which matches how a network listener must behave.
        """
        if connection_name not in self.connections:
            raise IngestionError(f"unknown feed connection: {connection_name!r}")
        connection, stream_name = self.connections[connection_name]
        stream = self._streams[stream_name]
        batch = connection.read(max_tuples)
        ingested = 0
        last_timestamp = 0.0
        for timestamp, values in batch:
            try:
                stream.append(timestamp, values)
                ingested += 1
                last_timestamp = timestamp
            except (IngestionError, Exception) as exc:  # noqa: BLE001
                if not isinstance(exc, IngestionError):
                    # Schema violations also count as rejections.
                    connection.tuples_rejected += 1
                    continue
                connection.tuples_rejected += 1
        connection.tuples_delivered += ingested
        if ingested and self.on_batch is not None:
            self.on_batch(stream_name, ingested, last_timestamp)
        return ingested

    def pump_all(self, max_tuples: int = 1000) -> int:
        """Pump every attached connection once; returns total tuples ingested."""
        return sum(self.pump(name, max_tuples) for name in list(self.connections))
