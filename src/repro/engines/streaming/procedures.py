"""Stored procedures and their transactional scheduler.

In S-Store all stream processing happens inside stored procedures executed as
serializable transactions (the H-Store inheritance).  A procedure is bound to
a stream; every batch of new tuples triggers one transaction that may read
windows, update state tables and emit tuples to downstream streams — forming
a dataflow graph of procedures with exactly-once, in-order semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.cancellation import check_cancelled
from repro.common.errors import TransactionError
from repro.engines.streaming.streams import SlidingWindow, Stream, StreamTuple


@dataclass
class ProcedureContext:
    """What a stored procedure sees during one invocation."""

    transaction_id: int
    timestamp: float
    batch: list[StreamTuple]
    window: SlidingWindow | None
    state: dict[str, Any]
    emitted: list[tuple[str, float, tuple]] = field(default_factory=list)
    alerts: list[dict[str, Any]] = field(default_factory=list)

    def emit(self, stream_name: str, timestamp: float, values: tuple) -> None:
        """Emit a tuple to a downstream stream (applied atomically on commit)."""
        self.emitted.append((stream_name, timestamp, values))

    def alert(self, **payload: Any) -> None:
        """Raise an application alert (e.g. abnormal heart rhythm detected)."""
        payload.setdefault("timestamp", self.timestamp)
        payload.setdefault("transaction_id", self.transaction_id)
        self.alerts.append(payload)


#: A stored procedure body: receives the invocation context, mutates state / emits.
ProcedureBody = Callable[[ProcedureContext], None]


@dataclass
class StoredProcedure:
    """A named procedure bound to an input stream (and optionally a window over it)."""

    name: str
    input_stream: str
    body: ProcedureBody
    window: SlidingWindow | None = None
    batch_size: int = 1

    invocations: int = 0
    aborts: int = 0


@dataclass
class CommittedTransaction:
    """A record of one committed procedure execution, used for recovery."""

    transaction_id: int
    procedure: str
    timestamp: float
    batch_size: int
    alerts: int


class TransactionScheduler:
    """Serializes stored-procedure executions and applies their effects atomically.

    The scheduler owns the monotonically increasing transaction ids, invokes
    procedure bodies, and only applies emitted tuples / alerts / state changes
    when the body finishes without raising.  A raising body counts as an abort
    and leaves state untouched.
    """

    def __init__(self) -> None:
        self._txn_counter = itertools.count(1)
        self.committed: list[CommittedTransaction] = []
        self.aborted = 0

    def execute(
        self,
        procedure: StoredProcedure,
        batch: list[StreamTuple],
        timestamp: float,
        state: dict[str, Any],
        downstream: dict[str, Stream],
    ) -> ProcedureContext:
        """Run one procedure invocation as a transaction; returns the context."""
        check_cancelled()
        txn_id = next(self._txn_counter)
        # The body works on a copy of the state so an abort leaves it untouched.
        scratch = dict(state)
        context = ProcedureContext(
            transaction_id=txn_id,
            timestamp=timestamp,
            batch=batch,
            window=procedure.window,
            state=scratch,
        )
        procedure.invocations += 1
        try:
            procedure.body(context)
        except Exception as exc:  # noqa: BLE001 - any body failure aborts the txn
            procedure.aborts += 1
            self.aborted += 1
            raise TransactionError(
                f"stored procedure {procedure.name!r} aborted: {exc}"
            ) from exc
        # Commit: apply state changes and emitted tuples in order.
        state.clear()
        state.update(scratch)
        for stream_name, ts, values in context.emitted:
            if stream_name not in downstream:
                raise TransactionError(
                    f"procedure {procedure.name!r} emitted to unknown stream {stream_name!r}"
                )
            downstream[stream_name].append(ts, values)
        self.committed.append(
            CommittedTransaction(
                transaction_id=txn_id,
                procedure=procedure.name,
                timestamp=timestamp,
                batch_size=len(batch),
                alerts=len(context.alerts),
            )
        )
        return context
