"""Lightweight recovery for the streaming engine.

S-Store replaces H-Store's heavyweight recovery with a lightweight scheme
suited to streams: periodic snapshots of procedure state plus a command log
of committed invocations; on restart the latest snapshot is restored and the
command log is replayed from that point.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CommandLogRecord:
    """One logged stored-procedure invocation (enough to re-execute it)."""

    transaction_id: int
    procedure: str
    timestamp: float
    batch: list[tuple[float, tuple]]


@dataclass
class Snapshot:
    """A point-in-time copy of all procedure state, tagged with the last txn applied."""

    last_transaction_id: int
    state: dict[str, dict[str, Any]]


@dataclass
class RecoveryManager:
    """Maintains the command log and snapshots; replays them after a crash."""

    snapshot_interval: int = 100
    log: list[CommandLogRecord] = field(default_factory=list)
    snapshots: list[Snapshot] = field(default_factory=list)

    def record(self, record: CommandLogRecord) -> None:
        """Append one committed invocation to the command log."""
        self.log.append(record)

    def maybe_snapshot(self, last_transaction_id: int, state: dict[str, dict[str, Any]]) -> bool:
        """Take a snapshot every ``snapshot_interval`` commits. Returns True if taken."""
        if last_transaction_id == 0:
            return False
        if last_transaction_id % self.snapshot_interval != 0:
            return False
        self.snapshots.append(Snapshot(last_transaction_id, copy.deepcopy(state)))
        # Truncate the log: records at or before the snapshot are no longer needed.
        self.log = [r for r in self.log if r.transaction_id > last_transaction_id]
        return True

    def latest_snapshot(self) -> Snapshot | None:
        return self.snapshots[-1] if self.snapshots else None

    def records_to_replay(self) -> list[CommandLogRecord]:
        """Command-log records newer than the latest snapshot, in commit order."""
        snapshot = self.latest_snapshot()
        floor = snapshot.last_transaction_id if snapshot else 0
        return sorted(
            (r for r in self.log if r.transaction_id > floor),
            key=lambda r: r.transaction_id,
        )

    def recovery_state(self) -> dict[str, dict[str, Any]]:
        """The state to restore before replay (deep copy of the latest snapshot)."""
        snapshot = self.latest_snapshot()
        if snapshot is None:
            return {}
        return copy.deepcopy(snapshot.state)
