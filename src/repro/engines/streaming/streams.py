"""Streams and windows represented as time-varying tables.

S-Store's core extension over H-Store is that streams and sliding windows are
first-class, *time-varying tables* (paper, Section 2.5).  A :class:`Stream`
is an append-only table of timestamped tuples with bounded retention; a
:class:`SlidingWindow` or :class:`TumblingWindow` is a view over the tail of a
stream that stored procedures read transactionally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.common.errors import IngestionError, SchemaError
from repro.common.schema import Row, Schema


@dataclass(frozen=True)
class StreamTuple:
    """One timestamped tuple flowing through a stream."""

    timestamp: float
    values: tuple[Any, ...]

    def as_row(self, schema: Schema) -> Row:
        return Row(schema, self.values)


class Stream:
    """An append-only, time-varying table with bounded retention.

    Tuples must arrive in non-decreasing timestamp order (the ingestion module
    enforces ordering per feed).  Old tuples are evicted once the stream
    exceeds ``retention_seconds``, which is what drives aging into the
    historical array store.
    """

    def __init__(self, name: str, schema: Schema, retention_seconds: float = 60.0) -> None:
        if retention_seconds <= 0:
            raise SchemaError("retention must be positive")
        self.name = name
        self.schema = schema
        self.retention_seconds = retention_seconds
        self._tuples: deque[StreamTuple] = deque()
        self._evicted: list[StreamTuple] = []
        self.total_appended = 0

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def latest_timestamp(self) -> float | None:
        return self._tuples[-1].timestamp if self._tuples else None

    @property
    def oldest_timestamp(self) -> float | None:
        return self._tuples[0].timestamp if self._tuples else None

    def append(self, timestamp: float, values: tuple[Any, ...] | list[Any]) -> StreamTuple:
        """Append one tuple; evicts anything older than the retention horizon."""
        if self._tuples and timestamp < self._tuples[-1].timestamp:
            raise IngestionError(
                f"out-of-order tuple: {timestamp} < {self._tuples[-1].timestamp} on stream {self.name!r}"
            )
        validated = self.schema.validate_row(list(values))
        item = StreamTuple(timestamp, validated)
        self._tuples.append(item)
        self.total_appended += 1
        self._evict(timestamp)
        return item

    def _evict(self, now: float) -> None:
        horizon = now - self.retention_seconds
        while self._tuples and self._tuples[0].timestamp < horizon:
            self._evicted.append(self._tuples.popleft())

    def drain_evicted(self) -> list[StreamTuple]:
        """Return and clear tuples that have aged out (consumed by the aging policy)."""
        evicted, self._evicted = self._evicted, []
        return evicted

    def tuples(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def since(self, timestamp: float) -> list[StreamTuple]:
        """Tuples with timestamp >= the given value (within retention)."""
        return [t for t in self._tuples if t.timestamp >= timestamp]

    def rows(self) -> Iterator[Row]:
        for item in self._tuples:
            yield item.as_row(self.schema)


class SlidingWindow:
    """A sliding window over a stream: the last ``size_seconds`` of tuples,
    advanced every ``slide_seconds``.
    """

    def __init__(self, stream: Stream, size_seconds: float, slide_seconds: float | None = None) -> None:
        if size_seconds <= 0:
            raise SchemaError("window size must be positive")
        self.stream = stream
        self.size_seconds = size_seconds
        self.slide_seconds = slide_seconds if slide_seconds is not None else size_seconds
        self._last_fire: float | None = None

    def contents(self, now: float | None = None) -> list[StreamTuple]:
        """Tuples inside the window as of ``now`` (default: stream's latest timestamp)."""
        reference = now if now is not None else self.stream.latest_timestamp
        if reference is None:
            return []
        low = reference - self.size_seconds
        return [t for t in self.stream.tuples() if low < t.timestamp <= reference]

    def should_fire(self, now: float) -> bool:
        """Whether the window's slide interval has elapsed since it last fired."""
        if self._last_fire is None:
            return True
        return now - self._last_fire >= self.slide_seconds

    def mark_fired(self, now: float) -> None:
        self._last_fire = now

    def aggregate(self, column: str, function: Callable[[list[float]], float],
                  now: float | None = None) -> float | None:
        """Apply an aggregate function to one column of the window contents."""
        index = self.stream.schema.index_of(column)
        values = [t.values[index] for t in self.contents(now) if t.values[index] is not None]
        if not values:
            return None
        return function(values)


class TumblingWindow(SlidingWindow):
    """A tumbling window: size == slide, so consecutive windows do not overlap."""

    def __init__(self, stream: Stream, size_seconds: float) -> None:
        super().__init__(stream, size_seconds, size_seconds)

    def contents(self, now: float | None = None) -> list[StreamTuple]:
        reference = now if now is not None else self.stream.latest_timestamp
        if reference is None:
            return []
        # Align to fixed, non-overlapping boundaries.
        window_index = int(reference // self.size_seconds)
        low = window_index * self.size_seconds
        high = low + self.size_seconds
        return [t for t in self.stream.tuples() if low <= t.timestamp < high]
