"""The TileDB prototype engine: arrays built from irregular dense/sparse tiles."""

from repro.engines.tiledb.engine import TileDBArray, TileDBArraySchema, TileDBEngine
from repro.engines.tiledb.tiles import DenseTile, SparseTile, Tile, TileExtent

__all__ = [
    "DenseTile",
    "SparseTile",
    "Tile",
    "TileDBArray",
    "TileDBArraySchema",
    "TileDBEngine",
    "TileExtent",
]
