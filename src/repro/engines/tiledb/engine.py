"""The TileDB prototype engine: arrays built from irregular dense/sparse tiles.

The engine partitions each array's domain into fixed-extent tiles but lets
every tile choose (and switch) its own representation based on observed
density — the "irregular subarray that can be optimized for dense or sparse
objects" idea.  The complex-analytics interface can read matrices straight
out of it, which is the tight linear-algebra coupling Section 2.4 motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.common.errors import DuplicateObjectError, ObjectNotFoundError, SchemaError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.engines.base import Engine, EngineCapability
from repro.engines.tiledb.tiles import (
    DenseTile,
    SparseTile,
    Tile,
    TileExtent,
    TileStatistics,
    choose_representation,
)


@dataclass
class TileDBArraySchema:
    """Domain (inclusive bounds per dimension) plus tile extents."""

    name: str
    domain: tuple[tuple[int, int], ...]
    tile_extents: tuple[int, ...]
    attribute: str = "value"
    sparse_threshold: float = 0.2

    def __post_init__(self) -> None:
        if len(self.domain) != len(self.tile_extents):
            raise SchemaError("one tile extent per dimension is required")
        for (low, high), extent in zip(self.domain, self.tile_extents):
            if high < low:
                raise SchemaError("domain high bound below low bound")
            if extent <= 0:
                raise SchemaError("tile extents must be positive")

    @property
    def ndim(self) -> int:
        return len(self.domain)


class TileDBArray:
    """One tiled array."""

    def __init__(self, schema: TileDBArraySchema) -> None:
        self.schema = schema
        self._tiles: dict[tuple[int, ...], Tile] = {}
        self.representation_switches = 0

    # ----------------------------------------------------------------- tiling
    def _tile_index(self, coordinates: tuple[int, ...]) -> tuple[int, ...]:
        index = []
        for coord, (low, high), extent in zip(coordinates, self.schema.domain, self.schema.tile_extents):
            if not low <= coord <= high:
                raise SchemaError(f"coordinate {coord} outside domain [{low}, {high}]")
            index.append((coord - low) // extent)
        return tuple(index)

    def _tile_extent(self, tile_index: tuple[int, ...]) -> TileExtent:
        lows = []
        highs = []
        for index, (low, high), extent in zip(tile_index, self.schema.domain, self.schema.tile_extents):
            tile_low = low + index * extent
            tile_high = min(tile_low + extent - 1, high)
            lows.append(tile_low)
            highs.append(tile_high)
        return TileExtent(tuple(lows), tuple(highs))

    def _tile_for(self, coordinates: tuple[int, ...]) -> Tile:
        index = self._tile_index(coordinates)
        if index not in self._tiles:
            self._tiles[index] = choose_representation(
                self._tile_extent(index), expected_density=0.0,
                sparse_threshold=self.schema.sparse_threshold,
            )
        return self._tiles[index]

    # ------------------------------------------------------------------ access
    def write(self, coordinates: tuple[int, ...], value: float) -> None:
        tile = self._tile_for(coordinates)
        tile.write(coordinates, value)
        # Promote a sparse tile to dense once it crosses the density threshold.
        if tile.is_sparse and tile.density >= self.schema.sparse_threshold:
            index = self._tile_index(coordinates)
            self._tiles[index] = tile.to_dense()  # type: ignore[union-attr]
            self.representation_switches += 1

    def read(self, coordinates: tuple[int, ...]) -> float | None:
        index = self._tile_index(coordinates)
        tile = self._tiles.get(index)
        if tile is None:
            return None
        return tile.read(coordinates)

    def write_block(self, start: tuple[int, ...], block: np.ndarray) -> int:
        """Write a dense block starting at ``start``; returns cells written."""
        count = 0
        for offset in np.ndindex(*block.shape):
            coordinates = tuple(s + o for s, o in zip(start, offset))
            self.write(coordinates, float(block[offset]))
            count += 1
        return count

    def slice_box(self, low: tuple[int, ...], high: tuple[int, ...]) -> np.ndarray:
        """Read the inclusive box [low, high] as a dense block (zeros where empty)."""
        shape = tuple(h - l + 1 for l, h in zip(low, high))
        out = np.zeros(shape)
        for index, tile in self._tiles.items():
            if not tile.extent.overlaps(low, high):
                continue
            for coordinates, value in tile.cells():
                if all(l <= c <= h for c, l, h in zip(coordinates, low, high)):
                    out[tuple(c - l for c, l in zip(coordinates, low))] = value
        return out

    def cells(self) -> Iterator[tuple[tuple[int, ...], float]]:
        for index in sorted(self._tiles):
            yield from self._tiles[index].cells()

    @property
    def cell_count(self) -> int:
        return sum(tile.cell_count for tile in self._tiles.values())

    def tile_statistics(self) -> list[TileStatistics]:
        """Per-tile stats: density, representation, min/max/total."""
        stats = []
        for index in sorted(self._tiles):
            tile = self._tiles[index]
            values = tile.values()
            stats.append(
                TileStatistics(
                    extent=tile.extent,
                    cell_count=tile.cell_count,
                    density=tile.density,
                    is_sparse=tile.is_sparse,
                    minimum=float(values.min()) if values.size else None,
                    maximum=float(values.max()) if values.size else None,
                    total=float(values.sum()) if values.size else 0.0,
                )
            )
        return stats

    def to_matrix(self) -> np.ndarray:
        """The whole domain as a dense matrix (for the linear-algebra coupling)."""
        low = tuple(d[0] for d in self.schema.domain)
        high = tuple(d[1] for d in self.schema.domain)
        return self.slice_box(low, high)


class TileDBEngine(Engine):
    """Engine facade exposing tiled arrays to the polystore."""

    kind = "tiledb"

    def __init__(self, name: str = "tiledb") -> None:
        super().__init__(name)
        self._arrays: dict[str, TileDBArray] = {}

    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.ARRAY | EngineCapability.LINEAR_ALGEBRA

    def list_objects(self) -> list[str]:
        return sorted(self._arrays)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._arrays

    def create_array(self, schema: TileDBArraySchema, replace: bool = False) -> TileDBArray:
        key = schema.name.lower()
        if key in self._arrays and not replace:
            raise DuplicateObjectError(f"tiledb array {schema.name!r} already exists")
        array = TileDBArray(schema)
        self._arrays[key] = array
        # Native mutation path: invalidate any cached results over this engine.
        self.bump_write_version()
        return array

    def write(self, name: str, coordinates: tuple[int, ...], value: float) -> None:
        """Engine-level cell write; bumps the write version for cache safety.

        Writing through :meth:`array`'s returned handle bypasses the engine
        and therefore the runtime's result-cache invalidation; callers that
        mutate a stored array should go through this method (or
        :meth:`write_block`) instead.
        """
        self.array(name).write(coordinates, value)
        self.bump_write_version()

    def write_block(self, name: str, start: tuple[int, ...], block: np.ndarray) -> int:
        """Engine-level block write; bumps the write version for cache safety."""
        count = self.array(name).write_block(start, block)
        self.bump_write_version()
        return count

    def array(self, name: str) -> TileDBArray:
        key = name.lower()
        if key not in self._arrays:
            raise ObjectNotFoundError(f"tiledb array {name!r} does not exist")
        return self._arrays[key]

    def export_relation(self, name: str) -> Relation:
        array = self.array(name)
        columns = [Column(f"d{i}", DataType.INTEGER) for i in range(array.schema.ndim)]
        columns.append(Column(array.schema.attribute, DataType.FLOAT))
        relation = Relation(Schema(columns))
        for coordinates, value in array.cells():
            relation.append(list(coordinates) + [value])
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        names = relation.schema.names
        dim_columns = options.get("dimensions") or names[:-1]
        value_column = options.get("value_column", names[-1])
        rows = relation.rows
        if not rows:
            raise SchemaError("cannot infer a tiledb domain from an empty relation")
        domain = []
        for dim in dim_columns:
            values = [int(row[dim]) for row in rows]
            domain.append((min(values), max(values)))
        extents = tuple(
            max(1, (high - low + 1) // 10) for low, high in domain
        )
        schema = TileDBArraySchema(name, tuple(domain), extents)
        array = self.create_array(schema, replace=bool(options.get("replace", True)))
        for row in rows:
            coordinates = tuple(int(row[dim]) for dim in dim_columns)
            array.write(coordinates, float(row[value_column]))

    def drop_object(self, name: str) -> None:
        if name.lower() not in self._arrays:
            raise ObjectNotFoundError(f"tiledb array {name!r} does not exist")
        del self._arrays[name.lower()]

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """O(1) rename: re-key the tiled array (the CAST commit primitive)."""
        old_key, new_key = old_name.lower(), new_name.lower()
        if old_key == new_key:
            return
        if old_key not in self._arrays:
            raise ObjectNotFoundError(f"tiledb array {old_name!r} does not exist")
        if new_key in self._arrays and not replace:
            raise DuplicateObjectError(f"tiledb array {new_name!r} already exists")
        array = self._arrays.pop(old_key)
        array.schema.name = new_name
        self._arrays[new_key] = array
