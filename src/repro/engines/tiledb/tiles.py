"""Tiles: TileDB's fundamental unit of storage and computation.

A tile is an irregular subarray that can be optimized for dense or sparse
content (paper, Section 2.5).  Dense tiles store a contiguous numpy block;
sparse tiles store coordinate/value pairs.  Both expose the same interface so
the array above them does not care which representation a region uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class TileExtent:
    """The inclusive coordinate box a tile covers."""

    low: tuple[int, ...]
    high: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise SchemaError("tile extent bounds must have the same arity")
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise SchemaError(f"tile extent low {lo} exceeds high {hi}")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(hi - lo + 1 for lo, hi in zip(self.low, self.high))

    @property
    def cell_capacity(self) -> int:
        capacity = 1
        for size in self.shape:
            capacity *= size
        return capacity

    def contains(self, coordinates: tuple[int, ...]) -> bool:
        return all(lo <= c <= hi for c, lo, hi in zip(coordinates, self.low, self.high))

    def overlaps(self, low: tuple[int, ...], high: tuple[int, ...]) -> bool:
        return all(lo <= h and l <= hi for lo, hi, l, h in zip(self.low, self.high, low, high))


class Tile:
    """Common interface of dense and sparse tiles."""

    def __init__(self, extent: TileExtent) -> None:
        self.extent = extent

    @property
    def cell_count(self) -> int:
        raise NotImplementedError

    @property
    def is_sparse(self) -> bool:
        raise NotImplementedError

    def write(self, coordinates: tuple[int, ...], value: float) -> None:
        raise NotImplementedError

    def read(self, coordinates: tuple[int, ...]) -> float | None:
        raise NotImplementedError

    def cells(self) -> Iterator[tuple[tuple[int, ...], float]]:
        raise NotImplementedError

    @property
    def density(self) -> float:
        """Fraction of the extent's capacity that holds a value."""
        return self.cell_count / self.extent.cell_capacity

    def values(self) -> np.ndarray:
        return np.array([v for _c, v in self.cells()], dtype=float)


class DenseTile(Tile):
    """A tile storing a contiguous block; best when most cells are populated."""

    def __init__(self, extent: TileExtent) -> None:
        super().__init__(extent)
        self._data = np.zeros(extent.shape, dtype=float)
        self._present = np.zeros(extent.shape, dtype=bool)

    @property
    def cell_count(self) -> int:
        return int(self._present.sum())

    @property
    def is_sparse(self) -> bool:
        return False

    def _index(self, coordinates: tuple[int, ...]) -> tuple[int, ...]:
        if not self.extent.contains(coordinates):
            raise SchemaError(f"coordinates {coordinates} outside tile extent")
        return tuple(c - lo for c, lo in zip(coordinates, self.extent.low))

    def write(self, coordinates: tuple[int, ...], value: float) -> None:
        index = self._index(coordinates)
        self._data[index] = value
        self._present[index] = True

    def read(self, coordinates: tuple[int, ...]) -> float | None:
        index = self._index(coordinates)
        if not self._present[index]:
            return None
        return float(self._data[index])

    def cells(self) -> Iterator[tuple[tuple[int, ...], float]]:
        for index in np.argwhere(self._present):
            coordinates = tuple(int(i) + lo for i, lo in zip(index, self.extent.low))
            yield coordinates, float(self._data[tuple(index)])

    def block(self) -> np.ndarray:
        """The dense block (zeros where no value was written)."""
        return self._data.copy()


class SparseTile(Tile):
    """A tile storing (coordinate → value) pairs; best for mostly-empty regions."""

    def __init__(self, extent: TileExtent) -> None:
        super().__init__(extent)
        self._cells: dict[tuple[int, ...], float] = {}

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    @property
    def is_sparse(self) -> bool:
        return True

    def write(self, coordinates: tuple[int, ...], value: float) -> None:
        if not self.extent.contains(coordinates):
            raise SchemaError(f"coordinates {coordinates} outside tile extent")
        self._cells[coordinates] = value

    def read(self, coordinates: tuple[int, ...]) -> float | None:
        return self._cells.get(coordinates)

    def cells(self) -> Iterator[tuple[tuple[int, ...], float]]:
        yield from sorted(self._cells.items())

    def to_dense(self) -> DenseTile:
        """Convert to a dense tile (used when density crosses the threshold)."""
        dense = DenseTile(self.extent)
        for coordinates, value in self._cells.items():
            dense.write(coordinates, value)
        return dense


@dataclass
class TileStatistics:
    """Per-tile statistics the engine uses to pick representations."""

    extent: TileExtent
    cell_count: int
    density: float
    is_sparse: bool
    minimum: float | None = None
    maximum: float | None = None
    total: float = 0.0
    representation_switches: int = field(default=0)


def choose_representation(extent: TileExtent, expected_density: float,
                          sparse_threshold: float = 0.2) -> Tile:
    """Pick a dense or sparse tile based on expected density."""
    if expected_density >= sparse_threshold:
        return DenseTile(extent)
    return SparseTile(extent)
