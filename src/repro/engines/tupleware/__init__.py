"""The Tupleware prototype engine: compiled UDF workflows."""

from repro.engines.tupleware.compiler import CompiledExecutor, ExecutionReport, InterpretedExecutor
from repro.engines.tupleware.engine import TuplewareEngine
from repro.engines.tupleware.workflow import Stage, UdfStatistics, Workflow

__all__ = [
    "CompiledExecutor",
    "ExecutionReport",
    "InterpretedExecutor",
    "Stage",
    "TuplewareEngine",
    "UdfStatistics",
    "Workflow",
]
