"""Two executors for Tupleware workflows: compiled/fused vs. interpreted.

* :class:`CompiledExecutor` — the Tupleware path.  Stages are fused into a
  single pass over vectorized numpy buffers: filters become boolean masks,
  maps become array expressions, the reduce happens on the surviving vector.
  No per-record dispatch, no intermediate materialization.

* :class:`InterpretedExecutor` — the Hadoop-style baseline.  Every stage is a
  separate pass that materializes its full intermediate result, and each
  record goes through Python-level function dispatch, mimicking per-record
  (de)serialization and task overhead with an optional per-record penalty.

The benchmark for CLAIM-4 runs the same workflow through both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.common.errors import ExecutionError
from repro.engines.tupleware.workflow import Stage, Workflow


@dataclass
class ExecutionReport:
    """What an executor did: the result plus operational counters."""

    result: Any
    records_in: int
    records_out: int
    stages_executed: int
    intermediate_materializations: int
    fused: bool


class CompiledExecutor:
    """Fuses the workflow into one vectorized pass (the Tupleware strategy)."""

    def execute(self, workflow: Workflow, data: Sequence[float] | np.ndarray) -> ExecutionReport:
        workflow.validate()
        values = np.asarray(data, dtype=float)
        records_in = int(values.size)
        reduce_stage: Stage | None = None
        # Single pass: maintain the current vector; apply each stage vectorized.
        for stage in workflow.stages:
            if stage.kind == "reduce":
                reduce_stage = stage
                break
            fn = stage.vector_fn
            if fn is None:
                # Fall back to vectorizing the scalar function (still one pass).
                fn = np.vectorize(stage.scalar_fn)
            if stage.kind == "map":
                values = np.asarray(fn(values), dtype=float)
            elif stage.kind == "filter":
                mask = np.asarray(fn(values), dtype=bool)
                values = values[mask]
            else:
                raise ExecutionError(f"unknown stage kind {stage.kind!r}")
        result: Any = values
        if reduce_stage is not None:
            if reduce_stage.vector_fn is not None:
                result = reduce_stage.vector_fn(values)
            else:
                accumulator = reduce_stage.initial
                for value in values:
                    accumulator = reduce_stage.scalar_fn(accumulator, value)
                result = accumulator
        return ExecutionReport(
            result=result,
            records_in=records_in,
            records_out=int(values.size),
            stages_executed=len(workflow.stages),
            intermediate_materializations=0,
            fused=True,
        )


class InterpretedExecutor:
    """Stage-at-a-time, record-at-a-time execution (the Hadoop-style baseline).

    ``per_record_overhead`` adds a fixed amount of wasted Python work per record
    per stage, standing in for serialization and task-launch costs.
    """

    def __init__(self, per_record_overhead: int = 0) -> None:
        self._overhead = per_record_overhead

    def execute(self, workflow: Workflow, data: Sequence[float] | np.ndarray) -> ExecutionReport:
        workflow.validate()
        records = [float(v) for v in np.asarray(data, dtype=float).ravel()]
        records_in = len(records)
        materializations = 0
        result: Any = records
        for stage in workflow.stages:
            if stage.kind == "map":
                next_records = []
                for record in records:
                    self._burn(record)
                    next_records.append(stage.scalar_fn(record))
                records = next_records
                materializations += 1
            elif stage.kind == "filter":
                next_records = []
                for record in records:
                    self._burn(record)
                    if stage.scalar_fn(record):
                        next_records.append(record)
                records = next_records
                materializations += 1
            elif stage.kind == "reduce":
                accumulator = stage.initial
                for record in records:
                    self._burn(record)
                    accumulator = stage.scalar_fn(accumulator, record)
                result = accumulator
                break
            else:
                raise ExecutionError(f"unknown stage kind {stage.kind!r}")
            result = records
        return ExecutionReport(
            result=result,
            records_in=records_in,
            records_out=len(records),
            stages_executed=len(workflow.stages),
            intermediate_materializations=materializations,
            fused=False,
        )

    def _burn(self, record: float) -> float:
        total = record
        for _ in range(self._overhead):
            total = total * 1.0000001 + 0.0
        return total
