"""The Tupleware prototype engine: compiled UDF workflows over in-memory datasets."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.cancellation import check_cancelled
from repro.common.errors import DuplicateObjectError, ObjectNotFoundError
from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.engines.base import Engine, EngineCapability
from repro.engines.tupleware.compiler import CompiledExecutor, ExecutionReport, InterpretedExecutor
from repro.engines.tupleware.workflow import Workflow


class TuplewareEngine(Engine):
    """Stores numeric datasets and runs UDF workflows over them, compiled by default."""

    kind = "tupleware"

    def __init__(self, name: str = "tupleware") -> None:
        super().__init__(name)
        self._datasets: dict[str, np.ndarray] = {}
        self._compiled = CompiledExecutor()
        self._interpreted = InterpretedExecutor()

    @property
    def capabilities(self) -> EngineCapability:
        return EngineCapability.UDF

    # ------------------------------------------------------------- Engine API
    def list_objects(self) -> list[str]:
        return sorted(self._datasets)

    def has_object(self, name: str) -> bool:
        return name.lower() in self._datasets

    def export_relation(self, name: str) -> Relation:
        data = self.dataset(name)
        schema = Schema([Column("index", DataType.INTEGER), Column("value", DataType.FLOAT)])
        relation = Relation(schema)
        for i, value in enumerate(data.ravel()):
            relation.append([i, float(value)])
        return relation

    def import_relation(self, name: str, relation: Relation, **options: Any) -> None:
        value_column = options.get("value_column", relation.schema.names[-1])
        values = [float(row[value_column]) for row in relation if row[value_column] is not None]
        self.load(name, values, replace=bool(options.get("replace", True)))

    def drop_object(self, name: str) -> None:
        if name.lower() not in self._datasets:
            raise ObjectNotFoundError(f"dataset {name!r} does not exist")
        del self._datasets[name.lower()]

    def rename_object(self, old_name: str, new_name: str,
                      replace: bool = True) -> None:
        """O(1) rename: re-key the dataset (the CAST commit primitive)."""
        old_key, new_key = old_name.lower(), new_name.lower()
        if old_key == new_key:
            return
        if old_key not in self._datasets:
            raise ObjectNotFoundError(f"dataset {old_name!r} does not exist")
        if new_key in self._datasets and not replace:
            raise DuplicateObjectError(f"dataset {new_name!r} already exists")
        self._datasets[new_key] = self._datasets.pop(old_key)

    # ----------------------------------------------------------------- datasets
    def load(self, name: str, data: Sequence[float] | np.ndarray, replace: bool = False) -> None:
        key = name.lower()
        if key in self._datasets and not replace:
            raise DuplicateObjectError(f"dataset {name!r} already exists")
        self._datasets[key] = np.asarray(data, dtype=float)
        # Native mutation path: invalidate any cached results over this engine.
        self.bump_write_version()

    def dataset(self, name: str) -> np.ndarray:
        key = name.lower()
        if key not in self._datasets:
            raise ObjectNotFoundError(f"dataset {name!r} does not exist in {self.name!r}")
        return self._datasets[key]

    # ----------------------------------------------------------------- execute
    def execute(self, workflow: Workflow, dataset: str, compiled: bool = True) -> ExecutionReport:
        """Run a workflow over a stored dataset, compiled (default) or interpreted."""
        check_cancelled()
        self.queries_executed += 1
        data = self.dataset(dataset)
        executor = self._compiled if compiled else self._interpreted
        return executor.execute(workflow, data)

    def compare_strategies(self, workflow: Workflow, dataset: str) -> dict[str, ExecutionReport]:
        """Run the same workflow through both executors (used by the benchmarks)."""
        return {
            "compiled": self.execute(workflow, dataset, compiled=True),
            "interpreted": self.execute(workflow, dataset, compiled=False),
        }
