"""Tupleware-style UDF workflows.

A workflow is a chain of map / filter / reduce stages over a dataset of
records.  Tupleware's claim is that *compiling* the whole chain into one tight
program — instead of interpreting each stage record-at-a-time with
materialization in between, as Hadoop-style systems do — removes runtime
overhead worth up to two orders of magnitude.  The two execution strategies in
:mod:`repro.engines.tupleware.compiler` reproduce exactly that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class UdfStatistics:
    """Statistics Tupleware gathers about a UDF to drive low-level optimization."""

    name: str
    predicted_cpu_cycles: int
    vectorizable: bool
    selectivity: float = 1.0


@dataclass
class Stage:
    """One workflow stage."""

    kind: str  # map | filter | reduce
    #: Row-at-a-time function (record -> record, record -> bool, or (acc, record) -> acc).
    scalar_fn: Callable[..., Any]
    #: Vectorized numpy equivalent used by the compiling executor (array -> array / mask / scalar).
    vector_fn: Callable[..., Any] | None = None
    statistics: UdfStatistics | None = None
    initial: Any = None  # reduce only


@dataclass
class Workflow:
    """A declared chain of stages, independent of how it will be executed."""

    name: str
    stages: list[Stage] = field(default_factory=list)

    def map(self, scalar_fn: Callable[[Any], Any], vector_fn: Callable | None = None,
            statistics: UdfStatistics | None = None) -> "Workflow":
        """Append a map stage (record → record)."""
        self.stages.append(Stage("map", scalar_fn, vector_fn, statistics))
        return self

    def filter(self, scalar_fn: Callable[[Any], bool], vector_fn: Callable | None = None,
               statistics: UdfStatistics | None = None) -> "Workflow":
        """Append a filter stage (record → keep?)."""
        self.stages.append(Stage("filter", scalar_fn, vector_fn, statistics))
        return self

    def reduce(self, scalar_fn: Callable[[Any, Any], Any], initial: Any = 0.0,
               vector_fn: Callable | None = None,
               statistics: UdfStatistics | None = None) -> "Workflow":
        """Append a terminal reduce stage ((accumulator, record) → accumulator)."""
        self.stages.append(Stage("reduce", scalar_fn, vector_fn, statistics, initial=initial))
        return self

    def validate(self) -> None:
        """A reduce stage, if present, must be last."""
        for i, stage in enumerate(self.stages):
            if stage.kind == "reduce" and i != len(self.stages) - 1:
                raise ValueError("reduce must be the final stage of a workflow")

    @property
    def total_predicted_cycles(self) -> int:
        """Sum of predicted CPU cycles over stages with statistics."""
        return sum(s.statistics.predicted_cpu_cycles for s in self.stages if s.statistics)
