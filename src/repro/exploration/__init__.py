"""Exploratory analysis systems: SeeDB, Searchlight and the ScalaR browser."""

from repro.exploration.scalar_browser import BrowserStatistics, ScalarBrowser, Tile, TileKey
from repro.exploration.searchlight import (
    ConstraintQuery,
    RangeConstraint,
    SearchReport,
    Searchlight,
    SolutionWindow,
)
from repro.exploration.seedb import (
    SeeDB,
    SeeDBReport,
    ViewCandidate,
    ViewResult,
    deviation_utility,
)

__all__ = [
    "BrowserStatistics",
    "ConstraintQuery",
    "RangeConstraint",
    "ScalarBrowser",
    "SearchReport",
    "Searchlight",
    "SeeDB",
    "SeeDBReport",
    "SolutionWindow",
    "Tile",
    "TileKey",
    "ViewCandidate",
    "ViewResult",
    "deviation_utility",
]
