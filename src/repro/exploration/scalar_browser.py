"""ScalaR: scalable detail-on-demand browsing with prefetching (Section 1.1).

ScalaR is the pan/zoom interface over the whole 26,000-patient dataset: a
top-level view shows coarse aggregates, and drilling down fetches
progressively finer resolutions.  Because "small vis" (load everything into
RAM) cannot survive at Big Data scale, ScalaR fetches *tiles* of the current
resolution on demand and *prefetches the tiles a user is likely to pan to
next* so gestures feel interactive.

The implementation browses a 2-D (signal x sample) array through the array
engine's ``regrid`` operator: resolution level L aggregates blocks of
``base_block * 2**L`` samples.  A small LRU tile cache plus a
momentum-based prefetcher (fetch the neighbours in the direction of the last
pan) provide the latency contrast CLAIM-7 measures.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.engines.array import operators as ops
from repro.engines.array.storage import StoredArray


@dataclass(frozen=True)
class TileKey:
    """Identifies one tile: resolution level plus tile row/column."""

    level: int
    row: int
    col: int


@dataclass
class Tile:
    """One fetched tile: a small dense block of aggregated values."""

    key: TileKey
    values: np.ndarray
    fetched_in: float  # seconds spent computing it (0 for cache hits)


@dataclass
class BrowserStatistics:
    requests: int = 0
    cache_hits: int = 0
    prefetch_hits: int = 0
    tiles_computed: int = 0
    total_fetch_seconds: float = 0.0
    per_gesture_seconds: list[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def mean_gesture_seconds(self) -> float:
        return float(np.mean(self.per_gesture_seconds)) if self.per_gesture_seconds else 0.0


class ScalarBrowser:
    """Detail-on-demand browser over a 2-D stored array."""

    def __init__(self, array: StoredArray, attribute: str = "value",
                 tile_samples: int = 64, base_block: int = 4,
                 max_levels: int = 5, cache_capacity: int = 128,
                 prefetch: bool = True) -> None:
        self.array = array
        self.attribute = attribute
        self.tile_samples = tile_samples
        self.base_block = base_block
        self.max_levels = max_levels
        self.prefetch_enabled = prefetch
        self._cache: OrderedDict[TileKey, Tile] = OrderedDict()
        self._cache_capacity = cache_capacity
        self._prefetched: set[TileKey] = set()
        self._levels: dict[int, np.ndarray] = {}
        self._last_move = 0  # -1 pan left, +1 pan right
        self.stats = BrowserStatistics()

    # ---------------------------------------------------------------- resolution
    def _level_matrix(self, level: int) -> np.ndarray:
        """The whole array regridded to one resolution level (computed lazily)."""
        if level not in self._levels:
            block = self.base_block * (2 ** level)
            regridded = ops.regrid(self.array, self.attribute, (1, block), "avg")
            name = regridded.schema.attributes[0].name
            self._levels[level] = np.asarray(regridded.buffer(name), dtype=float)
        return self._levels[level]

    def level_shape(self, level: int) -> tuple[int, int]:
        return self._level_matrix(level).shape

    def tiles_at_level(self, level: int) -> tuple[int, int]:
        """(tile rows, tile columns) available at a resolution level."""
        rows, cols = self.level_shape(level)
        return rows, (cols + self.tile_samples - 1) // self.tile_samples

    # ------------------------------------------------------------------ fetching
    def fetch_tile(self, key: TileKey, count_as_gesture: bool = True) -> Tile:
        """Fetch one tile, serving from cache when possible."""
        started = time.perf_counter()
        if count_as_gesture:
            self.stats.requests += 1
        if key in self._cache:
            tile = self._cache.pop(key)
            self._cache[key] = tile  # LRU refresh
            if count_as_gesture:
                self.stats.cache_hits += 1
                if key in self._prefetched:
                    self.stats.prefetch_hits += 1
                    self._prefetched.discard(key)
                self.stats.per_gesture_seconds.append(time.perf_counter() - started)
            return tile
        tile = self._compute_tile(key)
        self._store(key, tile)
        if count_as_gesture:
            self.stats.per_gesture_seconds.append(time.perf_counter() - started)
        return tile

    def _compute_tile(self, key: TileKey) -> Tile:
        started = time.perf_counter()
        matrix = self._level_matrix(key.level)
        low = key.col * self.tile_samples
        high = min(low + self.tile_samples, matrix.shape[1])
        values = matrix[key.row : key.row + 1, low:high].copy()
        elapsed = time.perf_counter() - started
        self.stats.tiles_computed += 1
        self.stats.total_fetch_seconds += elapsed
        return Tile(key, values, elapsed)

    def _store(self, key: TileKey, tile: Tile) -> None:
        self._cache[key] = tile
        while len(self._cache) > self._cache_capacity:
            evicted_key, _ = self._cache.popitem(last=False)
            self._prefetched.discard(evicted_key)

    # ------------------------------------------------------------------ gestures
    def pan(self, key: TileKey, direction: int) -> Tile:
        """Pan one tile left (-1) or right (+1) at the same resolution."""
        self._last_move = 1 if direction >= 0 else -1
        _rows, tile_cols = self.tiles_at_level(key.level)
        new_col = int(np.clip(key.col + self._last_move, 0, tile_cols - 1))
        new_key = TileKey(key.level, key.row, new_col)
        tile = self.fetch_tile(new_key)
        if self.prefetch_enabled:
            self._prefetch_neighbours(new_key)
        return tile

    def zoom_in(self, key: TileKey) -> Tile:
        """Zoom to the next finer resolution, keeping the viewport centred."""
        new_level = max(0, key.level - 1)
        new_key = TileKey(new_level, key.row, key.col * 2)
        tile = self.fetch_tile(new_key)
        if self.prefetch_enabled:
            self._prefetch_neighbours(new_key)
        return tile

    def zoom_out(self, key: TileKey) -> Tile:
        new_level = min(self.max_levels, key.level + 1)
        new_key = TileKey(new_level, key.row, key.col // 2)
        tile = self.fetch_tile(new_key)
        if self.prefetch_enabled:
            self._prefetch_neighbours(new_key)
        return tile

    def overview(self) -> np.ndarray:
        """The coarsest, whole-dataset view (the top-level screen of the demo)."""
        return self._level_matrix(self.max_levels)

    # ----------------------------------------------------------------- prefetch
    def _prefetch_neighbours(self, key: TileKey) -> None:
        """Prefetch the tiles a user is most likely to request next."""
        _rows, tile_cols = self.tiles_at_level(key.level)
        directions = [self._last_move, self._last_move * 2] if self._last_move else [1, -1]
        candidates = []
        for delta in directions:
            col = key.col + delta
            if 0 <= col < tile_cols:
                candidates.append(TileKey(key.level, key.row, col))
        # Also warm the same viewport one level in and out (zoom anticipation).
        if key.level > 0:
            candidates.append(TileKey(key.level - 1, key.row, key.col * 2))
        if key.level < self.max_levels:
            candidates.append(TileKey(key.level + 1, key.row, key.col // 2))
        for candidate in candidates:
            if candidate not in self._cache:
                tile = self._compute_tile(candidate)
                self._store(candidate, tile)
                self._prefetched.add(candidate)
