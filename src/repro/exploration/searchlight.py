"""Searchlight: constraint-programming data exploration (Section 2.2).

Searchlight "first speculatively searches for solutions in main-memory over
synopsis structures and then validates the candidate results efficiently on
the actual data."  The constraint queries it targets have the shape *"find
regions of the array whose aggregate properties satisfy these bounds"* — e.g.
windows of a waveform whose average amplitude and peak both lie in given
ranges.

The implementation works over the array engine's per-chunk synopses
(:class:`~repro.engines.array.storage.ChunkSynopsis`):

1. *speculative search*: interval arithmetic over chunk min/max/avg bounds
   discards chunks (and window positions) that cannot possibly satisfy the
   constraints — without touching cell data;
2. *validation*: the surviving candidate windows are evaluated exactly on the
   stored values; only true solutions are returned.

The exhaustive comparator (``search(..., use_synopsis=False)``) scans every
window, which is what CLAIM-6 benchmarks against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.array.storage import StoredArray


@dataclass(frozen=True)
class RangeConstraint:
    """An inclusive numeric range; None bounds are open."""

    low: float | None = None
    high: float | None = None

    def admits(self, value: float) -> bool:
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def interval_possible(self, minimum: float, maximum: float) -> bool:
        """Could some value inside [minimum, maximum] satisfy the constraint?"""
        if self.low is not None and maximum < self.low:
            return False
        if self.high is not None and minimum > self.high:
            return False
        return True


@dataclass(frozen=True)
class ConstraintQuery:
    """Find windows of ``window_length`` samples satisfying all given constraints."""

    attribute: str
    window_length: int
    avg: RangeConstraint = field(default_factory=RangeConstraint)
    maximum: RangeConstraint = field(default_factory=RangeConstraint)
    minimum: RangeConstraint = field(default_factory=RangeConstraint)


@dataclass(frozen=True)
class SolutionWindow:
    """One validated solution: a window of one signal row."""

    signal: int
    start: int
    end: int
    average: float
    peak: float
    trough: float


@dataclass
class SearchReport:
    """Solutions plus the work accounting the benchmark compares."""

    solutions: list[SolutionWindow]
    windows_considered: int
    windows_validated: int
    chunks_pruned: int
    used_synopsis: bool


class Searchlight:
    """Constraint search over a 2-D (signal x sample) stored array."""

    def __init__(self, array: StoredArray) -> None:
        if array.schema.ndim != 2:
            raise ValueError("Searchlight expects a 2-dimensional (signal x sample) array")
        self.array = array

    def search(self, query: ConstraintQuery, use_synopsis: bool = True) -> SearchReport:
        buffer = np.asarray(self.array.buffer(query.attribute), dtype=float)
        present = self.array.present_mask
        signals, samples = buffer.shape
        window = query.window_length
        total_windows = 0
        validated = 0
        chunks_pruned = 0
        solutions: list[SolutionWindow] = []

        candidate_ranges: list[tuple[int, int, int]] = []  # (signal, start_low, start_high)
        if use_synopsis:
            candidate_ranges, chunks_pruned, total_windows = self._speculative_candidates(query)
        else:
            for signal in range(signals):
                candidate_ranges.append((signal, 0, samples - window))
                total_windows += max(0, samples - window + 1)

        for signal, start_low, start_high in candidate_ranges:
            row = buffer[signal]
            row_present = present[signal]
            for start in range(start_low, start_high + 1):
                end = start + window
                if end > samples:
                    continue
                if not row_present[start:end].all():
                    continue
                validated += 1
                segment = row[start:end]
                average = float(segment.mean())
                peak = float(segment.max())
                trough = float(segment.min())
                if (
                    query.avg.admits(average)
                    and query.maximum.admits(peak)
                    and query.minimum.admits(trough)
                ):
                    solutions.append(SolutionWindow(signal, start, end, average, peak, trough))
        return SearchReport(
            solutions=solutions,
            windows_considered=total_windows,
            windows_validated=validated,
            chunks_pruned=chunks_pruned,
            used_synopsis=use_synopsis,
        )

    # ----------------------------------------------------------------- internal
    def _speculative_candidates(self, query: ConstraintQuery
                                ) -> tuple[list[tuple[int, int, int]], int, int]:
        """Use chunk synopses to keep only sample ranges that might contain solutions."""
        schema = self.array.schema
        sample_dim = schema.dimensions[1]
        synopses = self.array.synopsis(query.attribute)
        signals = schema.dimensions[0].length
        window = query.window_length
        total_windows = signals * max(0, sample_dim.length - window + 1)

        # Group synopses by (signal chunk, sample chunk); signal chunks have length 1
        # in the MIMIC layout but the code handles the general case by mapping each
        # chunk to the signal rows it covers.
        candidates: list[tuple[int, int, int]] = []
        pruned = 0
        for synopsis in synopses:
            if synopsis.count == 0:
                pruned += 1
                continue
            minimum, maximum = synopsis.minimum, synopsis.maximum
            assert minimum is not None and maximum is not None
            possible = (
                query.avg.interval_possible(minimum, maximum)
                and query.maximum.interval_possible(minimum, maximum)
                and query.minimum.interval_possible(minimum, maximum)
            )
            if not possible:
                pruned += 1
                continue
            signal_chunk, sample_chunk = synopsis.chunk
            signal_low, signal_high = schema.dimensions[0].chunk_bounds(signal_chunk)
            sample_low, sample_high = sample_dim.chunk_bounds(sample_chunk)
            # Windows starting up to (window-1) before the chunk can still overlap it.
            start_low = max(0, sample_low - window + 1)
            start_high = min(sample_dim.end - window + 1, sample_high)
            if start_high < start_low:
                continue
            for signal in range(signal_low, signal_high + 1):
                candidates.append((signal, start_low, start_high))
        return self._merge_ranges(candidates), pruned, total_windows

    @staticmethod
    def _merge_ranges(candidates: list[tuple[int, int, int]]) -> list[tuple[int, int, int]]:
        """Merge overlapping per-signal start ranges so windows are validated once."""
        by_signal: dict[int, list[tuple[int, int]]] = {}
        for signal, low, high in candidates:
            by_signal.setdefault(signal, []).append((low, high))
        merged: list[tuple[int, int, int]] = []
        for signal, ranges in by_signal.items():
            ranges.sort()
            current_low, current_high = ranges[0]
            for low, high in ranges[1:]:
                if low <= current_high + 1:
                    current_high = max(current_high, high)
                else:
                    merged.append((signal, current_low, current_high))
                    current_low, current_high = low, high
            merged.append((signal, current_low, current_high))
        return sorted(merged)
