"""SeeDB: deviation-driven visualization recommendation (Section 2.2, Figure 2).

SeeDB "computes SQL aggregates with a GROUP BY clause over the search space of
all possible combinations of attributes.  To provide reasonable response times
over massive datasets, SeeDB uses sampling and pruning to identify a candidate
set of visualizations that are then computed over the full dataset", ranking
them by a deviation-based utility: how different the aggregate distribution
looks for the user's selected subpopulation versus the rest of the data.

The implementation runs against the relational island:

1. enumerate candidate views — (group-by attribute, aggregate function,
   measure attribute) triples;
2. *pruning phase*: evaluate each view on a row sample, compute its utility
   (symmetrized KL divergence between the normalized target and reference
   distributions), and keep the top candidates whose confidence interval
   cannot be excluded from the top-k;
3. *full phase*: evaluate only the surviving candidates on the full data and
   return the final top-k views with their series, ready to be drawn as the
   grouped bar charts of Figure 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.bigdawg import BigDawg


@dataclass(frozen=True)
class ViewCandidate:
    """One candidate visualization: GROUP BY ``dimension``, ``aggregate(measure)``."""

    dimension: str
    measure: str
    aggregate: str = "avg"

    @property
    def label(self) -> str:
        return f"{self.aggregate}({self.measure}) by {self.dimension}"


@dataclass
class ViewResult:
    """An evaluated view: the two distributions and the deviation utility."""

    candidate: ViewCandidate
    target_series: dict[str, float]
    reference_series: dict[str, float]
    utility: float
    evaluated_on_sample: bool = False

    def as_chart(self) -> dict:
        """The structure a front end would draw as a grouped bar chart."""
        groups = sorted(set(self.target_series) | set(self.reference_series))
        return {
            "title": self.candidate.label,
            "groups": groups,
            "target": [self.target_series.get(g) for g in groups],
            "reference": [self.reference_series.get(g) for g in groups],
            "utility": self.utility,
        }


@dataclass
class SeeDBReport:
    """The outcome of one SeeDB run."""

    views: list[ViewResult]
    candidates_considered: int
    candidates_pruned: int
    sample_fraction: float
    full_evaluations: int


@dataclass
class SeeDB:
    """The recommendation engine."""

    bigdawg: BigDawg
    table: str
    dimensions: list[str]
    measures: list[str]
    aggregates: tuple[str, ...] = ("avg", "sum", "count")
    sample_fraction: float = 0.1
    prune_keep: int = 8
    seed: int = 13

    _sample_table: str | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ public
    def candidates(self) -> list[ViewCandidate]:
        """The full search space of (dimension, measure, aggregate) views."""
        out = []
        for dimension in self.dimensions:
            for measure in self.measures:
                for aggregate in self.aggregates:
                    out.append(ViewCandidate(dimension, measure, aggregate))
        return out

    def recommend(self, target_predicate: str, k: int = 3, use_pruning: bool = True) -> SeeDBReport:
        """Top-k most deviating views for the subpopulation selected by ``target_predicate``.

        ``target_predicate`` is a SQL boolean expression over the table, e.g.
        ``"admission_type = 'elective'"``.
        """
        candidates = self.candidates()
        pruned = 0
        survivors = candidates
        if use_pruning and len(candidates) > self.prune_keep:
            sampled = self._ensure_sample()
            scored = []
            for candidate in candidates:
                view = self._evaluate(candidate, target_predicate, sampled, on_sample=True)
                scored.append(view)
            scored.sort(key=lambda v: v.utility, reverse=True)
            keep = max(self.prune_keep, k)
            survivors = [view.candidate for view in scored[:keep]]
            pruned = len(candidates) - len(survivors)
        final = [
            self._evaluate(candidate, target_predicate, self.table, on_sample=False)
            for candidate in survivors
        ]
        final.sort(key=lambda v: v.utility, reverse=True)
        return SeeDBReport(
            views=final[:k],
            candidates_considered=len(candidates),
            candidates_pruned=pruned,
            sample_fraction=self.sample_fraction if use_pruning else 1.0,
            full_evaluations=len(survivors),
        )

    # ----------------------------------------------------------------- internal
    def _ensure_sample(self) -> str:
        """Materialize a deterministic row sample of the table once."""
        if self._sample_table is not None:
            return self._sample_table
        sample_name = f"{self.table}_seedb_sample"
        relation = self.bigdawg.execute(f"RELATIONAL(SELECT * FROM {self.table})")
        step = max(1, int(round(1.0 / max(self.sample_fraction, 1e-6))))
        from repro.common.schema import Relation

        sampled = Relation(relation.schema)
        for i, row in enumerate(relation.rows):
            if (i + self.seed) % step == 0:
                sampled.rows.append(row)
        if not sampled.rows and relation.rows:
            sampled.rows.append(relation.rows[0])
        self.bigdawg.materialize_temporary(sample_name, sampled)
        self._sample_table = sample_name
        return sample_name

    def _evaluate(self, candidate: ViewCandidate, predicate: str, table: str,
                  on_sample: bool) -> ViewResult:
        target = self._series(candidate, table, predicate)
        reference = self._series(candidate, table, f"NOT ({predicate})")
        utility = deviation_utility(target, reference)
        return ViewResult(candidate, target, reference, utility, evaluated_on_sample=on_sample)

    def _series(self, candidate: ViewCandidate, table: str, predicate: str) -> dict[str, float]:
        aggregate = candidate.aggregate
        inner = "*" if aggregate == "count" else candidate.measure
        sql = (
            f"SELECT {candidate.dimension} AS grp, {aggregate}({inner}) AS val "
            f"FROM {table} WHERE {predicate} GROUP BY {candidate.dimension}"
        )
        relation = self.bigdawg.execute(f"RELATIONAL({sql})")
        series = {}
        for row in relation:
            value = row["val"]
            if value is not None:
                series[str(row["grp"])] = float(value)
        return series


def deviation_utility(target: dict[str, float], reference: dict[str, float]) -> float:
    """Symmetrized KL divergence between the two normalized distributions.

    Views whose target distribution looks most unlike the reference get the
    highest utility — SeeDB's headline metric.
    """
    groups = sorted(set(target) | set(reference))
    if not groups:
        return 0.0
    p = _normalize([max(target.get(g, 0.0), 0.0) for g in groups])
    q = _normalize([max(reference.get(g, 0.0), 0.0) for g in groups])
    return 0.5 * (_kl(p, q) + _kl(q, p))


def _normalize(values: list[float]) -> list[float]:
    total = sum(values)
    if total <= 0:
        return [1.0 / len(values)] * len(values)
    return [v / total for v in values]


def _kl(p: list[float], q: list[float], epsilon: float = 1e-9) -> float:
    return sum(pi * math.log((pi + epsilon) / (qi + epsilon)) for pi, qi in zip(p, q) if pi > 0)
