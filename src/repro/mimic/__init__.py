"""Synthetic MIMIC II dataset generation, polystore loading and demo workload."""

from repro.mimic.generator import (
    Admission,
    LabResult,
    MimicDataset,
    MimicGenerator,
    Note,
    Patient,
    Prescription,
    WaveformSegment,
)
from repro.mimic.loader import MimicDeployment, build_polystore, waveform_feed_tuples
from repro.mimic.workload import WorkloadQuery, full_workload, run_workload

__all__ = [
    "Admission",
    "LabResult",
    "MimicDataset",
    "MimicDeployment",
    "MimicGenerator",
    "Note",
    "Patient",
    "Prescription",
    "WaveformSegment",
    "WorkloadQuery",
    "build_polystore",
    "full_workload",
    "run_workload",
    "waveform_feed_tuples",
]
