"""Synthetic MIMIC II dataset generator.

The real MIMIC II dataset (~26,000 ICU admissions) is distributed under a data
use agreement, so the reproduction generates a synthetic equivalent that
preserves the *shape* the demo depends on:

* patient demographics (age, sex, race) and admissions with lengths of stay;
* prescriptions and lab results (semi-structured, per admission);
* free-text doctor/nurse notes with clinically flavoured phrases, some of
  which ("very sick") drive the text-analysis demo query;
* waveform segments (heart-rate-like signals at a configurable sample rate)
  with injected arrhythmia anomalies for the real-time monitoring demo;
* one deliberately planted statistical quirk: within a selected subpopulation
  (an admission-type slice), the race vs. length-of-stay trend *reverses* the
  trend in the rest of the data — the relationship SeeDB's Figure 2 surfaces.

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import derive_seed, make_rng

RACES = ("white", "black", "asian", "hispanic", "other")
SEXES = ("F", "M")
ADMISSION_TYPES = ("emergency", "elective", "urgent")
DRUGS = (
    "aspirin", "heparin", "warfarin", "metoprolol", "furosemide",
    "insulin", "morphine", "vancomycin", "dopamine", "amiodarone",
)
LAB_TESTS = ("lactate", "creatinine", "hemoglobin", "potassium", "troponin", "glucose")

_NOTE_TEMPLATES = (
    "patient resting comfortably vital signs stable",
    "patient remains very sick with ongoing hypotension",
    "responded well to {drug} continuing current plan",
    "complains of chest pain ecg ordered",
    "no acute events overnight tolerating diet",
    "family meeting held regarding goals of care",
    "patient very sick requiring increased pressor support",
    "extubated this morning breathing comfortably on nasal cannula",
    "started on {drug} for rate control",
    "mild fever overnight cultures pending",
)


@dataclass(frozen=True)
class Patient:
    patient_id: int
    age: int
    sex: str
    race: str


@dataclass(frozen=True)
class Admission:
    admission_id: int
    patient_id: int
    admission_type: str
    stay_days: float
    severity: float
    outcome: str  # discharged | deceased


@dataclass(frozen=True)
class Prescription:
    prescription_id: int
    admission_id: int
    patient_id: int
    drug: str
    dose_mg: float


@dataclass(frozen=True)
class LabResult:
    lab_id: int
    admission_id: int
    patient_id: int
    test: str
    value: float
    abnormal: bool


@dataclass(frozen=True)
class Note:
    note_id: int
    admission_id: int
    patient_id: int
    author: str  # doctor | nurse
    text: str


@dataclass(frozen=True)
class WaveformSegment:
    """One patient's waveform: ``values[i]`` sampled at ``sample_rate_hz``."""

    patient_id: int
    signal_id: int
    sample_rate_hz: float
    values: np.ndarray
    anomaly_start: int | None = None
    anomaly_end: int | None = None

    @property
    def has_anomaly(self) -> bool:
        return self.anomaly_start is not None


@dataclass
class MimicDataset:
    """The full synthetic dataset."""

    patients: list[Patient] = field(default_factory=list)
    admissions: list[Admission] = field(default_factory=list)
    prescriptions: list[Prescription] = field(default_factory=list)
    labs: list[LabResult] = field(default_factory=list)
    notes: list[Note] = field(default_factory=list)
    waveforms: list[WaveformSegment] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        return {
            "patients": len(self.patients),
            "admissions": len(self.admissions),
            "prescriptions": len(self.prescriptions),
            "labs": len(self.labs),
            "notes": len(self.notes),
            "waveforms": len(self.waveforms),
        }


@dataclass
class MimicGenerator:
    """Deterministic generator for :class:`MimicDataset`.

    Parameters
    ----------
    patient_count:
        Number of patients (the paper's dataset has ~26,000; tests use far fewer).
    waveform_patients:
        How many patients get a waveform segment (waveforms dominate volume).
    waveform_samples:
        Samples per waveform segment.
    sample_rate_hz:
        Waveform sample rate (125 Hz in MIMIC II; lower in tests).
    seed:
        Base RNG seed; all sub-streams derive from it.
    """

    patient_count: int = 500
    waveform_patients: int = 8
    waveform_samples: int = 4000
    sample_rate_hz: float = 125.0
    anomaly_fraction: float = 0.5
    seed: int = 7

    def generate(self) -> MimicDataset:
        dataset = MimicDataset()
        dataset.patients = self._generate_patients()
        dataset.admissions = self._generate_admissions(dataset.patients)
        dataset.prescriptions = self._generate_prescriptions(dataset.admissions)
        dataset.labs = self._generate_labs(dataset.admissions)
        dataset.notes = self._generate_notes(dataset.admissions)
        dataset.waveforms = self._generate_waveforms(dataset.patients)
        return dataset

    # ------------------------------------------------------------- components
    def _generate_patients(self) -> list[Patient]:
        rng = make_rng(derive_seed(self.seed, "patients"))
        patients = []
        for patient_id in range(1, self.patient_count + 1):
            age = int(np.clip(rng.normal(62, 18), 18, 95))
            patients.append(
                Patient(
                    patient_id=patient_id,
                    age=age,
                    sex=str(rng.choice(SEXES)),
                    race=str(rng.choice(RACES, p=(0.55, 0.18, 0.10, 0.12, 0.05))),
                )
            )
        return patients

    def _generate_admissions(self, patients: list[Patient]) -> list[Admission]:
        rng = make_rng(derive_seed(self.seed, "admissions"))
        admissions = []
        admission_id = 1
        # Global trend: longer stays for the "black" and "hispanic" groups
        # (reflecting the kind of disparity SeeDB's example highlights)…
        global_bias = {"white": 0.0, "black": 1.6, "asian": -0.4, "hispanic": 1.1, "other": 0.3}
        # …which is REVERSED inside the elective-admission subpopulation.
        elective_bias = {"white": 1.4, "black": -1.2, "asian": 0.8, "hispanic": -0.9, "other": 0.0}
        for patient in patients:
            for _ in range(int(rng.integers(1, 3))):
                admission_type = str(rng.choice(ADMISSION_TYPES, p=(0.6, 0.25, 0.15)))
                severity = float(np.clip(rng.normal(0.5 + patient.age / 200, 0.2), 0.05, 1.0))
                base_stay = float(np.clip(rng.gamma(2.0, 2.0) + severity * 3, 0.5, 60.0))
                bias = elective_bias if admission_type == "elective" else global_bias
                stay = float(np.clip(base_stay + bias[patient.race] + rng.normal(0, 0.5), 0.25, 60.0))
                outcome = "deceased" if rng.random() < severity * 0.12 else "discharged"
                admissions.append(
                    Admission(
                        admission_id=admission_id,
                        patient_id=patient.patient_id,
                        admission_type=admission_type,
                        stay_days=round(stay, 2),
                        severity=round(severity, 3),
                        outcome=outcome,
                    )
                )
                admission_id += 1
        return admissions

    def _generate_prescriptions(self, admissions: list[Admission]) -> list[Prescription]:
        rng = make_rng(derive_seed(self.seed, "prescriptions"))
        prescriptions = []
        prescription_id = 1
        for admission in admissions:
            for _ in range(int(rng.integers(1, 6))):
                prescriptions.append(
                    Prescription(
                        prescription_id=prescription_id,
                        admission_id=admission.admission_id,
                        patient_id=admission.patient_id,
                        drug=str(rng.choice(DRUGS)),
                        dose_mg=round(float(rng.uniform(1, 500)), 1),
                    )
                )
                prescription_id += 1
        return prescriptions

    def _generate_labs(self, admissions: list[Admission]) -> list[LabResult]:
        rng = make_rng(derive_seed(self.seed, "labs"))
        labs = []
        lab_id = 1
        for admission in admissions:
            for _ in range(int(rng.integers(2, 8))):
                test = str(rng.choice(LAB_TESTS))
                value = round(float(rng.lognormal(1.0, 0.6)), 2)
                labs.append(
                    LabResult(
                        lab_id=lab_id,
                        admission_id=admission.admission_id,
                        patient_id=admission.patient_id,
                        test=test,
                        value=value,
                        abnormal=bool(value > 4.0 or rng.random() < admission.severity * 0.2),
                    )
                )
                lab_id += 1
        return labs

    def _generate_notes(self, admissions: list[Admission]) -> list[Note]:
        rng = make_rng(derive_seed(self.seed, "notes"))
        notes = []
        note_id = 1
        for admission in admissions:
            note_count = int(rng.integers(1, 5)) + (3 if admission.severity > 0.8 else 0)
            for _ in range(note_count):
                template = str(rng.choice(_NOTE_TEMPLATES))
                # Sicker patients attract the "very sick" phrasing more often.
                if admission.severity > 0.7 and rng.random() < 0.5:
                    template = "patient remains very sick with ongoing hypotension"
                text = template.format(drug=str(rng.choice(DRUGS)))
                notes.append(
                    Note(
                        note_id=note_id,
                        admission_id=admission.admission_id,
                        patient_id=admission.patient_id,
                        author=str(rng.choice(("doctor", "nurse"))),
                        text=text,
                    )
                )
                note_id += 1
        return notes

    def _generate_waveforms(self, patients: list[Patient]) -> list[WaveformSegment]:
        rng = make_rng(derive_seed(self.seed, "waveforms"))
        segments = []
        chosen = patients[: self.waveform_patients]
        for signal_id, patient in enumerate(chosen):
            values, start, end = self._synthesize_waveform(rng, signal_id)
            segments.append(
                WaveformSegment(
                    patient_id=patient.patient_id,
                    signal_id=signal_id,
                    sample_rate_hz=self.sample_rate_hz,
                    values=values,
                    anomaly_start=start,
                    anomaly_end=end,
                )
            )
        return segments

    def _synthesize_waveform(self, rng: np.random.Generator, signal_id: int
                             ) -> tuple[np.ndarray, int | None, int | None]:
        """A quasi-periodic 'heartbeat' signal; optionally with a tachycardic burst."""
        n = self.waveform_samples
        t = np.arange(n) / self.sample_rate_hz
        heart_rate_hz = rng.uniform(1.0, 1.5)  # 60-90 bpm
        signal = (
            np.sin(2 * np.pi * heart_rate_hz * t)
            + 0.4 * np.sin(2 * np.pi * 2 * heart_rate_hz * t + 0.5)
            + rng.normal(0, 0.08, size=n)
        )
        anomaly_start = anomaly_end = None
        if rng.random() < self.anomaly_fraction:
            anomaly_start = int(rng.integers(n // 3, 2 * n // 3))
            anomaly_end = min(n, anomaly_start + int(self.sample_rate_hz * rng.uniform(2, 6)))
            burst_t = t[anomaly_start:anomaly_end]
            # A much faster rhythm with larger amplitude: the anomaly to detect.
            signal[anomaly_start:anomaly_end] = (
                2.2 * np.sin(2 * np.pi * heart_rate_hz * 3.0 * burst_t)
                + rng.normal(0, 0.1, size=anomaly_end - anomaly_start)
            )
        return signal, anomaly_start, anomaly_end
