"""Loading the synthetic MIMIC II dataset into the polystore.

Section 3 of the paper: "our demo partitions the MIMIC II dataset across the
various engines" — patient metadata into Postgres, historical waveforms into
SciDB, notes into Accumulo, and the live waveform feed through S-Store.  The
loader reproduces exactly that placement against our stand-in engines and
registers every object in the BigDAWG catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.schema import Schema
from repro.core.bigdawg import BigDawg
from repro.engines.array.engine import ArrayEngine
from repro.engines.array.schema import ArraySchema, Attribute, Dimension
from repro.engines.keyvalue.engine import KeyValueEngine
from repro.engines.relational.engine import RelationalEngine
from repro.engines.streaming.engine import StreamingEngine
from repro.mimic.generator import MimicDataset, MimicGenerator


#: Schemas of the relational tables, as a hospital application would define them.
PATIENTS_SCHEMA = Schema(
    [("patient_id", "integer", False), ("age", "integer"), ("sex", "text"), ("race", "text")]
)
ADMISSIONS_SCHEMA = Schema(
    [
        ("admission_id", "integer", False),
        ("patient_id", "integer", False),
        ("admission_type", "text"),
        ("stay_days", "float"),
        ("severity", "float"),
        ("outcome", "text"),
    ]
)
PRESCRIPTIONS_SCHEMA = Schema(
    [
        ("prescription_id", "integer", False),
        ("admission_id", "integer", False),
        ("patient_id", "integer", False),
        ("drug", "text"),
        ("dose_mg", "float"),
    ]
)
LABS_SCHEMA = Schema(
    [
        ("lab_id", "integer", False),
        ("admission_id", "integer", False),
        ("patient_id", "integer", False),
        ("test", "text"),
        ("value", "float"),
        ("abnormal", "boolean"),
    ]
)
WAVEFORM_FEED_SCHEMA = Schema(
    [("signal_id", "integer", False), ("sample_index", "integer", False), ("value", "float")]
)


@dataclass
class MimicDeployment:
    """Handles to everything the loader created."""

    bigdawg: BigDawg
    dataset: MimicDataset
    relational: RelationalEngine
    array: ArrayEngine
    keyvalue: KeyValueEngine
    streaming: StreamingEngine


def build_polystore(dataset: MimicDataset | None = None,
                    generator: MimicGenerator | None = None) -> MimicDeployment:
    """Create engines, load the dataset the way the demo partitions it, and wire BigDAWG."""
    if dataset is None:
        dataset = (generator or MimicGenerator()).generate()
    bigdawg = BigDawg()
    relational = RelationalEngine("postgres")
    array = ArrayEngine("scidb")
    keyvalue = KeyValueEngine("accumulo")
    streaming = StreamingEngine("sstore")
    bigdawg.add_engine(relational)
    bigdawg.add_engine(array)
    bigdawg.add_engine(keyvalue)
    bigdawg.add_engine(streaming)

    load_relational(relational, dataset)
    load_array(array, dataset)
    load_keyvalue(keyvalue, dataset)
    load_streaming(streaming, dataset)

    for table in ("patients", "admissions", "prescriptions", "labs"):
        bigdawg.catalog.register_object(table, "postgres", "table", replace=True)
    bigdawg.catalog.register_object("waveform_history", "scidb", "array", replace=True)
    bigdawg.catalog.register_object("notes", "accumulo", "kvtable", replace=True)
    bigdawg.catalog.register_object("waveform_feed", "sstore", "stream", replace=True)
    return MimicDeployment(bigdawg, dataset, relational, array, keyvalue, streaming)


def load_relational(engine: RelationalEngine, dataset: MimicDataset) -> None:
    """Patient metadata, admissions, prescriptions and labs go to the relational engine."""
    engine.create_table("patients", PATIENTS_SCHEMA, primary_key=("patient_id",), if_not_exists=True)
    engine.create_table("admissions", ADMISSIONS_SCHEMA, primary_key=("admission_id",), if_not_exists=True)
    engine.create_table("prescriptions", PRESCRIPTIONS_SCHEMA, primary_key=("prescription_id",), if_not_exists=True)
    engine.create_table("labs", LABS_SCHEMA, primary_key=("lab_id",), if_not_exists=True)
    engine.insert_rows(
        "patients", [(p.patient_id, p.age, p.sex, p.race) for p in dataset.patients]
    )
    engine.insert_rows(
        "admissions",
        [
            (a.admission_id, a.patient_id, a.admission_type, a.stay_days, a.severity, a.outcome)
            for a in dataset.admissions
        ],
    )
    engine.insert_rows(
        "prescriptions",
        [
            (p.prescription_id, p.admission_id, p.patient_id, p.drug, p.dose_mg)
            for p in dataset.prescriptions
        ],
    )
    engine.insert_rows(
        "labs",
        [(l.lab_id, l.admission_id, l.patient_id, l.test, l.value, l.abnormal) for l in dataset.labs],
    )
    engine.create_index("idx_admissions_patient", "admissions", ["patient_id"])
    engine.create_index("idx_prescriptions_patient", "prescriptions", ["patient_id"])


def load_array(engine: ArrayEngine, dataset: MimicDataset, array_name: str = "waveform_history") -> None:
    """Historical waveform segments go to the array engine as a (signal, sample) array."""
    if not dataset.waveforms:
        return
    samples = max(len(w.values) for w in dataset.waveforms)
    schema = ArraySchema(
        array_name,
        [
            Dimension("signal", 0, len(dataset.waveforms) - 1, 1),
            Dimension("sample", 0, samples - 1, min(10_000, samples)),
        ],
        [Attribute("value", "float")],
    )
    stored = engine.create_array(schema, replace=True)
    for waveform in dataset.waveforms:
        block = np.asarray(waveform.values, dtype=float).reshape(1, -1)
        stored.write_block("value", (waveform.signal_id, 0), block)


def load_keyvalue(engine: KeyValueEngine, dataset: MimicDataset, table_name: str = "notes") -> None:
    """Clinical notes go to the key-value engine, text-indexed."""
    table = engine.create_table(table_name, text_indexed=True, replace=True)
    for note in dataset.notes:
        row_key = f"patient_{note.patient_id:06d}"
        table.put(row_key, note.author, f"note_{note.note_id:08d}", note.text)


def load_streaming(engine: StreamingEngine, dataset: MimicDataset,
                   stream_name: str = "waveform_feed",
                   retention_seconds: float = 8.0) -> None:
    """The live waveform feed enters through the streaming engine."""
    engine.create_stream(stream_name, WAVEFORM_FEED_SCHEMA, retention_seconds, replace=True)


def waveform_feed_tuples(dataset: MimicDataset, signal_id: int = 0
                         ) -> list[tuple[float, tuple[int, int, float]]]:
    """Turn one waveform segment into an ordered feed of (timestamp, tuple) pairs."""
    for waveform in dataset.waveforms:
        if waveform.signal_id == signal_id:
            rate = waveform.sample_rate_hz
            return [
                (i / rate, (waveform.signal_id, i, float(v)))
                for i, v in enumerate(waveform.values)
            ]
    return []
