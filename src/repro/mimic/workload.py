"""The demo's query workload over the MIMIC II polystore.

Section 1.1 motivates four workload classes; the demo drives them through the
five interfaces.  This module names each class and provides representative
queries, which the CLAIM-1 benchmark runs both on the polystore and on the
"one size fits all" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.schema import Relation
from repro.mimic.loader import MimicDeployment


@dataclass(frozen=True)
class WorkloadQuery:
    """One representative query: its class, a label, and how to run it on the polystore."""

    query_class: str  # sql_analytics | complex_analytics | text_search | streaming
    label: str
    run: Callable[[MimicDeployment], object]


def sql_analytics_queries() -> list[WorkloadQuery]:
    """Standard SQL analytics, e.g. 'how many patients were given a particular drug'."""
    return [
        WorkloadQuery(
            "sql_analytics",
            "patients_given_heparin",
            lambda d: d.bigdawg.execute(
                "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')"
            ),
        ),
        WorkloadQuery(
            "sql_analytics",
            "stay_by_race",
            lambda d: d.bigdawg.execute(
                "RELATIONAL(SELECT p.race, avg(a.stay_days) AS avg_stay FROM patients p "
                "JOIN admissions a ON p.patient_id = a.patient_id GROUP BY p.race)"
            ),
        ),
        WorkloadQuery(
            "sql_analytics",
            "elderly_emergency_admissions",
            lambda d: d.bigdawg.execute(
                "RELATIONAL(SELECT count(*) AS n FROM patients p JOIN admissions a "
                "ON p.patient_id = a.patient_id WHERE p.age > 70 AND a.admission_type = 'emergency')"
            ),
        ),
    ]


def complex_analytics_queries() -> list[WorkloadQuery]:
    """Array analytics over waveforms: aggregates, windows, spectra."""
    return [
        WorkloadQuery(
            "complex_analytics",
            "waveform_global_stats",
            lambda d: d.bigdawg.execute(
                "ARRAY(aggregate(waveform_history, avg(value), stddev(value)))"
            ),
        ),
        WorkloadQuery(
            "complex_analytics",
            "waveform_windowed_average",
            lambda d: d.bigdawg.execute(
                "ARRAY(aggregate(window(waveform_history, value, 32, avg, sample), max(avg_value)))"
            ),
        ),
        WorkloadQuery(
            "complex_analytics",
            "per_signal_energy",
            lambda d: d.bigdawg.execute(
                "ARRAY(aggregate(apply(waveform_history, squared, value * 1.0), sum(squared), signal))"
            ),
        ),
    ]


def text_search_queries() -> list[WorkloadQuery]:
    """Keyword search over clinical notes."""
    return [
        WorkloadQuery(
            "text_search",
            "very_sick_three_reports",
            lambda d: d.bigdawg.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)'),
        ),
        WorkloadQuery(
            "text_search",
            "chest_pain_documents",
            lambda d: d.bigdawg.execute('TEXT(SEARCH notes FOR "chest pain")'),
        ),
    ]


def cross_island_queries() -> list[WorkloadQuery]:
    """Queries that must touch more than one engine (the polystore's raison d'être)."""
    return [
        WorkloadQuery(
            "cross_island",
            "waveform_rows_in_sql",
            lambda d: d.bigdawg.execute(
                "RELATIONAL(SELECT signal, count(*) AS n FROM CAST(waveform_history, relational) "
                "WHERE value > 1.5 GROUP BY signal)"
            ),
        ),
        WorkloadQuery(
            "cross_island",
            "notes_degree_per_patient",
            lambda d: d.bigdawg.execute("D4M(ASSOC notes DEGREE ROWS)"),
        ),
    ]


def full_workload() -> list[WorkloadQuery]:
    """Every representative query, in a stable order."""
    return (
        sql_analytics_queries()
        + complex_analytics_queries()
        + text_search_queries()
        + cross_island_queries()
    )


def run_workload(deployment: MimicDeployment,
                 queries: list[WorkloadQuery] | None = None) -> dict[str, object]:
    """Run every query and return {label: result}; used by examples and tests."""
    results: dict[str, object] = {}
    for query in queries or full_workload():
        results[query.label] = query.run(deployment)
    return results
