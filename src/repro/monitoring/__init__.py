"""Real-time monitoring: reference-based waveform anomaly detection and alerts."""

from repro.monitoring.waveform import Alert, ReferenceProfile, WaveformMonitor

__all__ = ["Alert", "ReferenceProfile", "WaveformMonitor"]
