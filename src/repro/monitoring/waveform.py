"""Real-time waveform monitoring (Section 1.1, "Real-Time Monitoring").

"We have a workflow that compares the incoming waveforms to reference ones,
raising an alert when we identify significant differences between the two."

:class:`WaveformMonitor` implements that workflow as an S-Store stored
procedure body:

* a *reference profile* is built offline from historical (non-anomalous)
  waveform data in the array engine — windowed amplitude statistics plus the
  dominant frequency;
* the stored procedure maintains a sliding window over the live feed, computes
  the same features, and raises an alert whenever the live features deviate
  from the reference by more than the configured number of standard
  deviations (or the dominant frequency shifts by more than the tolerance).

Detection latency — the gap between the first anomalous sample's timestamp and
the alert's timestamp — is what the CLAIM-3 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.algorithms import dominant_frequency
from repro.engines.streaming.engine import StreamingEngine
from repro.engines.streaming.procedures import ProcedureContext


@dataclass(frozen=True)
class ReferenceProfile:
    """Summary of what 'normal' looks like for one signal."""

    mean_amplitude: float
    amplitude_std: float
    rms: float
    dominant_frequency_hz: float
    sample_rate_hz: float

    @classmethod
    def from_samples(cls, samples: np.ndarray, sample_rate_hz: float) -> "ReferenceProfile":
        values = np.asarray(samples, dtype=float).ravel()
        return cls(
            mean_amplitude=float(np.mean(np.abs(values))),
            amplitude_std=float(np.std(np.abs(values))),
            rms=float(np.sqrt(np.mean(values ** 2))),
            dominant_frequency_hz=dominant_frequency(values, sample_rate_hz),
            sample_rate_hz=sample_rate_hz,
        )


@dataclass
class Alert:
    """One raised alert."""

    signal_id: int
    timestamp: float
    kind: str
    observed: float
    expected: float
    deviation: float


@dataclass
class WaveformMonitor:
    """Builds the stored-procedure body that watches one waveform feed."""

    reference: ReferenceProfile
    window_seconds: float = 1.0
    #: Alert when the window RMS exceeds the reference RMS by this factor.
    rms_alert_ratio: float = 1.5
    frequency_tolerance_hz: float = 0.8
    min_window_samples: int = 16
    alerts: list[Alert] = field(default_factory=list)

    def procedure_body(self, value_column: str = "value", signal_column: str = "signal_id"):
        """The callable to register as an S-Store stored procedure."""

        def body(context: ProcedureContext) -> None:
            window = context.window
            if window is None:
                return
            contents = window.contents(context.timestamp)
            if len(contents) < self.min_window_samples:
                return
            value_idx = window.stream.schema.index_of(value_column)
            signal_idx = window.stream.schema.index_of(signal_column)
            values = np.array([t.values[value_idx] for t in contents], dtype=float)
            signal_id = int(contents[-1].values[signal_idx])
            self._check_amplitude(context, signal_id, values)
            self._check_frequency(context, signal_id, values)

        return body

    # ----------------------------------------------------------------- checks
    def _check_amplitude(self, context: ProcedureContext, signal_id: int, values: np.ndarray) -> None:
        observed = float(np.sqrt(np.mean(values ** 2)))
        expected = max(self.reference.rms, 1e-6)
        deviation = observed / expected
        if deviation > self.rms_alert_ratio:
            alert = Alert(
                signal_id=signal_id,
                timestamp=context.timestamp,
                kind="amplitude",
                observed=observed,
                expected=expected,
                deviation=deviation,
            )
            self.alerts.append(alert)
            context.alert(kind=alert.kind, signal_id=signal_id, observed=observed,
                          expected=alert.expected, deviation=deviation)

    def _check_frequency(self, context: ProcedureContext, signal_id: int, values: np.ndarray) -> None:
        # A short window cannot resolve frequencies finer than rate / n samples;
        # skip the check when its resolution is coarser than the tolerance,
        # otherwise quantization alone would raise false alarms.
        resolution = self.reference.sample_rate_hz / max(len(values), 1)
        if resolution > self.frequency_tolerance_hz:
            return
        observed = dominant_frequency(values, self.reference.sample_rate_hz)
        shift = abs(observed - self.reference.dominant_frequency_hz)
        if shift > self.frequency_tolerance_hz:
            alert = Alert(
                signal_id=signal_id,
                timestamp=context.timestamp,
                kind="frequency",
                observed=observed,
                expected=self.reference.dominant_frequency_hz,
                deviation=shift,
            )
            self.alerts.append(alert)
            context.alert(kind=alert.kind, signal_id=signal_id, observed=observed,
                          expected=alert.expected, deviation=shift)

    # ------------------------------------------------------------------ wiring
    def register(self, engine: StreamingEngine, stream_name: str,
                 procedure_name: str = "waveform_monitor") -> None:
        """Register the monitoring procedure against a stream."""
        engine.register_procedure(
            procedure_name,
            stream_name,
            self.procedure_body(),
            window_seconds=self.window_seconds,
        )

    def first_alert_after(self, timestamp: float) -> Alert | None:
        """The earliest alert at or after a given feed timestamp (detection latency)."""
        eligible = [a for a in self.alerts if a.timestamp >= timestamp]
        return min(eligible, key=lambda a: a.timestamp) if eligible else None
