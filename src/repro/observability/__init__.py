"""Observability: query tracing, typed metrics, per-operator profiling.

Four pieces, used together or separately:

* :mod:`~repro.observability.tracing` — ``Tracer``/``Span`` with ambient
  thread-local context that survives the runtime's worker pools.
* :mod:`~repro.observability.registry` — a typed metric registry
  (counters, gauges, histograms) behind one namespaced snapshot.
* :mod:`~repro.observability.profile` — per-operator rows/batches/time
  profiling (EXPLAIN ANALYZE) and the slow-query log.
* :mod:`~repro.observability.export` — Chrome trace-event JSON and OTLP
  JSON export plus a text tree renderer for collected spans.
"""

from repro.observability.export import (
    render_tree,
    to_chrome_trace,
    to_otlp,
    write_chrome_trace,
    write_otlp,
)
from repro.observability.profile import (
    OperatorProfile,
    PlanProfiler,
    SlowQueryLog,
    observe_stream,
)
from repro.observability.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.observability.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    capture_context,
    current_span,
    get_tracer,
    set_tracer,
    tracer_scope,
    with_context,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "OperatorProfile",
    "PlanProfiler",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "capture_context",
    "current_span",
    "get_tracer",
    "observe_stream",
    "render_tree",
    "set_tracer",
    "to_chrome_trace",
    "to_otlp",
    "tracer_scope",
    "with_context",
    "write_chrome_trace",
    "write_otlp",
]
